"""Command-line interface: ``python -m repro <command>``.

Exposes the library's everyday operations without writing code:

* ``stats`` — Table 2 style statistics of a trajectory file;
* ``compress`` — run any registered algorithm on a trajectory file;
* ``generate`` — produce synthetic GPS trajectories;
* ``dataset`` — materialize the standard ten-trip evaluation dataset;
* ``figures`` — regenerate the numeric series behind the paper's
  evaluation figures (7–11) as text tables;
* ``table2`` — regenerate the paper's Table 2 comparison;
* ``cluster`` — group trajectory files by route or synchronized
  similarity;
* ``flow`` — rush-hour analytics (speed profile, hotspots, OD counts)
  over a set of trajectory files;
* ``pipeline`` — batch-compress a whole fleet of trajectory files
  through the parallel engine, with fault isolation and a metrics
  JSON export;
* ``report`` — per-segment error diagnostics of a compression;
* ``serve`` — run the trajectory-ingestion service (see
  ``docs/SERVING.md``);
* ``query`` — position/window/nearest/summaries queries over compressed
  records, against a ``.rsto`` store file or a live server (see
  ``docs/QUERYING.md``);
* ``serve-bench`` — load-test a served ingestion run, writing
  ``BENCH_serve.json``;
* ``serve-chaos`` — fault-injection harness proving the serve tier's
  crash recovery (WAL replay, torn tails, SIGKILL);
* ``obs dump`` — export metrics (from a live server's ``stats`` verb or
  a metrics JSON file) as Prometheus text exposition or JSON (see
  ``docs/OBSERVABILITY.md``).

Algorithms are selected either by name plus flags (``-a opw-sp -e 30
--speed 5``) or as one spec string (``-a "opw-sp:epsilon=30,speed=5"``).
File formats are chosen by suffix: ``.csv``, ``.json`` and ``.gpx`` are
supported for input; ``.csv`` and ``.json`` for output.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.core.registry import available_compressors, make_compressor
from repro.datagen.generator import TrajectoryGenerator
from repro.datagen import profiles as _profiles
from repro.error.metrics import evaluate_compression
from repro.exceptions import ReproError
from repro.experiments import figures as _figures
from repro.experiments.dataset import (
    DATASET_SEED,
    PAPER_TABLE2,
    paper_dataset,
)
from repro.experiments.reporting import (
    render_aggregate_rows,
    render_series_chart,
    render_table,
    series_by_algorithm,
)
from repro.pipeline.checkpoint import read_manifest
from repro.pipeline.engine import BatchEngine, load_fleet
from repro.pipeline.executor import execute
from repro.trajectory.stats import aggregate_trajectory_stats
from repro.trajectory import gpx as _gpx
from repro.trajectory import io as _io
from repro.trajectory.stats import dataset_stats, trajectory_stats
from repro.trajectory.trajectory import Trajectory

__all__ = ["main", "build_parser"]

_PROFILES = {
    "urban": _profiles.URBAN,
    "rural": _profiles.RURAL,
    "highway": _profiles.HIGHWAY,
}

#: Parameters each algorithm accepts: maps CLI options to ctor kwargs.
_EPSILON_ALGOS = {
    "ndp", "td-tr", "nopw", "bopw", "opw-tr", "operb", "cised",
    "distance-threshold", "sliding-window", "bottom-up",
}


def _load_trajectory(path: Path) -> Trajectory:
    suffix = path.suffix.lower()
    if suffix == ".csv":
        return _io.read_csv(path, object_id=path.stem)
    if suffix == ".json":
        return _io.read_json(path)
    if suffix == ".gpx":
        return _gpx.read_gpx(path)
    raise ReproError(f"unsupported input format {suffix!r} (use .csv/.json/.gpx)")


def _save_trajectory(traj: Trajectory, path: Path) -> None:
    suffix = path.suffix.lower()
    if suffix == ".csv":
        _io.write_csv(traj, path)
    elif suffix == ".json":
        _io.write_json(traj, path)
    else:
        raise ReproError(f"unsupported output format {suffix!r} (use .csv/.json)")


def _stats_table(traj: Trajectory) -> str:
    stats = trajectory_stats(traj)
    return render_table(
        ["statistic", "value"],
        [
            ("object id", traj.object_id or "-"),
            ("points", stats.n_points),
            ("duration", stats.duration_hms),
            ("length (km)", stats.length_m / 1000.0),
            ("displacement (km)", stats.displacement_m / 1000.0),
            ("mean speed (km/h)", stats.mean_speed_kmh),
        ],
        title=f"trajectory statistics",
    )


def _cmd_stats(args: argparse.Namespace) -> int:
    traj = _load_trajectory(Path(args.input))
    print(_stats_table(traj))
    return 0


def _build_spec(spec: str):
    """Build a compressor from a spec string, mapping errors to ReproError."""
    try:
        return make_compressor(spec)
    except KeyError as exc:
        raise ReproError(str(exc.args[0] if exc.args else exc)) from None
    except TypeError as exc:
        raise ReproError(f"bad compressor spec {spec!r}: {exc}") from None


def _spec_with_engine(spec: str, engine: str | None) -> str:
    """Append ``engine=<engine>`` to a spec string (flag loses to the spec)."""
    if engine is None or "engine=" in spec:
        return spec
    return f"{spec}{',' if ':' in spec else ':'}engine={engine}"


def _make_cli_compressor(args: argparse.Namespace):
    name = args.algorithm
    engine = getattr(args, "engine", None)
    if ":" in name or "=" in name:
        return _build_spec(_spec_with_engine(name, engine))
    if name not in available_compressors():
        raise ReproError(
            f"unknown algorithm {name!r}; available: {available_compressors()}"
        )
    # Every registered compressor accepts the engine keyword.
    extra = {} if engine is None else {"engine": engine}
    if name in _EPSILON_ALGOS:
        if args.epsilon is None:
            raise ReproError(f"{name} requires --epsilon")
        return make_compressor(name, epsilon=args.epsilon, **extra)
    if name in ("opw-sp", "td-sp"):
        if args.epsilon is None or args.speed is None:
            raise ReproError(f"{name} requires --epsilon and --speed")
        return make_compressor(
            name, max_dist_error=args.epsilon, max_speed_error=args.speed, **extra
        )
    if name == "every-ith":
        if args.step is None:
            raise ReproError("every-ith requires --step")
        return make_compressor(name, step=args.step, **extra)
    if name == "angular":
        if args.angle is None:
            raise ReproError("angular requires --angle (radians)")
        return make_compressor(name, max_angle_rad=args.angle, **extra)
    if name in ("td-tr-budget", "bottom-up-budget"):
        if args.budget is None:
            raise ReproError(f"{name} requires --budget")
        return make_compressor(name, budget=args.budget, **extra)
    if name == "bottom-up-total-error":
        if args.epsilon is None:
            raise ReproError(f"{name} requires --epsilon (the alpha budget)")
        return make_compressor(name, max_mean_error=args.epsilon, **extra)
    if name == "dead-reckoning":
        if args.epsilon is None:
            raise ReproError(f"{name} requires --epsilon")
        return make_compressor(name, epsilon=args.epsilon, **extra)
    raise ReproError(f"unknown algorithm {name!r}")  # pragma: no cover


def _cmd_compress(args: argparse.Namespace) -> int:
    traj = _load_trajectory(Path(args.input))
    compressor = _make_cli_compressor(args)
    result = compressor.compress(traj)
    report = evaluate_compression(traj, result.compressed, engine=args.engine)
    print(
        f"{compressor.name}: {result.n_original} -> {result.n_kept} points "
        f"({result.compression_percent:.1f}% removed)"
    )
    print(
        f"mean sync error {report.mean_sync_error_m:.2f} m, "
        f"max {report.max_sync_error_m:.2f} m, "
        f"mean speed error {report.mean_speed_error_ms:.2f} m/s"
    )
    if args.output:
        _save_trajectory(result.compressed, Path(args.output))
        print(f"wrote {args.output}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.error.report import detailed_report

    traj = _load_trajectory(Path(args.input))
    compressor = _make_cli_compressor(args)
    result = compressor.compress(traj)
    report = detailed_report(traj, result.compressed)
    print(f"algorithm: {compressor.name}")
    print(report.render())
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    profile = _PROFILES[args.profile]
    if args.length_km is not None:
        profile = profile.with_length(args.length_km * 1000.0)
    generator = TrajectoryGenerator(seed=args.seed)
    traj = generator.generate(profile, object_id=args.object_id)
    _save_trajectory(traj, Path(args.output))
    print(f"wrote {args.output} ({len(traj)} fixes)")
    print(_stats_table(traj))
    return 0


def _cmd_dataset(args: argparse.Namespace) -> int:
    out_dir = Path(args.output_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    dataset = paper_dataset(args.seed)
    for traj in dataset:
        _io.write_csv(traj, out_dir / f"{traj.object_id}.csv")
    agg = dataset_stats(dataset)
    print(f"wrote {len(dataset)} trajectories to {out_dir}/")
    print(
        f"aggregate: {agg.points_mean:.0f} points avg, "
        f"{agg.length_mean_km:.1f} km avg, {agg.speed_mean_kmh:.1f} km/h avg"
    )
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    wanted = sorted(_figures.ALL_FIGURES) if args.figure == "all" else [args.figure]
    if args.quick:
        dataset = paper_dataset(DATASET_SEED)[:3]
        thresholds: Sequence[float] = (30.0, 60.0, 100.0)
    else:
        dataset = paper_dataset(DATASET_SEED)
        thresholds = tuple(_figures.DISTANCE_THRESHOLDS_M)
    for figure_id in wanted:
        fig = _figures.ALL_FIGURES[figure_id](dataset, thresholds)
        print(render_aggregate_rows(fig.rows, title=f"{fig.figure_id}: {fig.title}"))
        if args.chart:
            grouped = series_by_algorithm(fig.rows)
            for quantity, attr in (
                ("compression %", "compression_percent"),
                ("mean sync error (m)", "mean_sync_error_m"),
            ):
                chart_series = {
                    name: [(r.threshold_m, getattr(r, attr)) for r in rows]
                    for name, rows in grouped.items()
                }
                print()
                print(
                    render_series_chart(
                        chart_series,
                        title=f"{fig.figure_id}: {quantity} vs threshold",
                        x_label="threshold (m)",
                        y_label=quantity,
                    )
                )
        print()
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    from repro.analysis import (
        cluster_trajectories,
        hausdorff_distance,
        mean_synchronized_distance,
    )

    paths = _collect_input_files(args.inputs)
    if len(paths) < 2:
        raise ReproError("clustering needs at least two trajectory files")
    trajectories = [_load_trajectory(path) for path in paths]
    names = [
        traj.object_id or path.stem for traj, path in zip(trajectories, paths)
    ]
    metric = (
        hausdorff_distance if args.metric == "route" else mean_synchronized_distance
    )
    result = cluster_trajectories(
        trajectories,
        n_clusters=args.clusters,
        max_distance=args.max_distance,
        metric=metric,
    )
    print(
        f"{len(trajectories)} trajectories -> {result.n_clusters} clusters "
        f"({args.metric} metric)"
    )
    for cluster in range(result.n_clusters):
        members = [names[i] for i in result.members(cluster)]
        print(f"  cluster {cluster}: {', '.join(members)}")
    return 0


def _collect_input_files(entries: list[str]) -> list[Path]:
    paths: list[Path] = []
    for entry in entries:
        path = Path(entry)
        if path.is_dir():
            for suffix in ("*.csv", "*.json", "*.gpx"):
                paths.extend(sorted(path.glob(suffix)))
        else:
            paths.append(path)
    return paths


def _cmd_flow(args: argparse.Namespace) -> int:
    from repro.analysis import occupancy_grid, od_matrix, speed_over_time

    paths = _collect_input_files(args.inputs)
    if not paths:
        raise ReproError("no trajectory files found")
    fleet, failures = load_fleet(
        paths,
        workers=args.workers,
        on_error=args.on_error,
        on_malformed=args.on_malformed,
    )
    for failure in failures:
        where = f" (moved to {failure.quarantined_to})" if failure.quarantined_to else ""
        print(
            f"warning: skipped {failure.item_id}: "
            f"{failure.error_type}: {failure.message}{where}",
            file=sys.stderr,
        )
    if not fleet:
        raise ReproError("no trajectory files could be loaded")

    profile = speed_over_time(fleet, bin_seconds=args.bin_seconds)
    rows = []
    for k in range(profile.bin_centers.size):
        if profile.observations[k] == 0:
            continue
        rows.append(
            (
                f"{profile.bin_edges[k]:.0f}-{profile.bin_edges[k + 1]:.0f}",
                profile.mean_speed_ms[k] * 3.6,
                int(profile.observations[k]),
            )
        )
    print(render_table(["time window (s)", "mean km/h", "segments"], rows,
                       title=f"fleet speed profile ({len(fleet)} trajectories)"))

    grid = occupancy_grid(fleet, cell_size_m=args.cell_m)
    print()
    print(render_table(
        ["cell", "distinct objects"],
        [(str(cell), count) for cell, count in grid.top_cells(args.top)],
        title=f"busiest {args.cell_m:g} m cells",
    ))

    od = od_matrix(fleet, cell_size_m=args.cell_m * 4)
    ranked = sorted(od.items(), key=lambda kv: -kv[1])[: args.top]
    print()
    print(render_table(
        ["origin zone", "destination zone", "trips"],
        [(str(o), str(d), count) for (o, d), count in ranked],
        title=f"top origin-destination pairs ({args.cell_m * 4:g} m zones)",
    ))
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    dataset = paper_dataset(args.seed)
    # Per-trajectory statistics go through the pipeline executor (the
    # dataset itself is generated sequentially — one seeded RNG stream).
    outcomes = execute(
        trajectory_stats,
        [(traj.object_id or f"trip-{i:02d}", traj) for i, traj in enumerate(dataset)],
        workers=args.workers,
        policy="raise",
    )
    agg = aggregate_trajectory_stats(outcome.value for outcome in outcomes)
    ref = PAPER_TABLE2
    print(
        render_table(
            ["statistic", "paper_mean", "ours_mean"],
            [
                ("duration (s)", ref.duration_mean_s, agg.duration_mean_s),
                ("speed (km/h)", ref.speed_mean_kmh, agg.speed_mean_kmh),
                ("length (km)", ref.length_mean_km, agg.length_mean_km),
                ("displacement (km)", ref.displacement_mean_km, agg.displacement_mean_km),
                ("# of data points", ref.points_mean, agg.points_mean),
            ],
            title="Table 2: paper vs this reproduction",
        )
    )
    return 0


def _cmd_pipeline(args: argparse.Namespace) -> int:
    paths = _collect_input_files(args.inputs)
    if not paths:
        raise ReproError("no trajectory files found")
    spec = _spec_with_engine(args.spec, args.engine)
    on_error = args.on_error
    on_malformed = args.on_malformed
    evaluate = "sync"
    checkpoint = args.checkpoint
    if args.resume:
        if checkpoint and Path(checkpoint) != Path(args.resume):
            raise ReproError("--resume already names the checkpoint directory; "
                             "drop --checkpoint or make them match")
        checkpoint = args.resume
        # Resume under the *original* configuration, not re-typed flags:
        # the manifest is the source of truth for what this run is.
        manifest = read_manifest(args.resume)
        spec = manifest.get("compressor", spec)
        on_error = manifest.get("on_error", on_error)
        on_malformed = manifest.get("on_malformed", on_malformed)
        evaluate = manifest.get("evaluate", evaluate)
    compressor = _build_spec(spec)  # validate the spec before any work
    engine = BatchEngine(
        spec,
        workers=args.workers,
        on_error=on_error,
        evaluate=evaluate,
        on_malformed=on_malformed,
    )
    run = engine.run(paths, checkpoint=checkpoint)
    rows = []
    for item in run.results:
        sync = (
            f"{item.mean_sync_error_m:.2f}"
            if item.mean_sync_error_m is not None
            else "-"
        )
        rows.append(
            (
                item.item_id,
                item.n_original,
                item.n_kept,
                f"{item.compression_percent:.1f}",
                sync,
                f"{item.runtime_s * 1000.0:.1f}",
            )
        )
    print(
        render_table(
            ["trajectory", "points", "kept", "removed %", "mean sync err (m)", "ms"],
            rows,
            title=f"pipeline: {compressor.name} on {len(paths)} file(s)",
        )
    )
    for failure in run.failures:
        where = f" (quarantined to {failure.quarantined_to})" if failure.quarantined_to else ""
        print(
            f"failed: {failure.item_id} after {failure.attempts} attempt(s): "
            f"{failure.error_type}: {failure.message}{where}",
            file=sys.stderr,
        )
    print(run.summary())
    if run.items_resumed:
        print(f"resumed {run.items_resumed} already-completed item(s) from {checkpoint}")
    if run.n_quarantined:
        print(f"quarantined {run.n_quarantined} malformed input file(s)")
    if args.output_dir:
        out_dir = Path(args.output_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        by_id = {path.stem: path for path in paths}
        for item in run.results:
            source = by_id.get(item.item_id)
            if source is None:
                continue
            compressed = _load_trajectory(source).subset(item.indices)
            _io.write_csv(compressed, out_dir / f"{item.item_id}.csv")
        print(f"wrote {len(run.results)} compressed trajectories to {out_dir}/")
    if args.metrics_json:
        run.write_metrics_json(args.metrics_json)
        print(f"wrote metrics to {args.metrics_json}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import contextlib
    import signal

    from repro.serve.server import TrajectoryServer

    if args.workers > 1:
        return _cmd_serve_sharded(args)

    server = TrajectoryServer(
        host=args.host,
        port=args.port,
        store_path=args.store,
        max_sessions=args.max_sessions,
        idle_timeout_s=args.idle_timeout,
        sweep_interval_s=args.sweep_interval,
        queue_size=args.queue_size,
        replace=args.replace,
        default_spec=args.algorithm,
        wal_dir=args.wal,
        shard=args.shard,
        degrade_budget_floor=args.degrade_floor,
        degrade_budget_factor=args.degrade_factor,
    )

    async def _run() -> None:
        loop = asyncio.get_running_loop()
        drain_requested = asyncio.Event()
        for signum in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError, RuntimeError):
                loop.add_signal_handler(signum, drain_requested.set)
        await server.start()
        recovery = server.recovery
        if recovery and recovery["sessions"]:
            print(
                f"recovered {recovery['sessions']} session(s), "
                f"{recovery['fixes']} fixes from the WAL",
                flush=True,
            )
        where = f" (store: {args.store})" if args.store else ""
        wal = f" (wal: {args.wal})" if args.wal else ""
        print(f"serving on {server.host}:{server.port}{where}{wal}", flush=True)
        serving = asyncio.create_task(server.serve_forever())
        waiter = asyncio.create_task(drain_requested.wait())
        try:
            await asyncio.wait(
                {serving, waiter}, return_when=asyncio.FIRST_COMPLETED
            )
        finally:
            serving.cancel()
            waiter.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await serving
        # Graceful drain on SIGTERM/SIGINT: stop accepting, flush every
        # live session into the store, persist, exit 0 — a supervisor's
        # TERM loses nothing.
        drained = await server.drain()
        failed = drained["failed"]
        print(
            f"drained: {len(drained['flushed'])} session(s) flushed"
            + (f", {failed} failed" if failed else ""),
            flush=True,
        )

    try:
        asyncio.run(_run())
    finally:
        # Abnormal exits land here with sessions possibly un-flushed;
        # persisting the store file is safe (atomic) and cheap even
        # when clean.
        server.manager.persist()
    return 0


def _cmd_serve_sharded(args: argparse.Namespace) -> int:
    """``repro serve --workers N``: the consistent-hash router tier.

    Spawns N worker processes (each a full durable server with its own
    WAL directory and store partition) under one thin router that
    hashes object ids onto them. SIGTERM/SIGINT drains the whole fleet
    — every worker flushes and persists its partition, the partitions
    are merged into the ``--store`` file — and exits 0.
    """
    import asyncio
    import contextlib
    import signal

    from repro.serve.pool import WorkerPool
    from repro.serve.router import ServeRouter

    pool = WorkerPool(
        args.workers,
        wal_dir=args.wal,
        store_path=args.store,
        default_spec=args.algorithm,
        max_sessions=args.max_sessions,
        degrade_budget_floor=args.degrade_floor,
        degrade_budget_factor=args.degrade_factor,
        idle_timeout_s=args.idle_timeout,
        sweep_interval_s=args.sweep_interval,
        queue_size=args.queue_size,
        replace=args.replace,
    )
    router = ServeRouter(
        pool,
        host=args.host,
        port=args.port,
        store_path=args.store,
        shed_inflight=args.shed_inflight,
    )

    async def _run() -> None:
        loop = asyncio.get_running_loop()
        drain_requested = asyncio.Event()
        for signum in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError, RuntimeError):
                loop.add_signal_handler(signum, drain_requested.set)
        await router.start()
        where = f" (store: {args.store})" if args.store else ""
        wal = f" (wal: {args.wal})" if args.wal else ""
        print(
            f"serving on {router.host}:{router.port}{where}{wal} "
            f"[router, {args.workers} workers]",
            flush=True,
        )
        serving = asyncio.create_task(router.serve_forever())
        waiter = asyncio.create_task(drain_requested.wait())
        try:
            await asyncio.wait(
                {serving, waiter}, return_when=asyncio.FIRST_COMPLETED
            )
        finally:
            serving.cancel()
            waiter.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await serving
        drained = await router.drain()
        merged = drained["merged"]
        exit_codes = drained["workers"]
        clean = sum(1 for code in exit_codes.values() if code == 0)
        summary = f"drained: {clean}/{len(exit_codes)} worker(s) exited cleanly"
        if merged is not None:
            summary += (
                f", merged {merged['n_objects']} object(s) into {merged['path']}"
            )
        print(summary, flush=True)

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_serve_chaos(args: argparse.Namespace) -> int:
    import json

    from repro.io_util import write_atomic_json
    from repro.serve.chaos import SCENARIOS, run_chaos

    names = tuple(args.scenario) if args.scenario else SCENARIOS
    if args.fast:
        names = tuple(
            name for name in names if name not in ("sigkill", "worker-kill")
        )
    report = run_chaos(names, seed=args.seed, n_fixes=args.fixes)
    for entry in report["scenarios"]:
        verdict = "PASS" if entry["passed"] else "FAIL"
        extras = {k: v for k, v in entry.items() if k not in ("name", "passed")}
        print(f"{verdict}  {entry['name']}: {json.dumps(extras, sort_keys=True)}")
    if args.output:
        write_atomic_json(Path(args.output), report)
        print(f"wrote {args.output}")
    if not report["passed"]:
        print("chaos: durability contract violated", file=sys.stderr)
        return 1
    print(f"chaos: {len(report['scenarios'])} scenario(s) passed (seed {args.seed})")
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    from repro.serve.bench import run_bench

    if args.workers > 1:
        return _cmd_serve_bench_sharded(args)

    report = run_bench(
        sessions=args.sessions,
        fixes_per_session=args.fixes,
        rejects=args.rejects,
        spec=args.spec,
        batch=args.batch,
        seed=args.seed,
        output=Path(args.output),
        wal=args.wal,
    )
    results = report["results"]
    print(
        f"{args.sessions} concurrent sessions x {args.fixes} fixes "
        f"({args.spec}): retained streams batch-identical"
    )
    print(
        f"append latency p50 {results['p50_append_ms']:.3f} ms, "
        f"p99 {results['p99_append_ms']:.3f} ms; "
        f"{results['fixes_per_sec']:.0f} fixes/s sustained"
    )
    print(
        f"admission control: {results['rejected_sessions']}/{args.rejects} "
        f"over-limit opens rejected"
    )
    evicted = results.get("fixes_evicted", 0)
    renegotiations = results.get("budget_renegotiations", 0)
    if evicted or renegotiations:
        by_algorithm = results.get("fixes_evicted_by_algorithm", {})
        breakdown = ", ".join(
            f"{name}={count}" for name, count in sorted(by_algorithm.items())
        )
        print(
            f"budget accounting: {evicted} fixes evicted"
            + (f" ({breakdown})" if breakdown else "")
            + f", {renegotiations} renegotiation(s), "
            f"{results.get('sessions_renegotiated', 0)} session(s) "
            f"renegotiated, "
            f"{results.get('sessions_admitted_degraded', 0)} degraded "
            f"admission(s)"
        )
    print(f"wrote {args.output}")
    return 0


def _cmd_serve_bench_sharded(args: argparse.Namespace) -> int:
    from repro.serve.bench import DEFAULT_SHARDED_OUTPUT, run_sharded_bench

    output = args.output
    if output == "BENCH_serve.json":  # the single-process default
        output = str(DEFAULT_SHARDED_OUTPUT)
    report = run_sharded_bench(
        sessions=args.sessions,
        fixes_per_session=args.fixes,
        spec=args.spec,
        batch=args.batch,
        workers=args.workers,
        drivers=args.drivers,
        concurrency=args.concurrency,
        seed=args.seed,
        output=Path(output),
        baseline=not args.no_baseline,
    )
    results = report["results"]
    print(
        f"{args.sessions} concurrent sessions x {args.fixes} fixes "
        f"({args.spec}) across {args.workers} workers: "
        f"retained streams batch-identical"
    )
    print(
        f"append latency p50 {results['p50_append_ms']:.3f} ms, "
        f"p99 {results['p99_append_ms']:.3f} ms; "
        f"{results['fixes_per_sec']:.0f} fixes/s sustained"
    )
    for shard, view in sorted(results["per_shard"].items()):
        print(
            f"  {shard}: {view['sessions']} sessions, "
            f"p50 {view['p50_append_ms']:.3f} ms, "
            f"p99 {view['p99_append_ms']:.3f} ms"
        )
    speedup = results["speedup_vs_single_process"]
    if speedup is not None:
        cpus = report["environment"]["available_cpus"]
        print(
            f"throughput vs single-process WAL server: {speedup:.2f}x "
            f"({cpus} CPU(s) available)"
        )
    print(
        f"drain: exit {results['drain_exit_code']}, "
        f"{results['merged_objects']} object(s) merged"
    )
    print(f"wrote {output}")
    return 0


def _query_local(args: argparse.Namespace) -> dict:
    """Answer one query against a store file via the local engine."""
    from repro.exceptions import ObjectNotFoundError
    from repro.geometry.bbox import BBox
    from repro.query.engine import QueryEngine
    from repro.storage.store import TrajectoryStore

    store = TrajectoryStore.load(Path(args.store))
    engine = QueryEngine(store)
    kind = args.query_command
    try:
        if kind == "position":
            answer = engine.position_at(args.object, args.t)
            return {
                "object": answer.object_id,
                "t": answer.t,
                "x": answer.x,
                "y": answer.y,
                "error_bound_m": answer.error_bound_m,
                "source": "stored",
            }
        if kind == "window":
            box = None if args.bbox is None else BBox(*args.bbox)
            ids = engine.window(args.t0, args.t1, box, args.mode)
            return {"objects": ids, "n": len(ids)}
        if kind == "nearest":
            answers = engine.nearest(args.x, args.y, args.t, k=args.k)
            return {
                "results": [
                    {
                        "object": a.object_id,
                        "distance_m": a.distance_m,
                        "x": a.x,
                        "y": a.y,
                        "error_bound_m": a.error_bound_m,
                        "source": "stored",
                    }
                    for a in answers
                ]
            }
        # summaries
        if args.object is not None:
            objects = {args.object: store.summary(args.object).to_wire()}
        else:
            objects = {
                key: store.summary(key).to_wire() for key in store.object_ids()
            }
        config = store.summary_config
        return {
            "objects": objects,
            "live_sessions": [],
            "config": {
                "partition_points": config.partition_points,
                "grid_m": config.grid_m,
                "time_grid_s": config.time_grid_s,
            },
        }
    except ObjectNotFoundError as exc:
        raise ReproError(f"no stored object {exc} in {args.store}") from None
    except ValueError as exc:
        raise ReproError(str(exc)) from None


def _query_remote(args: argparse.Namespace) -> dict:
    """Answer one query against a live server (or router) over the wire."""
    import asyncio

    from repro.exceptions import ServeError
    from repro.serve.client import ServeClient

    async def _run() -> dict:
        async with await ServeClient.connect(args.host, args.port) as client:
            kind = args.query_command
            if kind == "position":
                response = await client.request(
                    {
                        "op": "query",
                        "query": "position",
                        "object": args.object,
                        "t": args.t,
                    }
                )
                return {**response["result"], "source": response.get("source")}
            if kind == "window":
                ids = await client.query_window(
                    args.t0, args.t1, args.bbox, args.mode
                )
                return {"objects": ids, "n": len(ids)}
            if kind == "nearest":
                results = await client.query_nearest(
                    args.x, args.y, args.t, k=args.k
                )
                return {"results": results}
            return await client.summaries(args.object)

    try:
        return asyncio.run(_run())
    except OSError as exc:
        raise ReproError(
            f"cannot reach server at {args.host}:{args.port}: {exc} "
            f"(use --store to query a store file directly)"
        ) from exc
    except ServeError as exc:
        raise ReproError(f"{exc} (code {exc.code})") from exc


def _print_query_result(kind: str, result: dict) -> None:
    if kind == "position":
        bound = result.get("error_bound_m")
        margin = "no error bound" if bound is None else f"±{bound:g} m"
        print(
            f"{result['object']} @ t={result['t']:g}: "
            f"({result['x']:.3f}, {result['y']:.3f})  [{margin}, "
            f"{result.get('source', 'stored')}]"
        )
    elif kind == "window":
        print(f"{result['n']} object(s)")
        for object_id in result["objects"]:
            print(f"  {object_id}")
    elif kind == "nearest":
        rows = []
        for rank, entry in enumerate(result["results"], start=1):
            bound = entry.get("error_bound_m")
            rows.append(
                (
                    rank,
                    entry["object"],
                    f"{entry['distance_m']:.3f}",
                    f"({entry['x']:.3f}, {entry['y']:.3f})",
                    "-" if bound is None else f"{bound:g}",
                    entry.get("source", "stored"),
                )
            )
        print(
            render_table(
                ["#", "object", "distance (m)", "position", "bound (m)", "source"],
                rows,
                title="nearest objects",
            )
        )
    else:  # summaries
        config = result.get("config")
        if config:
            print(
                f"summary grid: {config['partition_points']} points/partition, "
                f"{config['grid_m']:g} m x {config['time_grid_s']:g} s"
            )
        rows = [
            (
                object_id,
                summary["n_points"],
                len(summary["partitions"]),
                f"[{summary['partitions'][0]['t0']:g}, "
                f"{summary['partitions'][-1]['t1']:g}]"
                if summary["partitions"]
                else "-",
            )
            for object_id, summary in sorted(result["objects"].items())
        ]
        print(
            render_table(
                ["object", "points", "partitions", "time span"],
                rows,
                title=f"{len(rows)} stored object(s)",
            )
        )
        live = result.get("live_sessions") or []
        if live:
            print(f"live sessions: {', '.join(live)}")


def _cmd_query(args: argparse.Namespace) -> int:
    import json

    result = _query_local(args) if args.store is not None else _query_remote(args)
    if args.json:
        print(json.dumps(result, indent=2, sort_keys=True))
    else:
        _print_query_result(args.query_command, result)
    return 0


def _cmd_obs_dump(args: argparse.Namespace) -> int:
    import json

    from repro.obs import render_prometheus

    if args.input is not None:
        data = json.loads(Path(args.input).read_text())
        if not isinstance(data, dict):
            raise ReproError(f"{args.input}: expected a JSON object of metrics")
        # Accept a bare registry export, a server stats payload, or a
        # bench report — anything carrying a "metrics" registry dict.
        metrics = data.get("metrics", data)
        if "server_stats" in data and "metrics" not in data:
            metrics = data["server_stats"].get("metrics", data["server_stats"])
    else:
        import asyncio

        from repro.serve.client import ServeClient

        async def _fetch() -> dict:
            async with await ServeClient.connect(args.host, args.port) as client:
                return await client.stats()

        try:
            stats = asyncio.run(_fetch())
        except OSError as exc:
            raise ReproError(
                f"cannot reach server at {args.host}:{args.port}: {exc}"
            ) from exc
        metrics = stats.get("metrics", stats)
    if args.format == "json":
        print(json.dumps(metrics, indent=2, sort_keys=True))
    else:
        print(render_prometheus(metrics, prefix=args.prefix), end="")
    return 0


def _positive_int(text: str) -> int:
    """argparse type: an integer >= 1, rejected at parse time.

    Catching these at the parser keeps bad values out of the server
    constructor, where a ``ValueError`` would print a traceback instead
    of a usage line.
    """
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer") from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _positive_float(text: str) -> float:
    """argparse type: a finite number > 0, rejected at parse time."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number") from None
    if not 0 < value < float("inf"):
        raise argparse.ArgumentTypeError(f"must be a positive number, got {text}")
    return value


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Spatiotemporal trajectory compression (Meratnia & de By, EDBT 2004)",
    )
    from repro import __version__

    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_stats = sub.add_parser("stats", help="print statistics of a trajectory file")
    p_stats.add_argument("input", help="trajectory file (.csv/.json/.gpx)")
    p_stats.set_defaults(func=_cmd_stats)

    p_compress = sub.add_parser("compress", help="compress a trajectory file")
    p_compress.add_argument("input", help="trajectory file (.csv/.json/.gpx)")
    p_compress.add_argument(
        "--algorithm", "-a", default="td-tr",
        help="algorithm name or spec string, e.g. td-tr or "
             "'opw-sp:epsilon=30,speed=5'",
    )
    p_compress.add_argument("--epsilon", "-e", type=float, default=None,
                            help="distance threshold in metres (or alpha budget)")
    p_compress.add_argument("--speed", type=float, default=None,
                            help="speed-difference threshold in m/s (SP algorithms)")
    p_compress.add_argument("--step", type=int, default=None,
                            help="decimation step (every-ith)")
    p_compress.add_argument("--angle", type=float, default=None,
                            help="angular threshold in radians (angular)")
    p_compress.add_argument("--budget", type=int, default=None,
                            help="point budget (budget algorithms)")
    p_compress.add_argument("--output", "-o", default=None,
                            help="write the compressed trajectory here (.csv/.json)")
    p_compress.add_argument(
        "--engine", choices=("numpy", "python"), default=None,
        help="evaluation engine: numpy (default, batch kernels) or python "
             "(scalar reference); both produce identical output",
    )
    p_compress.set_defaults(func=_cmd_compress)

    p_report = sub.add_parser(
        "report", help="detailed per-segment error diagnostics of a compression"
    )
    p_report.add_argument("input", help="trajectory file (.csv/.json/.gpx)")
    p_report.add_argument(
        "--algorithm", "-a", default="td-tr",
        help="algorithm name or spec string",
    )
    p_report.add_argument("--epsilon", "-e", type=float, default=None)
    p_report.add_argument("--speed", type=float, default=None)
    p_report.add_argument("--step", type=int, default=None)
    p_report.add_argument("--angle", type=float, default=None)
    p_report.add_argument("--budget", type=int, default=None)
    p_report.add_argument(
        "--engine", choices=("numpy", "python"), default=None,
        help="evaluation engine: numpy (default) or python (scalar reference)",
    )
    p_report.set_defaults(func=_cmd_report)

    p_generate = sub.add_parser("generate", help="generate a synthetic trajectory")
    p_generate.add_argument("--profile", choices=sorted(_PROFILES), default="urban")
    p_generate.add_argument("--seed", type=int, default=0)
    p_generate.add_argument("--length-km", type=float, default=None)
    p_generate.add_argument("--object-id", default=None)
    p_generate.add_argument("--output", "-o", required=True)
    p_generate.set_defaults(func=_cmd_generate)

    p_dataset = sub.add_parser(
        "dataset", help="materialize the standard evaluation dataset as CSVs"
    )
    p_dataset.add_argument("output_dir")
    p_dataset.add_argument("--seed", type=int, default=DATASET_SEED)
    p_dataset.set_defaults(func=_cmd_dataset)

    p_figures = sub.add_parser(
        "figures", help="regenerate the paper's evaluation figures as tables"
    )
    p_figures.add_argument(
        "figure", choices=[*sorted(_figures.ALL_FIGURES), "all"], default="all",
        nargs="?",
    )
    p_figures.add_argument(
        "--quick", action="store_true",
        help="3 trajectories x 3 thresholds instead of the full grid",
    )
    p_figures.add_argument(
        "--chart", action="store_true",
        help="also draw ASCII charts of each figure's series",
    )
    p_figures.set_defaults(func=_cmd_figures)

    p_cluster = sub.add_parser(
        "cluster", help="group trajectory files by similarity"
    )
    p_cluster.add_argument(
        "inputs", nargs="+", help="trajectory files and/or directories"
    )
    p_cluster.add_argument(
        "--metric", choices=("route", "synchronized"), default="route",
        help="route shape (Hausdorff, time-blind) or synchronized distance",
    )
    group = p_cluster.add_mutually_exclusive_group(required=True)
    group.add_argument("--clusters", type=int, default=None,
                       help="stop at this many clusters")
    group.add_argument("--max-distance", type=float, default=None,
                       help="stop before merges beyond this distance (m)")
    p_cluster.set_defaults(func=_cmd_cluster)

    p_flow = sub.add_parser(
        "flow", help="rush-hour analytics over trajectory files"
    )
    p_flow.add_argument("inputs", nargs="+", help="trajectory files/directories")
    p_flow.add_argument("--bin-seconds", type=float, default=600.0,
                        help="speed-profile bin width")
    p_flow.add_argument("--cell-m", type=float, default=400.0,
                        help="occupancy cell size in metres")
    p_flow.add_argument("--top", type=int, default=5,
                        help="how many hotspots / OD pairs to list")
    p_flow.add_argument("--workers", "-w", type=int, default=0,
                        help="worker processes for loading files (0 = inline)")
    p_flow.add_argument("--on-error", default="raise",
                        help="raise, skip, or retry(n) for unreadable files")
    p_flow.add_argument(
        "--on-malformed", default=None,
        help="unparsable-file policy: raise, skip, or quarantine:<dir> "
             "(default: follow --on-error)",
    )
    p_flow.set_defaults(func=_cmd_flow)

    p_table2 = sub.add_parser("table2", help="regenerate the Table 2 comparison")
    p_table2.add_argument("--seed", type=int, default=DATASET_SEED)
    p_table2.add_argument("--workers", "-w", type=int, default=0,
                          help="worker processes for the per-trip statistics")
    p_table2.set_defaults(func=_cmd_table2)

    p_pipeline = sub.add_parser(
        "pipeline",
        help="batch-compress a fleet of trajectory files through the "
             "parallel engine",
    )
    p_pipeline.add_argument(
        "inputs", nargs="+", help="trajectory files and/or directories"
    )
    p_pipeline.add_argument(
        "--spec", "-s", default="td-tr:epsilon=30",
        help="compressor spec string, e.g. 'opw-sp:epsilon=30,speed=5'",
    )
    p_pipeline.add_argument("--workers", "-w", type=int, default=0,
                            help="worker processes (0 = inline serial)")
    p_pipeline.add_argument(
        "--on-error", default="raise",
        help="failure policy: raise, skip, retry(n), or retry(n,backoff=s)",
    )
    p_pipeline.add_argument(
        "--on-malformed", default=None,
        help="unparsable-input policy: raise, skip, or quarantine:<dir> "
             "(default: follow --on-error)",
    )
    p_pipeline.add_argument(
        "--checkpoint", default=None,
        help="checkpoint directory: journal completed items so a killed "
             "run can resume",
    )
    p_pipeline.add_argument(
        "--resume", default=None,
        help="resume a checkpointed run from this directory, restoring "
             "its original configuration and skipping finished items",
    )
    p_pipeline.add_argument(
        "--engine", choices=("numpy", "python"), default=None,
        help="evaluation engine appended to the spec (spec's own engine= "
             "wins): numpy (default) or python (scalar reference)",
    )
    p_pipeline.add_argument(
        "--metrics-json", default=None,
        help="write the run's aggregated metrics JSON here (atomically)",
    )
    p_pipeline.add_argument(
        "--output-dir", "-o", default=None,
        help="write each compressed trajectory as CSV into this directory",
    )
    p_pipeline.set_defaults(func=_cmd_pipeline)

    p_serve = sub.add_parser(
        "serve",
        help="run the trajectory-ingestion service (NDJSON over TCP)",
    )
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default loopback)")
    p_serve.add_argument("--port", type=int, default=8750,
                         help="TCP port (0 = ephemeral, printed on start)")
    p_serve.add_argument(
        "--store", default=None,
        help="store file (.rsto) closed sessions are flushed into; "
             "loaded first if it already exists",
    )
    p_serve.add_argument("--max-sessions", type=_positive_int, default=1024,
                         help="admission limit: opens beyond this are rejected")
    p_serve.add_argument("--idle-timeout", type=_positive_float, default=300.0,
                         help="seconds of inactivity before a session is "
                              "flushed and evicted")
    p_serve.add_argument("--sweep-interval", type=_positive_float, default=5.0,
                         help="how often the idle sweeper runs (seconds)")
    p_serve.add_argument("--queue-size", type=_positive_int, default=64,
                         help="per-connection request queue bound (backpressure)")
    p_serve.add_argument(
        "--replace", action="store_true",
        help="allow a flushed session to overwrite a stored object id",
    )
    p_serve.add_argument(
        "--wal", default=None, metavar="DIR",
        help="write-ahead log directory: every acknowledged request is "
             "fsynced there before the response, and a restart replays "
             "surviving sessions (see docs/SERVING.md)",
    )
    p_serve.add_argument(
        "--algorithm", "-a", default=None, metavar="SPEC",
        help="default online compressor spec for opens that carry none, "
             "e.g. 'operb:epsilon=30' (see repro.streaming)",
    )
    p_serve.add_argument(
        "--degrade-floor", type=_positive_int, default=None, metavar="N",
        help="degraded admission: when the session table is full, "
             "renegotiate live budget-capable sessions down (never below "
             "this floor) instead of rejecting the open (see "
             "docs/SERVING.md)",
    )
    p_serve.add_argument(
        "--degrade-factor", type=_positive_float, default=0.5, metavar="F",
        help="multiplier applied to each live session's budget during a "
             "degraded admission (0 < F < 1, default 0.5)",
    )
    p_serve.add_argument(
        "--workers", type=_positive_int, default=1, metavar="N",
        help="shard the service across N worker processes behind a "
             "consistent-hash router; each worker gets its own WAL "
             "directory and store partition (see docs/SERVING.md)",
    )
    p_serve.add_argument(
        "--shed-inflight", type=_positive_int, default=256, metavar="N",
        help="router only: per-shard inflight-request ceiling before the "
             "router sheds load for that shard (code 'rejected')",
    )
    p_serve.add_argument(
        "--shard", default=None, metavar="NAME",
        help=argparse.SUPPRESS,  # set by the router when spawning workers
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_chaos = sub.add_parser(
        "serve-chaos",
        help="fault-injection harness: prove the serve tier's crash "
             "recovery (see docs/SERVING.md)",
    )
    p_chaos.add_argument(
        "--scenario", action="append", default=None, metavar="NAME",
        help="run only this scenario (repeatable): fsync-fail, torn-tail, "
             "disconnect, sigkill, worker-kill; default all",
    )
    p_chaos.add_argument(
        "--fast", action="store_true",
        help="skip the sigkill/worker-kill scenarios (they spawn real "
             "server subprocesses)",
    )
    p_chaos.add_argument("--fixes", type=_positive_int, default=120,
                         help="fixes streamed per scenario")
    p_chaos.add_argument("--seed", type=int, default=7,
                         help="scenario RNG seed (fault offsets, workload)")
    p_chaos.add_argument("--output", "-o", default=None,
                         help="write the JSON report here (atomically)")
    p_chaos.set_defaults(func=_cmd_serve_chaos)

    p_bench = sub.add_parser(
        "serve-bench",
        help="load-test the ingestion service and write BENCH_serve.json",
    )
    p_bench.add_argument("--sessions", type=int, default=50,
                         help="concurrent sessions (also the induced "
                              "admission limit)")
    p_bench.add_argument("--fixes", type=int, default=200,
                         help="fixes streamed per session")
    p_bench.add_argument("--rejects", type=int, default=8,
                         help="over-limit opens attempted while the server "
                              "is full")
    p_bench.add_argument("--spec", "--algorithm", default="opw-tr:epsilon=25",
                         help="online compressor spec for every session, "
                              "e.g. 'operb:epsilon=25' or 'cised:epsilon=25'")
    p_bench.add_argument("--batch", type=int, default=1,
                         help="fixes per append request (1 = per-fix latency)")
    p_bench.add_argument("--seed", type=int, default=7, help="workload RNG seed")
    p_bench.add_argument("--output", "-o", default="BENCH_serve.json",
                         help="report path (written atomically)")
    p_bench.add_argument(
        "--wal", action="store_true",
        help="run the server with a write-ahead log (temporary directory): "
             "measures the durability overhead",
    )
    p_bench.add_argument(
        "--workers", type=_positive_int, default=1, metavar="N",
        help="bench the sharded tier: N worker processes behind the "
             "consistent-hash router (WAL always on; writes "
             "BENCH_serve_sharded.json with per-shard percentiles and a "
             "speedup vs a single-process run)",
    )
    p_bench.add_argument(
        "--drivers", type=_positive_int, default=None, metavar="N",
        help="sharded bench only: load-generator subprocesses "
             "(default scales with CPU count)",
    )
    p_bench.add_argument(
        "--concurrency", type=_positive_int, default=64, metavar="N",
        help="sharded bench only: concurrent connections per driver",
    )
    p_bench.add_argument(
        "--no-baseline", action="store_true",
        help="sharded bench only: skip the single-process comparison run",
    )
    p_bench.set_defaults(func=_cmd_serve_bench)

    p_query = sub.add_parser(
        "query",
        help="query compressed trajectories: a .rsto store file directly, "
             "or a live server/router (see docs/QUERYING.md)",
    )
    query_sub = p_query.add_subparsers(dest="query_command", required=True)

    def _query_target_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--store", default=None, metavar="FILE",
            help="query this .rsto store file locally (no server needed)",
        )
        p.add_argument("--host", default="127.0.0.1",
                       help="live server/router address (when --store absent)")
        p.add_argument("--port", type=int, default=8750,
                       help="live server/router port")
        p.add_argument("--json", action="store_true",
                       help="print the raw JSON result instead of a table")

    p_qpos = query_sub.add_parser(
        "position", help="interpolated position of one object at a time"
    )
    p_qpos.add_argument("object", help="object id")
    p_qpos.add_argument("t", type=float, help="query time (seconds)")
    _query_target_args(p_qpos)
    p_qpos.set_defaults(func=_cmd_query)

    p_qwin = query_sub.add_parser(
        "window", help="object ids matching a time window (and optional box)"
    )
    p_qwin.add_argument("t0", type=float, help="window start (seconds)")
    p_qwin.add_argument("t1", type=float, help="window end (seconds)")
    p_qwin.add_argument(
        "--bbox", type=float, nargs=4, default=None,
        metavar=("MIN_X", "MIN_Y", "MAX_X", "MAX_Y"),
        help="restrict to trajectories passing through this box (metres)",
    )
    p_qwin.add_argument(
        "--mode", choices=("stored", "possibly", "definitely"),
        default="stored",
        help="answer semantics under compression error (docs/QUERYING.md)",
    )
    _query_target_args(p_qwin)
    p_qwin.set_defaults(func=_cmd_query)

    p_qnear = query_sub.add_parser(
        "nearest", help="the k objects nearest a point at a time"
    )
    p_qnear.add_argument("x", type=float, help="query x (metres)")
    p_qnear.add_argument("y", type=float, help="query y (metres)")
    p_qnear.add_argument("t", type=float, help="query time (seconds)")
    p_qnear.add_argument("-k", type=_positive_int, default=1,
                         help="how many neighbours (default 1)")
    _query_target_args(p_qnear)
    p_qnear.set_defaults(func=_cmd_query)

    p_qsum = query_sub.add_parser(
        "summaries", help="partition summaries of stored objects"
    )
    p_qsum.add_argument("object", nargs="?", default=None,
                        help="one object id (default: every stored object)")
    _query_target_args(p_qsum)
    p_qsum.set_defaults(func=_cmd_query)

    p_obs = sub.add_parser(
        "obs", help="observability utilities (see docs/OBSERVABILITY.md)"
    )
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)
    p_dump = obs_sub.add_parser(
        "dump",
        help="export metrics as Prometheus text exposition or JSON",
    )
    p_dump.add_argument(
        "--input", "-i", default=None,
        help="metrics JSON file (a registry export, server stats payload "
             "or bench report); omit to query a live server's stats verb",
    )
    p_dump.add_argument("--host", default="127.0.0.1",
                        help="server address for live queries")
    p_dump.add_argument("--port", type=int, default=8750,
                        help="server port for live queries")
    p_dump.add_argument(
        "--format", "-f", choices=("prometheus", "json"), default="prometheus",
        help="output format (default Prometheus text exposition 0.0.4)",
    )
    p_dump.add_argument("--prefix", default="repro",
                        help="metric-name prefix for Prometheus output")
    p_dump.set_defaults(func=_cmd_obs_dump)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return int(args.func(args))
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # stdout went away (e.g. `repro stats x.csv | head`): exit quietly.
        return 0
    except KeyboardInterrupt:
        # Ctrl-C (e.g. stopping `repro serve`): no traceback, POSIX code.
        print(file=sys.stderr)
        return 130


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
