"""Agglomerative clustering of trajectories.

A small, dependency-free hierarchical clusterer over a precomputed
distance matrix — enough to support the paper's motivating analyses
(grouping commuters by route, finding the distinct flows in a rush hour)
without dragging in a learning framework. Merging is cheapest-pair-first
with single / complete / average linkage; cut either at a target cluster
count or at a distance ceiling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.analysis.similarity import mean_synchronized_distance, pairwise_matrix
from repro.trajectory.trajectory import Trajectory

__all__ = ["ClusterResult", "agglomerate", "cluster_trajectories"]

_LINKAGES = ("single", "complete", "average")


@dataclass(frozen=True)
class ClusterResult:
    """Outcome of a clustering run.

    Attributes:
        labels: cluster id per input item, ``0 .. n_clusters - 1``,
            numbered by first appearance.
        merge_distances: distance at which each merge happened, in order;
            useful for picking a cut by eye.
    """

    labels: np.ndarray
    merge_distances: tuple[float, ...]

    @property
    def n_clusters(self) -> int:
        return int(self.labels.max()) + 1 if self.labels.size else 0

    def members(self, cluster: int) -> np.ndarray:
        """Indices of the items in one cluster."""
        return np.nonzero(self.labels == cluster)[0]


def _linkage_distance(
    distances: np.ndarray, members_a: list[int], members_b: list[int], linkage: str
) -> float:
    block = distances[np.ix_(members_a, members_b)]
    if linkage == "single":
        return float(block.min())
    if linkage == "complete":
        return float(block.max())
    return float(block.mean())


def agglomerate(
    distances: np.ndarray,
    n_clusters: int | None = None,
    max_distance: float | None = None,
    linkage: str = "average",
) -> ClusterResult:
    """Agglomerative clustering over a distance matrix.

    Args:
        distances: symmetric ``(n, n)`` matrix with zero diagonal.
        n_clusters: stop when this many clusters remain.
        max_distance: stop before any merge whose linkage distance
            exceeds this.
        linkage: ``"single"``, ``"complete"`` or ``"average"``.

    Exactly one of ``n_clusters`` / ``max_distance`` must be given.

    Returns:
        A :class:`ClusterResult`; labels are renumbered by first
        appearance so output is deterministic.
    """
    distances = np.asarray(distances, dtype=float)
    n = distances.shape[0]
    if distances.shape != (n, n):
        raise ValueError(f"distance matrix must be square, got {distances.shape}")
    if not np.allclose(distances, distances.T):
        raise ValueError("distance matrix must be symmetric")
    if (n_clusters is None) == (max_distance is None):
        raise ValueError("give exactly one of n_clusters / max_distance")
    if n_clusters is not None and not 1 <= n_clusters <= n:
        raise ValueError(f"n_clusters must be in 1..{n}, got {n_clusters}")
    if linkage not in _LINKAGES:
        raise ValueError(f"unknown linkage {linkage!r}; use one of {_LINKAGES}")

    clusters: dict[int, list[int]] = {i: [i] for i in range(n)}
    merge_distances: list[float] = []
    target = n_clusters if n_clusters is not None else 1
    while len(clusters) > target:
        keys = sorted(clusters)
        best: tuple[float, int, int] | None = None
        for ai, a in enumerate(keys):
            for b in keys[ai + 1 :]:
                d = _linkage_distance(distances, clusters[a], clusters[b], linkage)
                if best is None or d < best[0]:
                    best = (d, a, b)
        assert best is not None
        d, a, b = best
        if max_distance is not None and d > max_distance:
            break
        clusters[a] = clusters[a] + clusters[b]
        del clusters[b]
        merge_distances.append(d)

    labels = np.full(n, -1, dtype=int)
    next_label = 0
    order: dict[int, int] = {}
    for key in sorted(clusters, key=lambda k: min(clusters[k])):
        order[key] = next_label
        next_label += 1
    for key, members in clusters.items():
        labels[members] = order[key]
    return ClusterResult(labels, tuple(merge_distances))


def cluster_trajectories(
    trajectories: Sequence[Trajectory],
    n_clusters: int | None = None,
    max_distance: float | None = None,
    metric: Callable[[Trajectory, Trajectory], float] = mean_synchronized_distance,
    linkage: str = "average",
) -> ClusterResult:
    """Cluster trajectories under a trajectory metric.

    Convenience wrapper: builds the pairwise matrix with ``metric`` and
    runs :func:`agglomerate`.
    """
    matrix = pairwise_matrix(trajectories, metric)
    return agglomerate(
        matrix, n_clusters=n_clusters, max_distance=max_distance, linkage=linkage
    )
