"""Movement-pattern analysis: similarity, clustering, traffic flow.

The paper's stated aim is "to provide tools to study, analyse and
understand" movement patterns; this package supplies the first rung of
those tools on top of the trajectory model and the Sect. 4 distance
notion: pairwise trajectory similarity (synchronized and route-shape),
dependency-free agglomerative clustering, and rush-hour style flow
analytics (fleet speed over time, spatial occupancy hotspots).
"""

from repro.analysis.clustering import ClusterResult, agglomerate, cluster_trajectories
from repro.analysis.encounters import ClosestApproach, closest_approach, encounters
from repro.analysis.flow import (
    OccupancyGrid,
    SpeedProfile,
    occupancy_grid,
    od_matrix,
    speed_over_time,
)
from repro.analysis.similarity import (
    hausdorff_distance,
    max_synchronized_distance,
    mean_synchronized_distance,
    overlap_interval,
    pairwise_matrix,
)

__all__ = [
    "ClosestApproach",
    "ClusterResult",
    "OccupancyGrid",
    "SpeedProfile",
    "agglomerate",
    "closest_approach",
    "cluster_trajectories",
    "encounters",
    "hausdorff_distance",
    "max_synchronized_distance",
    "mean_synchronized_distance",
    "occupancy_grid",
    "od_matrix",
    "overlap_interval",
    "pairwise_matrix",
    "speed_over_time",
]
