"""Trajectory similarity measures for pattern analysis.

The paper's introduction frames the whole effort as providing "tools to
study, analyse and understand" movement patterns; its Sect. 4 error
notion is explicitly related to Nanni's spatio-temporal clustering
distance [18]. This module turns that error notion into a general
*similarity measure between any two trajectories* (not just an original
and its compression), plus a purely spatial route-shape distance for
comparisons that should ignore timing:

* :func:`mean_synchronized_distance` — the time-weighted average distance
  between two objects travelling synchronously over their overlapping
  time interval (α generalized to arbitrary pairs);
* :func:`max_synchronized_distance` — the corresponding maximum;
* :func:`hausdorff_distance` — symmetric route-shape distance on sampled
  positions, blind to time;
* :func:`pairwise_matrix` — the distance matrix clustering consumes.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.error.synchronized import segment_mean_distance
from repro.exceptions import TrajectoryError
from repro.trajectory.trajectory import Trajectory

__all__ = [
    "overlap_interval",
    "mean_synchronized_distance",
    "max_synchronized_distance",
    "hausdorff_distance",
    "pairwise_matrix",
]


def overlap_interval(a: Trajectory, b: Trajectory) -> tuple[float, float]:
    """The time interval both trajectories cover.

    Raises:
        TrajectoryError: when the trajectories do not overlap in time (a
            synchronized comparison is then meaningless).
    """
    t0 = max(a.start_time, b.start_time)
    t1 = min(a.end_time, b.end_time)
    if t1 <= t0:
        raise TrajectoryError(
            f"trajectories do not overlap in time: "
            f"[{a.start_time}, {a.end_time}] vs [{b.start_time}, {b.end_time}]"
        )
    return t0, t1


def _evaluation_grid(a: Trajectory, b: Trajectory) -> np.ndarray:
    """Merged breakpoint grid over the overlap interval."""
    t0, t1 = overlap_interval(a, b)
    inner = np.union1d(a.t, b.t)
    inner = inner[(inner > t0) & (inner < t1)]
    return np.concatenate([[t0], inner, [t1]])


def mean_synchronized_distance(a: Trajectory, b: Trajectory) -> float:
    """Time-weighted mean distance between two synchronously moving objects.

    Evaluated in closed form over the overlap interval; both trajectories
    are piecewise linear, so between merged breakpoints the difference
    vector is linear and the per-interval integral of Sect. 4.2 applies.
    Symmetric; zero iff the objects coincide throughout the overlap.
    """
    grid = _evaluation_grid(a, b)
    deltas = a.positions_at(grid) - b.positions_at(grid)
    weights = np.diff(grid)
    total = 0.0
    for i in range(grid.size - 1):
        total += weights[i] * segment_mean_distance(deltas[i], deltas[i + 1])
    return total / float(grid[-1] - grid[0])


def max_synchronized_distance(a: Trajectory, b: Trajectory) -> float:
    """Maximum distance between the two objects over the overlap interval.

    Exact (the distance is convex between merged breakpoints).
    """
    grid = _evaluation_grid(a, b)
    diff = a.positions_at(grid) - b.positions_at(grid)
    return float(np.hypot(diff[:, 0], diff[:, 1]).max())


def hausdorff_distance(a: Trajectory, b: Trajectory, n_samples: int = 256) -> float:
    """Symmetric Hausdorff distance between the two *routes*.

    Samples both paths uniformly in time and measures the classic
    max-min point-set distance: how far the most isolated point of one
    route is from the other route. Ignores timing entirely — two objects
    driving the same road an hour apart have Hausdorff distance ~0 but a
    large synchronized distance.
    """
    if n_samples < 2:
        raise ValueError(f"need at least 2 samples, got {n_samples}")

    def sample(traj: Trajectory) -> np.ndarray:
        if len(traj) == 1:
            return traj.xy.copy()
        times = np.linspace(traj.start_time, traj.end_time, n_samples)
        return traj.positions_at(times)

    pa = sample(a)
    pb = sample(b)
    # Pairwise distances (n_samples is small; the n^2 matrix is fine).
    diff = pa[:, None, :] - pb[None, :, :]
    dist = np.hypot(diff[..., 0], diff[..., 1])
    return float(max(dist.min(axis=1).max(), dist.min(axis=0).max()))


def pairwise_matrix(
    trajectories: Sequence[Trajectory],
    metric: Callable[[Trajectory, Trajectory], float] = mean_synchronized_distance,
) -> np.ndarray:
    """Symmetric pairwise distance matrix under ``metric``.

    Args:
        trajectories: at least two trajectories.
        metric: any symmetric distance on trajectories; defaults to the
            synchronized mean distance.

    Returns:
        Array of shape ``(n, n)`` with zero diagonal.
    """
    n = len(trajectories)
    if n < 2:
        raise ValueError("need at least two trajectories")
    out = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            distance = float(metric(trajectories[i], trajectories[j]))
            out[i, j] = distance
            out[j, i] = distance
    return out
