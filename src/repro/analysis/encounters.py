"""Encounter detection between moving objects — in closed form.

"Which vehicles came within 50 m of each other, and when?" is the classic
moving-object-database proximity query. For piecewise-linear
trajectories it has an exact answer: on every interval of the merged
breakpoint grid the difference vector between the two objects is linear
in time, so the squared distance is the same quadratic
``A u² + B u + C`` the Sect. 4.2 error integral works with — here solved
for its minimum (closest approach) and for its sub-level sets
(``dist <= d`` windows) instead of integrated.

Works on raw and compressed trajectories alike; with compressed inputs,
widen ``within_m`` by the stored error margins to get possibly-semantics
(see ``docs/ALGORITHMS.md`` on guarantees).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.analysis.similarity import overlap_interval
from repro.trajectory.trajectory import Trajectory

__all__ = ["ClosestApproach", "closest_approach", "encounters"]


@dataclass(frozen=True, slots=True)
class ClosestApproach:
    """The instant two objects were nearest to each other."""

    time: float
    distance_m: float
    position_a: tuple[float, float]
    position_b: tuple[float, float]


def _merged_grid(a: Trajectory, b: Trajectory) -> np.ndarray:
    t0, t1 = overlap_interval(a, b)
    inner = np.union1d(a.t, b.t)
    inner = inner[(inner > t0) & (inner < t1)]
    return np.concatenate([[t0], inner, [t1]])


def closest_approach(a: Trajectory, b: Trajectory) -> ClosestApproach:
    """Exact closest approach of two objects over their shared interval.

    On each merged-grid interval the squared distance is quadratic in
    time; its minimum sits either at the vertex (when inside the
    interval) or at an endpoint. Ties resolve to the earliest time.

    Raises:
        TrajectoryError: when the trajectories do not overlap in time.
    """
    grid = _merged_grid(a, b)
    deltas = a.positions_at(grid) - b.positions_at(grid)
    best_time = float(grid[0])
    best_sq = float(deltas[0] @ deltas[0])
    for i in range(grid.size - 1):
        v0 = deltas[i]
        v1 = deltas[i + 1]
        w = v1 - v0
        quad_a = float(w @ w)
        quad_b = 2.0 * float(v0 @ w)
        candidates = [(0.0, float(v0 @ v0)), (1.0, float(v1 @ v1))]
        if quad_a > 0.0:
            u_star = -quad_b / (2.0 * quad_a)
            if 0.0 < u_star < 1.0:
                point = v0 + u_star * w
                candidates.append((u_star, float(point @ point)))
        for u, sq in candidates:
            if sq < best_sq - 1e-15:
                best_sq = sq
                best_time = float(grid[i] + u * (grid[i + 1] - grid[i]))
    pos_a = a.positions_at(np.array([best_time]))[0]
    pos_b = b.positions_at(np.array([best_time]))[0]
    return ClosestApproach(
        time=best_time,
        distance_m=math.sqrt(max(best_sq, 0.0)),
        position_a=(float(pos_a[0]), float(pos_a[1])),
        position_b=(float(pos_b[0]), float(pos_b[1])),
    )


def encounters(
    a: Trajectory, b: Trajectory, within_m: float
) -> list[tuple[float, float]]:
    """Time windows during which the two objects were within ``within_m``.

    Exact for piecewise-linear trajectories: per merged-grid interval the
    condition ``dist² <= within²`` is a quadratic inequality whose
    solution set is one sub-interval (or empty); adjacent and touching
    windows are coalesced. Zero-length touches (the objects graze the
    threshold at one instant) are reported as degenerate ``(t, t)``
    windows.

    Args:
        a, b: trajectories overlapping in time.
        within_m: proximity threshold (strictly positive).

    Returns:
        Disjoint ``(t_enter, t_leave)`` windows in time order.
    """
    if within_m <= 0:
        raise ValueError(f"within_m must be positive, got {within_m}")
    grid = _merged_grid(a, b)
    deltas = a.positions_at(grid) - b.positions_at(grid)
    threshold_sq = within_m * within_m
    windows: list[tuple[float, float]] = []
    for i in range(grid.size - 1):
        t_lo = float(grid[i])
        t_hi = float(grid[i + 1])
        span = t_hi - t_lo
        v0 = deltas[i]
        v1 = deltas[i + 1]
        w = v1 - v0
        quad_a = float(w @ w)
        quad_b = 2.0 * float(v0 @ w)
        quad_c = float(v0 @ v0) - threshold_sq
        if quad_a <= 1e-300:
            # Constant distance on this interval.
            if quad_c <= 0.0:
                windows.append((t_lo, t_hi))
            continue
        disc = quad_b * quad_b - 4.0 * quad_a * quad_c
        if disc < 0.0:
            # Never crosses the threshold: inside iff the midpoint is.
            mid_sq = quad_a * 0.25 + quad_b * 0.5 + quad_c
            if mid_sq <= 0.0:  # pragma: no cover - disc<0 ∧ a>0 ⇒ always >0
                windows.append((t_lo, t_hi))
            continue
        root = math.sqrt(disc)
        u_enter = (-quad_b - root) / (2.0 * quad_a)
        u_leave = (-quad_b + root) / (2.0 * quad_a)
        u_enter = max(u_enter, 0.0)
        u_leave = min(u_leave, 1.0)
        if u_enter <= u_leave:
            windows.append((t_lo + u_enter * span, t_lo + u_leave * span))
    # Coalesce touching windows (shared grid points produce duplicates).
    merged: list[tuple[float, float]] = []
    for start, end in windows:
        if merged and start <= merged[-1][1] + 1e-9:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged
