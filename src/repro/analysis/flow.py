"""Traffic-flow analytics over trajectory collections.

The paper's principal example is "urban traffic, specifically commuter
traffic, and rush hour analysis". These are the two analyses that phrase
implies, computed directly on (possibly compressed) trajectories:

* :func:`speed_over_time` — the fleet's mean derived speed per
  time-of-observation bin; congestion shows up as a dip;
* :func:`occupancy_grid` — how many distinct objects visited each spatial
  cell during a time window; hotspots show up as the busiest cells.

Both work identically on raw and compressed trajectories, which is how
the examples demonstrate that compression preserves the analyses the
paper cares about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.geometry.bbox import BBox
from repro.trajectory.stats import speeds
from repro.trajectory.trajectory import Trajectory

__all__ = [
    "SpeedProfile",
    "speed_over_time",
    "occupancy_grid",
    "OccupancyGrid",
    "od_matrix",
]


@dataclass(frozen=True)
class SpeedProfile:
    """Fleet speed per time bin.

    Attributes:
        bin_edges: time bin edges, shape ``(k + 1,)``.
        mean_speed_ms: time-weighted mean speed per bin (NaN where no
            object was moving), shape ``(k,)``.
        observations: number of contributing segments per bin.
    """

    bin_edges: np.ndarray
    mean_speed_ms: np.ndarray
    observations: np.ndarray

    @property
    def bin_centers(self) -> np.ndarray:
        return (self.bin_edges[:-1] + self.bin_edges[1:]) / 2.0


def speed_over_time(
    trajectories: Sequence[Trajectory], bin_seconds: float
) -> SpeedProfile:
    """Mean derived speed of the fleet per time bin.

    Each trajectory segment contributes its derived speed to the bin(s)
    its midpoint falls in, weighted by the segment duration.

    Args:
        trajectories: at least one trajectory with >= 2 points.
        bin_seconds: bin width.
    """
    if bin_seconds <= 0:
        raise ValueError(f"bin width must be positive, got {bin_seconds}")
    usable = [t for t in trajectories if len(t) >= 2]
    if not usable:
        raise ValueError("need at least one trajectory with >= 2 points")
    start = min(t.start_time for t in usable)
    end = max(t.end_time for t in usable)
    n_bins = max(int(np.ceil((end - start) / bin_seconds)), 1)
    edges = start + np.arange(n_bins + 1) * bin_seconds
    weighted_speed = np.zeros(n_bins)
    weight = np.zeros(n_bins)
    counts = np.zeros(n_bins, dtype=int)
    for traj in usable:
        v = speeds(traj)
        midpoints = (traj.t[:-1] + traj.t[1:]) / 2.0
        durations = np.diff(traj.t)
        bins = np.clip(((midpoints - start) // bin_seconds).astype(int), 0, n_bins - 1)
        np.add.at(weighted_speed, bins, v * durations)
        np.add.at(weight, bins, durations)
        np.add.at(counts, bins, 1)
    with np.errstate(invalid="ignore"):
        mean = np.where(weight > 0, weighted_speed / np.maximum(weight, 1e-300), np.nan)
    return SpeedProfile(edges, mean, counts)


@dataclass(frozen=True)
class OccupancyGrid:
    """Distinct-object visit counts over a uniform spatial grid."""

    cell_size_m: float
    origin: tuple[float, float]
    counts: dict[tuple[int, int], int]

    def top_cells(self, k: int = 5) -> list[tuple[tuple[int, int], int]]:
        """The ``k`` busiest cells as ``(cell, count)``, busiest first."""
        ranked = sorted(self.counts.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:k]

    def cell_bbox(self, cell: tuple[int, int]) -> BBox:
        """Geometry of one grid cell."""
        cx, cy = cell
        x0 = self.origin[0] + cx * self.cell_size_m
        y0 = self.origin[1] + cy * self.cell_size_m
        return BBox(x0, y0, x0 + self.cell_size_m, y0 + self.cell_size_m)


def occupancy_grid(
    trajectories: Sequence[Trajectory],
    cell_size_m: float,
    t0: float | None = None,
    t1: float | None = None,
    sample_interval_s: float = 5.0,
) -> OccupancyGrid:
    """Count distinct objects visiting each spatial cell.

    Positions are sampled along each trajectory at ``sample_interval_s``
    (on the piecewise-linear path, so compressed trajectories contribute
    their full route, not just retained fixes); each object counts at
    most once per cell.

    Args:
        trajectories: the fleet.
        cell_size_m: grid cell size.
        t0, t1: optional observation window (both or neither).
        sample_interval_s: path sampling period.
    """
    if cell_size_m <= 0:
        raise ValueError(f"cell size must be positive, got {cell_size_m}")
    if (t0 is None) != (t1 is None):
        raise ValueError("provide both t0 and t1, or neither")
    if sample_interval_s <= 0:
        raise ValueError("sample interval must be positive")
    usable = [t for t in trajectories if len(t) >= 1]
    if not usable:
        raise ValueError("need at least one trajectory")
    origin_x = min(float(t.x.min()) for t in usable)
    origin_y = min(float(t.y.min()) for t in usable)
    counts: dict[tuple[int, int], int] = {}
    for traj in usable:
        lo = traj.start_time if t0 is None else max(t0, traj.start_time)
        hi = traj.end_time if t1 is None else min(t1, traj.end_time)
        if hi < lo:
            continue
        if len(traj) == 1 or hi == lo:
            positions = traj.positions_at(np.array([lo]))
        else:
            times = np.arange(lo, hi, sample_interval_s)
            times = np.append(times, hi)
            positions = traj.positions_at(times)
        cells = {
            (
                int(np.floor((x - origin_x) / cell_size_m)),
                int(np.floor((y - origin_y) / cell_size_m)),
            )
            for x, y in positions
        }
        for cell in cells:
            counts[cell] = counts.get(cell, 0) + 1
    return OccupancyGrid(cell_size_m, (origin_x, origin_y), counts)


def od_matrix(
    trajectories: Sequence[Trajectory], cell_size_m: float
) -> dict[tuple[tuple[int, int], tuple[int, int]], int]:
    """Origin-destination counts over a uniform zone grid.

    The bread-and-butter table of commuter analysis: how many trips start
    in zone A and end in zone B. Zones are grid cells of ``cell_size_m``
    anchored at the fleet's minimum coordinates (matching
    :func:`occupancy_grid`'s convention).

    Returns:
        Mapping ``(origin_cell, destination_cell) -> trip count``.
    """
    if cell_size_m <= 0:
        raise ValueError(f"cell size must be positive, got {cell_size_m}")
    usable = [t for t in trajectories if len(t) >= 1]
    if not usable:
        raise ValueError("need at least one trajectory")
    origin_x = min(float(t.x.min()) for t in usable)
    origin_y = min(float(t.y.min()) for t in usable)

    def cell_of(point: np.ndarray) -> tuple[int, int]:
        return (
            int(np.floor((float(point[0]) - origin_x) / cell_size_m)),
            int(np.floor((float(point[1]) - origin_y) / cell_size_m)),
        )

    counts: dict[tuple[tuple[int, int], tuple[int, int]], int] = {}
    for traj in usable:
        key = (cell_of(traj.xy[0]), cell_of(traj.xy[-1]))
        counts[key] = counts.get(key, 0) + 1
    return counts
