"""Local planar projection for lon/lat GPS input.

The compression algorithms and the error notion operate in a local planar
frame with metre units. Raw GPS data arrives as lon/lat degrees; an
equirectangular projection centred on the data is accurate to well under
0.1% for the city-to-region extents the paper works with (trajectories of
5–45 km), which is far below GPS noise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.distance import EARTH_RADIUS_M

__all__ = ["LocalProjection"]


@dataclass(frozen=True, slots=True)
class LocalProjection:
    """Equirectangular projection around a reference lon/lat (degrees).

    ``x`` grows east, ``y`` grows north; the reference point maps to
    ``(0, 0)``. The inverse is exact for the forward map (round-trips are
    lossless up to float precision).
    """

    ref_lon: float
    ref_lat: float

    @classmethod
    def centered_on(cls, lons: np.ndarray, lats: np.ndarray) -> "LocalProjection":
        """Projection centred on the mean of the given coordinates."""
        lons = np.asarray(lons, dtype=float)
        lats = np.asarray(lats, dtype=float)
        if lons.size == 0:
            raise ValueError("cannot centre a projection on zero points")
        return cls(float(lons.mean()), float(lats.mean()))

    def forward(self, lon: np.ndarray, lat: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Project lon/lat degrees to local ``(x, y)`` metres."""
        lon = np.asarray(lon, dtype=float)
        lat = np.asarray(lat, dtype=float)
        cos_ref = np.cos(np.radians(self.ref_lat))
        x = np.radians(lon - self.ref_lon) * cos_ref * EARTH_RADIUS_M
        y = np.radians(lat - self.ref_lat) * EARTH_RADIUS_M
        return x, y

    def inverse(self, x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Unproject local ``(x, y)`` metres back to lon/lat degrees."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        cos_ref = np.cos(np.radians(self.ref_lat))
        lon = self.ref_lon + np.degrees(x / (EARTH_RADIUS_M * cos_ref))
        lat = self.ref_lat + np.degrees(y / EARTH_RADIUS_M)
        return lon, lat
