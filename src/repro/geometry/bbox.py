"""Axis-aligned bounding boxes for spatial indexing and queries."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

__all__ = ["BBox"]


@dataclass(frozen=True, slots=True)
class BBox:
    """An axis-aligned rectangle ``[min_x, max_x] x [min_y, max_y]``.

    Degenerate boxes (zero width and/or height) are valid: a single GPS
    fix has a point-sized bounding box.
    """

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise ValueError(
                f"invalid bbox: ({self.min_x}, {self.min_y}) .. "
                f"({self.max_x}, {self.max_y})"
            )

    @classmethod
    def of_points(cls, xy: np.ndarray) -> "BBox":
        """Tight bounding box of an ``(n, 2)`` point array (``n >= 1``)."""
        xy = np.asarray(xy, dtype=float)
        if xy.ndim != 2 or xy.shape[1] != 2 or xy.shape[0] == 0:
            raise ValueError(f"expected non-empty (n, 2) array, got shape {xy.shape}")
        mins = xy.min(axis=0)
        maxs = xy.max(axis=0)
        return cls(float(mins[0]), float(mins[1]), float(maxs[0]), float(maxs[1]))

    @classmethod
    def union_all(cls, boxes: Iterable["BBox"]) -> "BBox":
        """Smallest box containing every box in ``boxes`` (non-empty)."""
        it: Iterator[BBox] = iter(boxes)
        try:
            first = next(it)
        except StopIteration:
            raise ValueError("union_all of no boxes") from None
        min_x, min_y = first.min_x, first.min_y
        max_x, max_y = first.max_x, first.max_y
        for box in it:
            min_x = min(min_x, box.min_x)
            min_y = min(min_y, box.min_y)
            max_x = max(max_x, box.max_x)
            max_y = max(max_y, box.max_y)
        return cls(min_x, min_y, max_x, max_y)

    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> tuple[float, float]:
        return ((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    def contains_point(self, x: float, y: float) -> bool:
        """Whether ``(x, y)`` lies inside or on the boundary."""
        return self.min_x <= x <= self.max_x and self.min_y <= y <= self.max_y

    def intersects(self, other: "BBox") -> bool:
        """Whether the two closed boxes share at least one point."""
        return not (
            other.min_x > self.max_x
            or other.max_x < self.min_x
            or other.min_y > self.max_y
            or other.max_y < self.min_y
        )

    def expanded(self, margin: float) -> "BBox":
        """A copy grown by ``margin`` on every side (``margin >= 0``)."""
        if margin < 0:
            raise ValueError(f"margin must be non-negative, got {margin}")
        return BBox(
            self.min_x - margin,
            self.min_y - margin,
            self.max_x + margin,
            self.max_y + margin,
        )

    def union(self, other: "BBox") -> "BBox":
        """Smallest box containing both boxes."""
        return BBox(
            min(self.min_x, other.min_x),
            min(self.min_y, other.min_y),
            max(self.max_x, other.max_x),
            max(self.max_y, other.max_y),
        )
