"""Planar geometry substrate: distances, interpolation, boxes, projection.

These are the primitives every compression algorithm and error notion is
built from. All functions accept plain numpy arrays (positions as
``(n, 2)`` float arrays) so the higher layers can stay allocation-light.
"""

from repro.geometry.bbox import BBox
from repro.geometry.distance import (
    EARTH_RADIUS_M,
    euclidean,
    euclidean_many,
    haversine,
    perpendicular_distance,
    perpendicular_distances,
    point_segment_distance,
    point_segment_distances,
)
from repro.geometry.interpolation import (
    segment_speeds,
    synchronized_distances,
    time_ratio_position,
    time_ratio_positions,
)
from repro.geometry.projection import LocalProjection

__all__ = [
    "BBox",
    "EARTH_RADIUS_M",
    "LocalProjection",
    "euclidean",
    "euclidean_many",
    "haversine",
    "perpendicular_distance",
    "perpendicular_distances",
    "point_segment_distance",
    "point_segment_distances",
    "segment_speeds",
    "synchronized_distances",
    "time_ratio_position",
    "time_ratio_positions",
]
