"""Planar and spherical distance primitives.

Every compression algorithm in this library reduces to one of two
point-vs-chord measurements:

* the **perpendicular distance** of a point to the (infinite) line through
  a chord — the classic line-generalization criterion (paper Sect. 2), and
* the **time-ratio (synchronized) distance** — the distance between a point
  and its temporally synchronized position on the chord (paper Sect. 3.2).

This module provides the purely spatial pieces, vectorized over numpy
arrays; the time-ratio computation lives in
:func:`repro.geometry.interpolation.time_ratio_positions` because it needs
timestamps.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "euclidean",
    "euclidean_many",
    "haversine",
    "perpendicular_distance",
    "perpendicular_distances",
    "point_segment_distance",
    "point_segment_distances",
    "EARTH_RADIUS_M",
]

#: Mean Earth radius in metres (IUGG), used by :func:`haversine`.
EARTH_RADIUS_M = 6_371_008.8


def euclidean(p: np.ndarray, q: np.ndarray) -> float:
    """Euclidean distance between two planar points ``p`` and ``q``.

    Args:
        p: array-like of shape ``(2,)``.
        q: array-like of shape ``(2,)``.
    """
    p = np.asarray(p, dtype=float)
    q = np.asarray(q, dtype=float)
    return float(np.hypot(p[0] - q[0], p[1] - q[1]))


def euclidean_many(points_a: np.ndarray, points_b: np.ndarray) -> np.ndarray:
    """Pairwise (row-by-row) Euclidean distances between two point arrays.

    Args:
        points_a: shape ``(n, 2)``.
        points_b: shape ``(n, 2)`` — same length as ``points_a``.

    Returns:
        Array of shape ``(n,)`` with ``dist(points_a[i], points_b[i])``.
    """
    a = np.asarray(points_a, dtype=float)
    b = np.asarray(points_b, dtype=float)
    if a.shape != b.shape:
        raise ValueError(
            f"point arrays must have equal shapes, got {a.shape} vs {b.shape}"
        )
    diff = a - b
    return np.hypot(diff[..., 0], diff[..., 1])


def haversine(lon1: float, lat1: float, lon2: float, lat2: float) -> float:
    """Great-circle distance in metres between two lon/lat points (degrees).

    Used when ingesting raw GPS (GPX) data to sanity-check the planar
    projection; the compression algorithms themselves run in a local
    planar frame.
    """
    phi1, phi2 = np.radians(lat1), np.radians(lat2)
    dphi = phi2 - phi1
    dlam = np.radians(lon2 - lon1)
    h = np.sin(dphi / 2.0) ** 2 + np.cos(phi1) * np.cos(phi2) * np.sin(dlam / 2.0) ** 2
    return float(2.0 * EARTH_RADIUS_M * np.arcsin(np.sqrt(np.clip(h, 0.0, 1.0))))


def perpendicular_distance(point: np.ndarray, a: np.ndarray, b: np.ndarray) -> float:
    """Distance from ``point`` to the infinite line through ``a`` and ``b``.

    When ``a == b`` the line degenerates and the plain point distance is
    returned, matching the convention of every Douglas–Peucker
    implementation.
    """
    return float(
        perpendicular_distances(
            np.asarray(point, dtype=float).reshape(1, 2), a, b
        )[0]
    )


def perpendicular_distances(
    points: np.ndarray, a: np.ndarray, b: np.ndarray
) -> np.ndarray:
    """Vectorized distance from each row of ``points`` to line ``a``–``b``.

    This is the discard criterion of the spatial algorithms (NDP, NOPW,
    BOPW): a point is removable when its perpendicular distance to the
    candidate chord is below the threshold.

    Args:
        points: shape ``(n, 2)``.
        a: chord start, shape ``(2,)``.
        b: chord end, shape ``(2,)``.

    Returns:
        Array of shape ``(n,)`` of non-negative distances.
    """
    pts = np.asarray(points, dtype=float)
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    ab = b - a
    norm = np.hypot(ab[0], ab[1])
    if norm == 0.0:
        diff = pts - a
        return np.hypot(diff[:, 0], diff[:, 1])
    # Cross-product magnitude / chord length = perpendicular distance.
    rel = pts - a
    cross = rel[:, 0] * ab[1] - rel[:, 1] * ab[0]
    return np.abs(cross) / norm


def point_segment_distance(point: np.ndarray, a: np.ndarray, b: np.ndarray) -> float:
    """Distance from ``point`` to the closed segment ``a``–``b``."""
    return float(
        point_segment_distances(
            np.asarray(point, dtype=float).reshape(1, 2), a, b
        )[0]
    )


def point_segment_distances(
    points: np.ndarray, a: np.ndarray, b: np.ndarray
) -> np.ndarray:
    """Vectorized distance from each row of ``points`` to segment ``a``–``b``.

    Unlike :func:`perpendicular_distances`, positions beyond the segment
    ends are measured to the nearest endpoint. Used by the spatial index
    and by error diagnostics, not by the paper's discard tests (which use
    the infinite-line distance, as in the original DP formulation).
    """
    pts = np.asarray(points, dtype=float)
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    ab = b - a
    denom = float(ab @ ab)
    if denom == 0.0:
        diff = pts - a
        return np.hypot(diff[:, 0], diff[:, 1])
    u = ((pts - a) @ ab) / denom
    u = np.clip(u, 0.0, 1.0)
    proj = a + u[:, None] * ab
    diff = pts - proj
    return np.hypot(diff[:, 0], diff[:, 1])
