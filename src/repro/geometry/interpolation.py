"""Temporal interpolation along piecewise-linear trajectories.

The paper's central idea (Sect. 3.2) is that a discarded point ``P_i``
should be compared against its *time-synchronized* position ``P'_i`` on the
approximating segment ``P_s``–``P_e``::

    Δe = t_e - t_s
    Δi = t_i - t_s
    x'_i = x_s + Δi/Δe (x_e - x_s)        (paper Eq. 1)
    y'_i = y_s + Δi/Δe (y_e - y_s)        (paper Eq. 2)

This module implements Eqs. 1–2 (scalar and vectorized) plus the derived
synchronized distances that TD-TR / OPW-TR / OPW-SP use as their discard
criterion.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.distance import euclidean_many

__all__ = [
    "time_ratio_position",
    "time_ratio_positions",
    "synchronized_distances",
    "segment_speeds",
]


def time_ratio_position(
    ts: float,
    ps: np.ndarray,
    te: float,
    pe: np.ndarray,
    ti: float,
) -> np.ndarray:
    """Synchronized position at time ``ti`` on the chord ``ps``–``pe``.

    Implements paper Eqs. 1–2. If the chord carries no time extent
    (``te == ts``) the start position is returned: the object is
    considered stationary over a zero-length interval.

    Args:
        ts: chord start time.
        ps: chord start position, shape ``(2,)``.
        te: chord end time.
        pe: chord end position, shape ``(2,)``.
        ti: query time; callers normally keep ``ts <= ti <= te`` but the
            linear form extrapolates naturally outside that range.
    """
    ps = np.asarray(ps, dtype=float)
    pe = np.asarray(pe, dtype=float)
    delta_e = te - ts
    if delta_e == 0.0:
        return ps.copy()
    ratio = (ti - ts) / delta_e
    return ps + ratio * (pe - ps)


def time_ratio_positions(
    ts: float,
    ps: np.ndarray,
    te: float,
    pe: np.ndarray,
    times: np.ndarray,
) -> np.ndarray:
    """Vectorized :func:`time_ratio_position` for many query times.

    Returns:
        Array of shape ``(len(times), 2)`` of synchronized positions.
    """
    ps = np.asarray(ps, dtype=float)
    pe = np.asarray(pe, dtype=float)
    times = np.asarray(times, dtype=float)
    delta_e = te - ts
    if delta_e == 0.0:
        return np.broadcast_to(ps, (times.shape[0], 2)).copy()
    ratios = (times - ts) / delta_e
    return ps + ratios[:, None] * (pe - ps)


def synchronized_distances(
    t: np.ndarray,
    xy: np.ndarray,
    start: int,
    end: int,
) -> np.ndarray:
    """Synchronized (time-ratio) distances of interior points to a chord.

    For the candidate chord between data points ``start`` and ``end`` of a
    time series (``t`` strictly increasing, ``xy`` the matching positions),
    computes ``dist(P_i, P'_i)`` for every interior index
    ``start < i < end`` — the quantity the spatiotemporal algorithms test
    against ``max_dist_error``.

    Args:
        t: timestamps, shape ``(n,)``.
        xy: positions, shape ``(n, 2)``.
        start: chord start index.
        end: chord end index (``end > start``).

    Returns:
        Array of shape ``(end - start - 1,)``; empty when the chord spans
        adjacent points.
    """
    if end <= start:
        raise ValueError(f"chord end {end} must exceed start {start}")
    interior_t = t[start + 1 : end]
    interior_xy = xy[start + 1 : end]
    approx = time_ratio_positions(
        float(t[start]), xy[start], float(t[end]), xy[end], interior_t
    )
    return euclidean_many(interior_xy, approx)


def segment_speeds(t: np.ndarray, xy: np.ndarray) -> np.ndarray:
    """Derived speed of every segment of a time series.

    ``v[i] = dist(xy[i+1], xy[i]) / (t[i+1] - t[i])`` — the derived (not
    measured) speeds the SPT algorithm compares against the speed
    threshold (paper Sect. 3.3).

    Returns:
        Array of shape ``(n - 1,)``.
    """
    t = np.asarray(t, dtype=float)
    xy = np.asarray(xy, dtype=float)
    dt = np.diff(t)
    step = np.diff(xy, axis=0)
    dist = np.hypot(step[:, 0], step[:, 1])
    return dist / dt
