"""Segment-rectangle intersection (Liang–Barsky clipping).

Used by the spatial index to verify candidate matches exactly: a
trajectory passes through a query rectangle iff at least one of its
segments intersects it, even when no sample point falls inside.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.bbox import BBox

__all__ = ["segment_intersects_bbox", "clip_segment_to_bbox"]


def clip_segment_to_bbox(
    p0: np.ndarray, p1: np.ndarray, box: BBox
) -> tuple[float, float] | None:
    """Parameter interval of segment ``p0``–``p1`` inside ``box``.

    Liang–Barsky: returns ``(u_enter, u_exit)`` with
    ``0 <= u_enter <= u_exit <= 1`` when the segment intersects the closed
    rectangle, else ``None``.
    """
    p0 = np.asarray(p0, dtype=float)
    p1 = np.asarray(p1, dtype=float)
    u0, u1 = 0.0, 1.0
    # Plain Python floats: near-zero deltas divide to +-inf silently
    # (numpy scalars would emit overflow warnings), and inf parameters
    # clamp correctly below.
    for delta, low, high, origin in (
        (float(p1[0] - p0[0]), box.min_x, box.max_x, float(p0[0])),
        (float(p1[1] - p0[1]), box.min_y, box.max_y, float(p0[1])),
    ):
        if delta == 0.0:
            if origin < low or origin > high:
                return None
            continue
        t_low = (low - origin) / delta
        t_high = (high - origin) / delta
        if t_low > t_high:
            t_low, t_high = t_high, t_low
        u0 = max(u0, t_low)
        u1 = min(u1, t_high)
        if u0 > u1:
            return None
    return u0, u1


def segment_intersects_bbox(p0: np.ndarray, p1: np.ndarray, box: BBox) -> bool:
    """Whether the closed segment ``p0``–``p1`` meets the closed box."""
    return clip_segment_to_bbox(p0, p1, box) is not None
