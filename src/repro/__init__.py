"""repro — spatiotemporal compression of moving point object trajectories.

A production-quality reproduction of Meratnia & de By, *Spatiotemporal
Compression Techniques for Moving Point Objects* (EDBT 2004): the TD-TR /
OPW-TR / OPW-SP / TD-SP algorithms, the spatial baselines they are
compared against, the time-synchronous error notion, a synthetic GPS
workload generator, an online streaming layer, and a compressing
trajectory store.

Quickstart::

    from repro import Trajectory, TDTR, evaluate_compression

    traj = Trajectory.from_points([(0, 0, 0), (10, 95, 8), (20, 210, 4)])
    result = TDTR(epsilon=30.0).compress(traj)
    report = evaluate_compression(traj, result.compressed)
    print(report.summary())
"""

from repro.core import (
    BOPW,
    CISED,
    NOPW,
    OPERB,
    OPWSP,
    OPWTR,
    TDSP,
    TDTR,
    AngularChange,
    BottomUp,
    CompressionResult,
    Compressor,
    CompressorSpec,
    DistanceThreshold,
    DouglasPeucker,
    EveryIth,
    SlidingWindow,
    available_compressors,
    make_compressor,
    parse_compressor_spec,
)
from repro.error import (
    CompressionReport,
    evaluate_compression,
    max_synchronized_error,
    mean_synchronized_error,
)
from repro.obs import Registry
from repro.pipeline import (
    BatchEngine,
    BatchRunResult,
    FailurePolicy,
    ItemFailure,
    ItemResult,
    Metrics,
)
from repro.storage import TrajectoryStore
from repro.streaming import (
    OnlineCompressor,
    PointStream,
    StreamingCISED,
    StreamingOPERB,
    StreamingOPW,
    available_online_compressors,
    make_online_compressor,
    register_online,
)
from repro.trajectory import Trajectory, TrajectoryBuilder
from repro.types import Fix

__version__ = "1.0.0"

__all__ = [
    "AngularChange",
    "BOPW",
    "BatchEngine",
    "BatchRunResult",
    "BottomUp",
    "CISED",
    "CompressionReport",
    "CompressionResult",
    "Compressor",
    "CompressorSpec",
    "DistanceThreshold",
    "DouglasPeucker",
    "EveryIth",
    "FailurePolicy",
    "Fix",
    "ItemFailure",
    "ItemResult",
    "Metrics",
    "NOPW",
    "OPERB",
    "OPWSP",
    "OPWTR",
    "OnlineCompressor",
    "PointStream",
    "Registry",
    "SlidingWindow",
    "StreamingCISED",
    "StreamingOPERB",
    "StreamingOPW",
    "TDSP",
    "TDTR",
    "Trajectory",
    "TrajectoryBuilder",
    "TrajectoryStore",
    "available_compressors",
    "available_online_compressors",
    "evaluate_compression",
    "make_compressor",
    "make_online_compressor",
    "max_synchronized_error",
    "mean_synchronized_error",
    "parse_compressor_spec",
    "register_online",
    "__version__",
]
