"""Text rendering of experiment results.

The paper presents its evaluation as bar/line figures; our benchmarks
regenerate the numeric series behind each figure and print them as
aligned text tables, which is what EXPERIMENTS.md records.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.experiments.harness import AggregateRow

__all__ = [
    "render_table",
    "render_aggregate_rows",
    "series_by_algorithm",
    "render_series_chart",
]


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned, pipe-separated text table.

    Numbers are formatted with sensible precision; everything else via
    ``str``.
    """

    def fmt(value: object) -> str:
        if isinstance(value, bool):
            return str(value)
        if isinstance(value, float):
            return f"{value:.2f}"
        return str(value)

    body = [[fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in body:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in body:
        lines.append(" | ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def series_by_algorithm(
    rows: Iterable[AggregateRow],
) -> dict[str, list[AggregateRow]]:
    """Group aggregate rows into per-algorithm series sorted by threshold."""
    series: dict[str, list[AggregateRow]] = {}
    for row in rows:
        series.setdefault(row.algorithm, []).append(row)
    for bucket in series.values():
        bucket.sort(key=lambda r: r.threshold_m)
    return series


def render_aggregate_rows(
    rows: Iterable[AggregateRow], title: str | None = None
) -> str:
    """Standard table for harness output: one row per (algo, threshold)."""
    return render_table(
        ["algorithm", "threshold_m", "compression_%", "mean_sync_err_m", "max_sync_err_m"],
        [
            (r.algorithm, r.threshold_m, r.compression_percent, r.mean_sync_error_m, r.max_sync_error_m)
            for r in rows
        ],
        title=title,
    )


def render_series_chart(
    series: dict[str, list[tuple[float, float]]],
    width: int = 60,
    height: int = 14,
    title: str | None = None,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Plot several (x, y) series as an ASCII chart.

    A terminal-friendly stand-in for the paper's line figures: each
    series gets a letter marker; axes are annotated with their ranges.
    Useful for eyeballing the figure benches' output without leaving the
    terminal.

    Args:
        series: label -> list of (x, y) points (each non-empty).
        width/height: plot area size in characters.
        title: optional heading.
        x_label / y_label: axis captions.
    """
    if not series:
        raise ValueError("nothing to plot")
    if width < 10 or height < 4:
        raise ValueError("chart too small to be legible")
    all_points = [p for pts in series.values() for p in pts]
    if not all_points:
        raise ValueError("all series are empty")
    xs = [p[0] for p in all_points]
    ys = [p[1] for p in all_points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0
    grid = [[" "] * width for _ in range(height)]
    markers = "abcdefghijklmnopqrstuvwxyz"
    legend = []
    for index, (label, points) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        legend.append(f"{marker} = {label}")
        for x, y in points:
            col = int(round((x - x_min) / x_span * (width - 1)))
            row = height - 1 - int(round((y - y_min) / y_span * (height - 1)))
            cell = grid[row][col]
            grid[row][col] = "*" if cell not in (" ", marker) else marker
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_label} [{y_min:.4g} .. {y_max:.4g}]")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" {x_label} [{x_min:.4g} .. {x_max:.4g}]    " + "; ".join(legend))
    return "\n".join(lines)
