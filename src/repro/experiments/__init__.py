"""The paper's evaluation, as a library: dataset, harness, figures.

* :func:`paper_dataset` — the fixed-seed ten-trip dataset standing in for
  the paper's unpublished car traces (calibrated against Table 2);
* :func:`run_sweep` / :func:`aggregate` — the algorithm x threshold x
  trajectory experiment harness;
* :func:`figure_07` ... :func:`figure_11` — one function per paper
  figure, returning the numeric series behind it;
* :func:`render_table` — text rendering for benchmark output and
  EXPERIMENTS.md.
"""

from repro.experiments.dataset import (
    DATASET_SEED,
    DISTANCE_THRESHOLDS_M,
    PAPER_TABLE2,
    SPEED_THRESHOLDS_MS,
    Table2Reference,
    paper_dataset,
)
from repro.experiments.figures import (
    ALL_FIGURES,
    FigureResult,
    figure_07,
    figure_08,
    figure_09,
    figure_10,
    figure_11,
)
from repro.experiments.harness import (
    AggregateRow,
    SweepRecord,
    aggregate,
    run_single,
    run_sweep,
)
from repro.experiments.significance import (
    PairedComparison,
    bootstrap_ci,
    compare_algorithms,
    paired_differences,
)
from repro.experiments.reporting import (
    render_aggregate_rows,
    render_series_chart,
    render_table,
    series_by_algorithm,
)

__all__ = [
    "ALL_FIGURES",
    "PairedComparison",
    "AggregateRow",
    "DATASET_SEED",
    "DISTANCE_THRESHOLDS_M",
    "FigureResult",
    "PAPER_TABLE2",
    "SPEED_THRESHOLDS_MS",
    "SweepRecord",
    "Table2Reference",
    "aggregate",
    "bootstrap_ci",
    "compare_algorithms",
    "figure_07",
    "figure_08",
    "figure_09",
    "figure_10",
    "figure_11",
    "paired_differences",
    "paper_dataset",
    "render_aggregate_rows",
    "render_series_chart",
    "render_table",
    "run_single",
    "run_sweep",
    "series_by_algorithm",
]
