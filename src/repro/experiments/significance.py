"""Statistical backing for the evaluation's comparisons.

The paper reports averages over ten trajectories; with a sample that
small, a responsible reproduction should say how sure it is that one
algorithm beats another. This module provides the paired machinery:

* :func:`paired_differences` — per-trajectory differences of a metric
  between two algorithms at matched thresholds;
* :func:`bootstrap_ci` — a percentile bootstrap confidence interval for
  the mean of those differences (deterministic under a seed);
* :func:`compare_algorithms` — the full paired comparison the
  significance bench runs: mean difference, CI, and win fraction.

All of it is dependency-free (numpy only) and deliberately simple — the
point is honest uncertainty, not a statistics framework.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.experiments.harness import SweepRecord

__all__ = ["PairedComparison", "paired_differences", "bootstrap_ci", "compare_algorithms"]


def paired_differences(
    records_a: Iterable[SweepRecord],
    records_b: Iterable[SweepRecord],
    metric: str = "mean_sync_error_m",
) -> np.ndarray:
    """Per-(trajectory, threshold) differences ``metric(a) - metric(b)``.

    Records are matched on (trajectory id, threshold); unmatched records
    are an error — the comparison must be on identical workloads.

    Args:
        records_a: sweep records of the first algorithm.
        records_b: sweep records of the second algorithm.
        metric: any numeric :class:`SweepRecord` field.
    """
    def key(record: SweepRecord) -> tuple[str, float]:
        return (record.trajectory_id, record.threshold_m)

    b_by_key = {key(r): r for r in records_b}
    diffs = []
    seen = set()
    for record in records_a:
        k = key(record)
        other = b_by_key.get(k)
        if other is None:
            raise ValueError(f"no matching record for {k} in the second sweep")
        diffs.append(getattr(record, metric) - getattr(other, metric))
        seen.add(k)
    if seen != set(b_by_key):
        missing = sorted(set(b_by_key) - seen)[:3]
        raise ValueError(f"second sweep has unmatched records, e.g. {missing}")
    if not diffs:
        raise ValueError("no records to compare")
    return np.asarray(diffs, dtype=float)


def bootstrap_ci(
    values: np.ndarray,
    confidence: float = 0.95,
    n_resamples: int = 10_000,
    seed: int = 0,
) -> tuple[float, float]:
    """Percentile bootstrap CI for the mean of ``values``.

    Deterministic under ``seed``; suitable for asserting in benchmarks.
    """
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ValueError("cannot bootstrap an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    rng = np.random.default_rng(seed)
    indices = rng.integers(0, values.size, size=(n_resamples, values.size))
    means = values[indices].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    return (
        float(np.quantile(means, alpha)),
        float(np.quantile(means, 1.0 - alpha)),
    )


@dataclass(frozen=True, slots=True)
class PairedComparison:
    """Outcome of a paired algorithm comparison on one metric."""

    algorithm_a: str
    algorithm_b: str
    metric: str
    n_pairs: int
    mean_difference: float
    ci_low: float
    ci_high: float
    win_fraction_a: float

    @property
    def conclusive(self) -> bool:
        """True when the confidence interval excludes zero."""
        return self.ci_low > 0.0 or self.ci_high < 0.0

    def summary(self) -> str:
        """One-line human-readable statement of the comparison."""
        direction = "lower" if self.mean_difference < 0 else "higher"
        return (
            f"{self.algorithm_a} vs {self.algorithm_b} on {self.metric}: "
            f"mean diff {self.mean_difference:+.2f} "
            f"(95% CI [{self.ci_low:+.2f}, {self.ci_high:+.2f}], "
            f"{self.n_pairs} pairs) — {self.algorithm_a} {direction} in "
            f"{self.win_fraction_a:.0%} of pairs"
        )


def compare_algorithms(
    records_a: Iterable[SweepRecord],
    records_b: Iterable[SweepRecord],
    metric: str = "mean_sync_error_m",
    confidence: float = 0.95,
    seed: int = 0,
) -> PairedComparison:
    """Full paired comparison of two sweeps on one metric.

    ``win_fraction_a`` counts pairs where algorithm A's value is strictly
    lower (for error metrics, lower is better).
    """
    records_a = list(records_a)
    records_b = list(records_b)
    diffs = paired_differences(records_a, records_b, metric)
    low, high = bootstrap_ci(diffs, confidence=confidence, seed=seed)
    return PairedComparison(
        algorithm_a=records_a[0].algorithm,
        algorithm_b=records_b[0].algorithm,
        metric=metric,
        n_pairs=int(diffs.size),
        mean_difference=float(diffs.mean()),
        ci_low=low,
        ci_high=high,
        win_fraction_a=float(np.mean(diffs < 0.0)),
    )
