"""The standard evaluation dataset and the paper's experimental grid.

The paper tests every algorithm on ten car trajectories (Table 2), for
fifteen distance thresholds from 30 to 100 m and three speed-difference
thresholds of 5, 15 and 25 m/s (Sect. 4.3). This module pins our
reproduction's equivalents:

* :func:`paper_dataset` — the fixed-seed ten-trip synthetic dataset
  calibrated against Table 2 (see DESIGN.md's substitution table);
* :data:`DISTANCE_THRESHOLDS_M` / :data:`SPEED_THRESHOLDS_MS` — the
  paper's parameter grid;
* :data:`PAPER_TABLE2` — the published Table 2 numbers, against which the
  Table 2 benchmark compares the synthetic dataset.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.datagen.generator import generate_dataset
from repro.datagen.profiles import PAPER_PROFILES
from repro.trajectory.trajectory import Trajectory

__all__ = [
    "DATASET_SEED",
    "DISTANCE_THRESHOLDS_M",
    "SPEED_THRESHOLDS_MS",
    "PAPER_TABLE2",
    "Table2Reference",
    "paper_dataset",
]

#: Seed of the standard dataset; every benchmark derives from it.
DATASET_SEED = 2004

#: The paper's "fifteen different spatial threshold values ranging from
#: 30 to 100 m" — evenly spaced in steps of 5 m.
DISTANCE_THRESHOLDS_M: tuple[float, ...] = tuple(
    float(v) for v in np.arange(30, 101, 5)
)

#: The paper's "three speed difference threshold values" (Sect. 4.3).
SPEED_THRESHOLDS_MS: tuple[float, ...] = (5.0, 15.0, 25.0)


@dataclass(frozen=True, slots=True)
class Table2Reference:
    """The published Table 2 row values (means and standard deviations)."""

    duration_mean_s: float
    duration_std_s: float
    speed_mean_kmh: float
    speed_std_kmh: float
    length_mean_km: float
    length_std_km: float
    displacement_mean_km: float
    displacement_std_km: float
    points_mean: float
    points_std: float


#: Table 2 of the paper, converted to seconds/kilometres.
PAPER_TABLE2 = Table2Reference(
    duration_mean_s=32 * 60 + 16,
    duration_std_s=14 * 60 + 33,
    speed_mean_kmh=40.85,
    speed_std_kmh=12.63,
    length_mean_km=19.95,
    length_std_km=12.84,
    displacement_mean_km=10.58,
    displacement_std_km=8.97,
    points_mean=200.0,
    points_std=100.9,
)


@lru_cache(maxsize=4)
def _cached_dataset(seed: int) -> tuple[Trajectory, ...]:
    return tuple(generate_dataset(PAPER_PROFILES, seed=seed))


def paper_dataset(seed: int = DATASET_SEED) -> list[Trajectory]:
    """The ten-trajectory evaluation dataset, deterministic per seed.

    The default seed is the project standard; the tuple is cached, the
    returned list is a fresh shallow copy (trajectories are immutable).
    """
    return list(_cached_dataset(seed))
