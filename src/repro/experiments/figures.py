"""Declarative reproduction of every evaluation exhibit (Figs. 7–11).

Each ``figure_NN`` function runs exactly the comparison the paper's
figure shows — same algorithms, same threshold grids, averaged over the
ten-trajectory dataset — and returns the numeric series behind the
figure. The benchmarks in ``benchmarks/`` print these series and assert
the paper's qualitative shape relations (DESIGN.md S1–S6).

Speed-threshold variants are labelled the way the paper's legends do,
e.g. ``opw-sp(5m/s)``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from repro.core.douglas_peucker import DouglasPeucker
from repro.core.opening_window import BOPW, NOPW
from repro.core.opw_tr import OPWTR
from repro.core.spt import OPWSP, TDSP
from repro.core.td_tr import TDTR
from repro.experiments.dataset import (
    DISTANCE_THRESHOLDS_M,
    SPEED_THRESHOLDS_MS,
    paper_dataset,
)
from repro.experiments.harness import (
    AggregateRow,
    CompressorFactory,
    aggregate,
    run_sweep,
)
from repro.trajectory.trajectory import Trajectory

__all__ = [
    "FigureResult",
    "figure_07",
    "figure_08",
    "figure_09",
    "figure_10",
    "figure_11",
    "ALL_FIGURES",
]


@dataclass(frozen=True, slots=True)
class FigureResult:
    """The numeric series behind one paper figure."""

    figure_id: str
    title: str
    rows: tuple[AggregateRow, ...]

    def series(self, algorithm: str) -> list[AggregateRow]:
        """One algorithm's rows, sorted by threshold."""
        rows = [r for r in self.rows if r.algorithm == algorithm]
        if not rows:
            known = sorted({r.algorithm for r in self.rows})
            raise KeyError(f"no series {algorithm!r} in {self.figure_id}; have {known}")
        return sorted(rows, key=lambda r: r.threshold_m)

    def algorithms(self) -> list[str]:
        """Labels of the series present, sorted."""
        return sorted({r.algorithm for r in self.rows})


def _labelled(rows: list[AggregateRow], label: str) -> list[AggregateRow]:
    """Re-label a sweep's algorithm name (for legend-style labels)."""
    return [replace(row, algorithm=label) for row in rows]


def _sweep(
    factory: CompressorFactory,
    label: str,
    dataset: Sequence[Trajectory],
    thresholds: Sequence[float],
) -> list[AggregateRow]:
    return _labelled(aggregate(run_sweep(factory, thresholds, dataset)), label)


def figure_07(
    dataset: Sequence[Trajectory] | None = None,
    thresholds: Sequence[float] = DISTANCE_THRESHOLDS_M,
) -> FigureResult:
    """Fig. 7: conventional top-down (NDP) vs top-down time-ratio (TD-TR).

    The paper's finding: TD-TR produces much lower (synchronized) errors
    while its compression rate is only slightly lower.
    """
    dataset = paper_dataset() if dataset is None else list(dataset)
    rows = _sweep(lambda eps: DouglasPeucker(epsilon=eps), "ndp", dataset, thresholds)
    rows += _sweep(lambda eps: TDTR(epsilon=eps), "td-tr", dataset, thresholds)
    return FigureResult("fig07", "NDP vs TD-TR (compression %, sync error)", tuple(rows))


def figure_08(
    dataset: Sequence[Trajectory] | None = None,
    thresholds: Sequence[float] = DISTANCE_THRESHOLDS_M,
) -> FigureResult:
    """Fig. 8: break-point choice in opening windows — BOPW vs NOPW.

    The paper's finding: BOPW compresses more but errs worse.
    """
    dataset = paper_dataset() if dataset is None else list(dataset)
    rows = _sweep(lambda eps: BOPW(epsilon=eps), "bopw", dataset, thresholds)
    rows += _sweep(lambda eps: NOPW(epsilon=eps), "nopw", dataset, thresholds)
    return FigureResult("fig08", "BOPW vs NOPW (error, compression %)", tuple(rows))


def figure_09(
    dataset: Sequence[Trajectory] | None = None,
    thresholds: Sequence[float] = DISTANCE_THRESHOLDS_M,
) -> FigureResult:
    """Fig. 9: NOPW vs OPW-TR.

    The paper's finding: OPW-TR's error is far lower and nearly flat in
    the threshold.
    """
    dataset = paper_dataset() if dataset is None else list(dataset)
    rows = _sweep(lambda eps: NOPW(epsilon=eps), "nopw", dataset, thresholds)
    rows += _sweep(lambda eps: OPWTR(epsilon=eps), "opw-tr", dataset, thresholds)
    return FigureResult("fig09", "NOPW vs OPW-TR (error, compression %)", tuple(rows))


def figure_10(
    dataset: Sequence[Trajectory] | None = None,
    thresholds: Sequence[float] = DISTANCE_THRESHOLDS_M,
    speed_thresholds: Sequence[float] = SPEED_THRESHOLDS_MS,
) -> FigureResult:
    """Fig. 10: OPW-TR vs TD-SP(5 m/s) vs OPW-SP(5/15/25 m/s).

    The paper's finding: OPW-SP at 15 and 25 m/s behaves like OPW-TR
    (the speed criterion rarely fires); at 5 m/s it retains more points;
    TD-SP(5 m/s) compresses more at higher error.
    """
    dataset = paper_dataset() if dataset is None else list(dataset)
    rows = _sweep(lambda eps: OPWTR(epsilon=eps), "opw-tr", dataset, thresholds)
    slowest = float(min(speed_thresholds))
    rows += _sweep(
        lambda eps: TDSP(max_dist_error=eps, max_speed_error=slowest), f"td-sp({slowest:g}m/s)", dataset, thresholds
    )
    for speed in speed_thresholds:
        rows += _sweep(
            lambda eps, s=float(speed): OPWSP(max_dist_error=eps, max_speed_error=s),
            f"opw-sp({speed:g}m/s)",
            dataset,
            thresholds,
        )
    return FigureResult(
        "fig10", "OPW-TR vs TD-SP vs OPW-SP (error, compression %)", tuple(rows)
    )


def figure_11(
    dataset: Sequence[Trajectory] | None = None,
    thresholds: Sequence[float] = DISTANCE_THRESHOLDS_M,
    speed_thresholds: Sequence[float] = SPEED_THRESHOLDS_MS,
) -> FigureResult:
    """Fig. 11: error vs compression for all the headline algorithms.

    The paper's finding: the spatiotemporal algorithms dominate — at any
    given compression they commit far smaller errors than NDP/NOPW — and
    TD-TR reaches the best compression among the low-error algorithms.
    """
    dataset = paper_dataset() if dataset is None else list(dataset)
    rows = _sweep(lambda eps: DouglasPeucker(epsilon=eps), "ndp", dataset, thresholds)
    rows += _sweep(lambda eps: TDTR(epsilon=eps), "td-tr", dataset, thresholds)
    rows += _sweep(lambda eps: NOPW(epsilon=eps), "nopw", dataset, thresholds)
    rows += _sweep(lambda eps: OPWTR(epsilon=eps), "opw-tr", dataset, thresholds)
    for speed in speed_thresholds:
        rows += _sweep(
            lambda eps, s=float(speed): OPWSP(max_dist_error=eps, max_speed_error=s),
            f"opw-sp({speed:g}m/s)",
            dataset,
            thresholds,
        )
    return FigureResult("fig11", "Error versus compression, all algorithms", tuple(rows))


#: All evaluation exhibits, keyed by their paper number.
ALL_FIGURES = {
    "fig07": figure_07,
    "fig08": figure_08,
    "fig09": figure_09,
    "fig10": figure_10,
    "fig11": figure_11,
}
