"""The experiment harness: algorithm x threshold x trajectory sweeps.

Runs a grid of compressions, measures each with the paper's
time-synchronous error notion, and aggregates per (algorithm, threshold)
by averaging over trajectories — exactly how the paper's Figs. 7–11
report their values ("figures given are averages over ten different, real
trajectories").

The per-threshold fleet runs go through the batch pipeline
(:class:`~repro.pipeline.engine.BatchEngine`), so sweeps share the
store's and the CLI's execution path and can fan out over worker
processes (``run_sweep(..., workers=4)``) without changing any numbers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.core.base import Compressor
from repro.error.synchronized import (
    max_synchronized_error,
    mean_synchronized_error,
)
from repro.pipeline.engine import BatchEngine
from repro.pipeline.executor import FailurePolicy
from repro.trajectory.trajectory import Trajectory

__all__ = [
    "SweepRecord",
    "AggregateRow",
    "run_single",
    "run_sweep",
    "aggregate",
    "CompressorFactory",
]

#: Builds a compressor for a given distance threshold.
CompressorFactory = Callable[[float], Compressor]


@dataclass(frozen=True, slots=True)
class SweepRecord:
    """One compression run: algorithm x threshold x trajectory."""

    algorithm: str
    threshold_m: float
    trajectory_id: str
    n_original: int
    n_kept: int
    compression_percent: float
    mean_sync_error_m: float
    max_sync_error_m: float
    runtime_s: float


@dataclass(frozen=True, slots=True)
class AggregateRow:
    """Per (algorithm, threshold) averages over the dataset."""

    algorithm: str
    threshold_m: float
    n_trajectories: int
    compression_percent: float
    mean_sync_error_m: float
    max_sync_error_m: float
    runtime_s: float


def run_single(
    compressor: Compressor, traj: Trajectory, threshold_m: float
) -> SweepRecord:
    """Compress one trajectory and measure it."""
    started = time.perf_counter()
    result = compressor.compress(traj)
    runtime = time.perf_counter() - started
    approx = result.compressed
    return SweepRecord(
        algorithm=compressor.name,
        threshold_m=threshold_m,
        trajectory_id=traj.object_id or "?",
        n_original=len(traj),
        n_kept=len(approx),
        compression_percent=result.compression_percent,
        mean_sync_error_m=mean_synchronized_error(traj, approx),
        max_sync_error_m=max_synchronized_error(traj, approx),
        runtime_s=runtime,
    )


def run_sweep(
    factory: CompressorFactory,
    thresholds_m: Sequence[float],
    trajectories: Iterable[Trajectory],
    *,
    workers: int = 0,
    on_error: "FailurePolicy | str" = "raise",
) -> list[SweepRecord]:
    """Run a factory's algorithm over a threshold grid and a dataset.

    Each threshold's fleet pass runs through the batch pipeline, so the
    sweep inherits its process-pool parallelism and fault isolation;
    the records are identical for any ``workers`` value.

    Args:
        factory: maps a distance threshold to a configured compressor
            (speed thresholds etc. are baked into the factory).
        thresholds_m: the distance-threshold grid.
        trajectories: the evaluation dataset.
        workers: worker processes per fleet pass (0/1 = inline).
        on_error: pipeline failure policy; under ``"skip"``/``"retry"``
            failing trajectories simply produce no record.
    """
    dataset = list(trajectories)
    records: list[SweepRecord] = []
    for threshold in thresholds_m:
        compressor = factory(float(threshold))
        engine = BatchEngine(
            compressor, workers=workers, on_error=on_error, evaluate="sync"
        )
        run = engine.run(dataset)
        for item in run.results:
            records.append(
                SweepRecord(
                    algorithm=compressor.name,
                    threshold_m=float(threshold),
                    trajectory_id=item.item_id,
                    n_original=item.n_original,
                    n_kept=item.n_kept,
                    compression_percent=item.compression_percent,
                    mean_sync_error_m=item.mean_sync_error_m or 0.0,
                    max_sync_error_m=item.max_sync_error_m or 0.0,
                    runtime_s=item.runtime_s,
                )
            )
    return records


def aggregate(records: Iterable[SweepRecord]) -> list[AggregateRow]:
    """Average sweep records per (algorithm, threshold).

    Rows are ordered by algorithm name, then threshold.
    """
    groups: dict[tuple[str, float], list[SweepRecord]] = {}
    for record in records:
        groups.setdefault((record.algorithm, record.threshold_m), []).append(record)
    rows: list[AggregateRow] = []
    for (algorithm, threshold), bucket in sorted(groups.items()):
        count = len(bucket)
        rows.append(
            AggregateRow(
                algorithm=algorithm,
                threshold_m=threshold,
                n_trajectories=count,
                compression_percent=sum(r.compression_percent for r in bucket) / count,
                mean_sync_error_m=sum(r.mean_sync_error_m for r in bucket) / count,
                max_sync_error_m=sum(r.max_sync_error_m for r in bucket) / count,
                runtime_s=sum(r.runtime_s for r in bucket) / count,
            )
        )
    return rows
