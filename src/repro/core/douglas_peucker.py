"""Douglas–Peucker line simplification (the paper's NDP baseline).

The top-down algorithm of Sect. 2.1: anchor the first point, float the
last, find the intermediate point with maximum perpendicular distance to
the anchor–float line; if it exceeds the threshold, cut there and recurse
into both halves.

Two interchangeable traversal drivers are provided:

* :func:`top_down_indices` — iterative, explicit-stack (production
  default; immune to Python's recursion limit on long traces), and
* :func:`top_down_indices_recursive` — a direct transliteration of the
  textbook recursion, kept as an executable specification and compared
  against the iterative driver by the ablation bench.

Both are generic over the *segment error function*, which is how
:class:`~repro.core.td_tr.TDTR` reuses this machinery with the time-ratio
distance instead of the perpendicular one.

Orthogonally to the traversal, the segment error itself evaluates on one
of two *engines* (see :mod:`repro.core.kernels`): ``"numpy"`` batch
kernels (default) or the ``"python"`` scalar reference, which computes
bit-identical values point by point.
"""

from __future__ import annotations

from functools import partial
from typing import Protocol

import numpy as np

from repro.core import kernels
from repro.core.base import Compressor, require_positive
from repro.trajectory.trajectory import Trajectory

__all__ = [
    "SegmentErrorFn",
    "perpendicular_segment_error",
    "top_down_indices",
    "top_down_indices_recursive",
    "DouglasPeucker",
]

_TRAVERSALS = ("iterative", "recursive")


class SegmentErrorFn(Protocol):
    """Maximum approximation error of a chord over its interior points.

    Given a candidate chord between data points ``start`` and ``end``,
    returns ``(max_error, argmax_index)`` over interior indices
    ``start < i < end``; ``argmax_index`` is an index into the original
    series. Called only with ``end - start >= 2``.
    """

    def __call__(self, traj: Trajectory, start: int, end: int) -> tuple[float, int]:
        ...  # pragma: no cover - protocol signature only


def perpendicular_segment_error(
    traj: Trajectory, start: int, end: int, *, engine: str = "numpy"
) -> tuple[float, int]:
    """NDP's segment error: max perpendicular distance to the chord line."""
    if engine == "python":
        _, x, y = traj.column_lists
        error, offset = kernels.max_with_offset_py(
            kernels.perp_distances_py(x, y, start, end)
        )
    else:
        _, x, y = traj.columns
        error, offset = kernels.max_with_offset(
            kernels.perp_distances(x, y, start, end)
        )
    return error, start + 1 + offset


def top_down_indices(
    traj: Trajectory,
    threshold: float,
    segment_error: SegmentErrorFn,
) -> np.ndarray:
    """Iterative top-down split: retained indices for a >= 3 point series.

    Maintains an explicit work stack of (start, end) spans; a span is
    split at its error argmax whenever the error exceeds ``threshold``.
    Output is identical to the recursive formulation.
    """
    n = len(traj)
    keep = np.zeros(n, dtype=bool)
    keep[0] = keep[n - 1] = True
    stack: list[tuple[int, int]] = [(0, n - 1)]
    while stack:
        start, end = stack.pop()
        if end - start < 2:
            continue
        error, cut = segment_error(traj, start, end)
        if error > threshold:
            keep[cut] = True
            stack.append((start, cut))
            stack.append((cut, end))
    return np.nonzero(keep)[0]


def top_down_indices_recursive(
    traj: Trajectory,
    threshold: float,
    segment_error: SegmentErrorFn,
) -> np.ndarray:
    """Recursive reference implementation of :func:`top_down_indices`.

    Kept as an executable specification of the classic DP recursion
    (Fig. 1 of the paper); raises ``RecursionError`` on pathological
    inputs where the iterative driver keeps working.
    """
    n = len(traj)
    keep = np.zeros(n, dtype=bool)
    keep[0] = keep[n - 1] = True

    def split(start: int, end: int) -> None:
        if end - start < 2:
            return
        error, cut = segment_error(traj, start, end)
        if error > threshold:
            keep[cut] = True
            split(start, cut)
            split(cut, end)

    split(0, n - 1)
    return np.nonzero(keep)[0]


def resolve_traversal(traversal: str):
    """Map a traversal name to its top-down driver function."""
    if traversal not in _TRAVERSALS:
        raise ValueError(
            f"unknown traversal {traversal!r}; use one of {_TRAVERSALS}"
        )
    return top_down_indices if traversal == "iterative" else top_down_indices_recursive


class DouglasPeucker(Compressor):
    """NDP: the classic spatial Douglas–Peucker compressor (Sect. 2.1).

    A batch, top-down algorithm with O(N²) worst-case time. Retains a
    point whenever its perpendicular distance to the current approximating
    chord exceeds ``epsilon``.

    Args:
        epsilon: perpendicular distance threshold in metres (the paper
            sweeps 30–100 m).
        traversal: ``"iterative"`` (default) or ``"recursive"``.
        engine: ``"numpy"`` (default) or ``"python"``; ``None`` defers to
            the ``REPRO_ENGINE`` environment variable. Both engines
            select identical indices (the conformance suite pins this).
    """

    name = "ndp"

    def __init__(
        self,
        *,
        epsilon: float,
        traversal: str = "iterative",
        engine: str | None = None,
    ) -> None:
        self.epsilon = require_positive("epsilon", epsilon)
        self.traversal = traversal
        self._traversal = resolve_traversal(traversal)
        self.engine = kernels.resolve_engine(engine)

    def select_indices(self, traj: Trajectory) -> np.ndarray:
        return self._traversal(
            traj,
            self.epsilon,
            partial(perpendicular_segment_error, engine=self.engine),
        )
