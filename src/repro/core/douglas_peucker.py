"""Douglas–Peucker line simplification (the paper's NDP baseline).

The top-down algorithm of Sect. 2.1: anchor the first point, float the
last, find the intermediate point with maximum perpendicular distance to
the anchor–float line; if it exceeds the threshold, cut there and recurse
into both halves.

Two interchangeable engines are provided:

* :func:`top_down_indices` — iterative, explicit-stack (production
  default; immune to Python's recursion limit on long traces), and
* :func:`top_down_indices_recursive` — a direct transliteration of the
  textbook recursion, kept as an executable specification and compared
  against the iterative engine by the ablation bench.

Both are generic over the *segment error function*, which is how
:class:`~repro.core.td_tr.TDTR` reuses this machinery with the time-ratio
distance instead of the perpendicular one.
"""

from __future__ import annotations

from typing import Callable, Protocol

import numpy as np

from repro.core.base import Compressor, deprecated_positional_init, require_positive
from repro.geometry.distance import perpendicular_distances
from repro.trajectory.trajectory import Trajectory

__all__ = [
    "SegmentErrorFn",
    "perpendicular_segment_error",
    "top_down_indices",
    "top_down_indices_recursive",
    "DouglasPeucker",
]


class SegmentErrorFn(Protocol):
    """Maximum approximation error of a chord over its interior points.

    Given a candidate chord between data points ``start`` and ``end``,
    returns ``(max_error, argmax_index)`` over interior indices
    ``start < i < end``; ``argmax_index`` is an index into the original
    series. Called only with ``end - start >= 2``.
    """

    def __call__(self, traj: Trajectory, start: int, end: int) -> tuple[float, int]:
        ...  # pragma: no cover - protocol signature only


def perpendicular_segment_error(
    traj: Trajectory, start: int, end: int
) -> tuple[float, int]:
    """NDP's segment error: max perpendicular distance to the chord line."""
    distances = perpendicular_distances(
        traj.xy[start + 1 : end], traj.xy[start], traj.xy[end]
    )
    offset = int(np.argmax(distances))
    return float(distances[offset]), start + 1 + offset


def top_down_indices(
    traj: Trajectory,
    threshold: float,
    segment_error: SegmentErrorFn,
) -> np.ndarray:
    """Iterative top-down split: retained indices for a >= 3 point series.

    Maintains an explicit work stack of (start, end) spans; a span is
    split at its error argmax whenever the error exceeds ``threshold``.
    Output is identical to the recursive formulation.
    """
    n = len(traj)
    keep = np.zeros(n, dtype=bool)
    keep[0] = keep[n - 1] = True
    stack: list[tuple[int, int]] = [(0, n - 1)]
    while stack:
        start, end = stack.pop()
        if end - start < 2:
            continue
        error, cut = segment_error(traj, start, end)
        if error > threshold:
            keep[cut] = True
            stack.append((start, cut))
            stack.append((cut, end))
    return np.nonzero(keep)[0]


def top_down_indices_recursive(
    traj: Trajectory,
    threshold: float,
    segment_error: SegmentErrorFn,
) -> np.ndarray:
    """Recursive reference implementation of :func:`top_down_indices`.

    Kept as an executable specification of the classic DP recursion
    (Fig. 1 of the paper); raises ``RecursionError`` on pathological
    inputs where the iterative engine keeps working.
    """
    n = len(traj)
    keep = np.zeros(n, dtype=bool)
    keep[0] = keep[n - 1] = True

    def split(start: int, end: int) -> None:
        if end - start < 2:
            return
        error, cut = segment_error(traj, start, end)
        if error > threshold:
            keep[cut] = True
            split(start, cut)
            split(cut, end)

    split(0, n - 1)
    return np.nonzero(keep)[0]


class DouglasPeucker(Compressor):
    """NDP: the classic spatial Douglas–Peucker compressor (Sect. 2.1).

    A batch, top-down algorithm with O(N²) worst-case time. Retains a
    point whenever its perpendicular distance to the current approximating
    chord exceeds ``epsilon``.

    Args:
        epsilon: perpendicular distance threshold in metres (the paper
            sweeps 30–100 m).
        engine: ``"iterative"`` (default) or ``"recursive"``.
    """

    name = "ndp"

    @deprecated_positional_init
    def __init__(self, *, epsilon: float, engine: str = "iterative") -> None:
        self.epsilon = require_positive("epsilon", epsilon)
        if engine not in ("iterative", "recursive"):
            raise ValueError(f"unknown engine {engine!r}")
        self.engine: Callable[..., np.ndarray] = (
            top_down_indices if engine == "iterative" else top_down_indices_recursive
        )

    def select_indices(self, traj: Trajectory) -> np.ndarray:
        return self.engine(traj, self.epsilon, perpendicular_segment_error)
