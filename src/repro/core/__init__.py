"""Trajectory compression algorithms.

The paper's contributions:

* :class:`TDTR` — top-down time-ratio (Douglas–Peucker with synchronized
  distance), Sect. 3.2;
* :class:`OPWTR` — opening-window time-ratio, Sect. 3.2;
* :class:`OPWSP` / :class:`TDSP` — the spatiotemporal class adding the
  speed-difference criterion, Sect. 3.3 (with
  :func:`~repro.core.spt.spt_paper_indices` as the faithful pseudocode
  port).

The spatial baselines it compares against:

* :class:`DouglasPeucker` (NDP), :class:`NOPW`, :class:`BOPW` — Sects.
  2.1–2.2;
* :class:`EveryIth`, :class:`DistanceThreshold`, :class:`AngularChange`,
  :class:`SlidingWindow`, :class:`BottomUp` — the rest of the Sect. 2
  taxonomy.

All algorithms select a subseries of the input's data points and always
retain the first and last point. Use :func:`make_compressor` for
name-based construction.

Every compressor accepts ``engine="numpy" | "python"`` (default numpy;
overridable via the ``REPRO_ENGINE`` environment variable): the numpy
engine evaluates its discard criterion with the batch kernels of
:mod:`repro.core.kernels`, the python engine with their scalar reference
mirrors — both select identical indices by construction, which the
differential conformance suite pins.
"""

from repro.core.angular import AngularChange
from repro.core.kernels import ENGINE_ENV_VAR, ENGINES, resolve_engine
from repro.core.base import CompressionResult, Compressor
from repro.core.bottom_up import BottomUp
from repro.core.budget import BottomUpBudget, BottomUpTotalError, TDTRBudget
from repro.core.dead_reckoning import DeadReckoning, dead_reckoning_indices
from repro.core.douglas_peucker import (
    DouglasPeucker,
    perpendicular_segment_error,
    top_down_indices,
    top_down_indices_recursive,
)
from repro.core.one_pass import (
    CISED,
    OPERB,
    PolygonRegion,
    RectangleRegion,
    one_pass_indices,
)
from repro.core.opening_window import (
    BOPW,
    NOPW,
    opening_window_indices,
    perpendicular_scan,
)
from repro.core.opw_tr import OPWTR, synchronized_scan
from repro.core.registry import (
    COMPRESSORS,
    CompressorSpec,
    available_compressors,
    make_compressor,
    parse_compressor_spec,
)
from repro.core.sliding_window import SlidingWindow
from repro.core.spt import (
    OPWSP,
    TDSP,
    spatiotemporal_scan,
    speed_violations,
    spt_paper_indices,
)
from repro.core.td_tr import TDTR, synchronized_segment_error
from repro.core.uniform import DistanceThreshold, EveryIth

__all__ = [
    "AngularChange",
    "BOPW",
    "BottomUp",
    "BottomUpBudget",
    "BottomUpTotalError",
    "CISED",
    "COMPRESSORS",
    "CompressionResult",
    "Compressor",
    "CompressorSpec",
    "DeadReckoning",
    "DistanceThreshold",
    "DouglasPeucker",
    "ENGINES",
    "ENGINE_ENV_VAR",
    "EveryIth",
    "NOPW",
    "OPERB",
    "OPWSP",
    "OPWTR",
    "PolygonRegion",
    "RectangleRegion",
    "SlidingWindow",
    "TDSP",
    "TDTR",
    "TDTRBudget",
    "available_compressors",
    "dead_reckoning_indices",
    "make_compressor",
    "one_pass_indices",
    "parse_compressor_spec",
    "opening_window_indices",
    "perpendicular_scan",
    "perpendicular_segment_error",
    "resolve_engine",
    "spatiotemporal_scan",
    "speed_violations",
    "spt_paper_indices",
    "synchronized_scan",
    "synchronized_segment_error",
    "top_down_indices",
    "top_down_indices_recursive",
]
