"""Vectorized compression kernels and their scalar reference mirrors.

The discard tests of every algorithm in this library reduce to a handful
of per-chord sweeps: the synchronized (time-ratio) distance of Eqs. 1–2,
the perpendicular distance of classic line generalization, the derived
segment speeds of the SP criterion, and the closed-form α integrand of
Sect. 4.2. This module implements each sweep twice:

* a **NumPy kernel** (``sync_distances``, ``perp_distances``,
  ``segment_speeds``, ``speed_deltas``, ``segment_mean_distances``,
  ``chord_point_distances``, ``chord_line_distances``) — the production
  fast path, batch-evaluating a whole point range per call; and
* a **scalar reference mirror** (the ``*_py`` functions) — a faithful
  point-by-point port in pure Python, kept as the executable
  specification the fast path is differentially tested against.

Both sides compute the *same floating-point expressions in the same
order* (for example ``sqrt(dx*dx + dy*dy)`` rather than ``hypot``, whose
libm rounding may differ from the explicit form by one ulp), so for any
input the two engines produce **bit-identical** criterion values — which
is what lets ``tests/core/test_engine_conformance.py`` assert identical
retained indices and bit-identical error reports rather than mere
closeness.

Engine selection is centralized in :func:`resolve_engine`: every
compressor takes ``engine="numpy" | "python"`` (default ``"numpy"``,
overridable process-wide through the ``REPRO_ENGINE`` environment
variable).
"""

from __future__ import annotations

import math
import os

import numpy as np

from repro.exceptions import TrajectoryError

__all__ = [
    "ENGINES",
    "ENGINE_ENV_VAR",
    "resolve_engine",
    "sync_distances",
    "sync_distances_py",
    "perp_distances",
    "perp_distances_py",
    "segment_speeds",
    "segment_speeds_py",
    "speed_deltas",
    "speed_deltas_py",
    "first_above",
    "first_above_py",
    "max_with_offset",
    "max_with_offset_py",
    "sync_circles",
    "sync_circles_py",
    "segment_mean_distances",
    "chord_point_distances",
    "chord_point_distance_py",
    "chord_line_distances",
    "chord_line_distance_py",
]

#: The two interchangeable execution engines.
ENGINES = ("numpy", "python")

#: Environment variable overriding the default engine process-wide.
ENGINE_ENV_VAR = "REPRO_ENGINE"


def resolve_engine(engine: str | None = None) -> str:
    """Resolve an engine choice to ``"numpy"`` or ``"python"``.

    Resolution order: an explicit ``engine`` argument wins; otherwise the
    ``REPRO_ENGINE`` environment variable; otherwise ``"numpy"``.

    Raises:
        ValueError: for any other value (naming its source, so a typo in
            the environment variable is attributed correctly).
    """
    source = "engine"
    if engine is None:
        engine = os.environ.get(ENGINE_ENV_VAR) or None
        source = f"${ENGINE_ENV_VAR}"
    if engine is None:
        return "numpy"
    if engine not in ENGINES:
        raise ValueError(
            f"unknown {source} value {engine!r}; use one of {list(ENGINES)}"
        )
    return engine


# --------------------------------------------------------------------- #
# Synchronized (time-ratio) distance, Eqs. 1–2
# --------------------------------------------------------------------- #


def sync_distances(
    t: np.ndarray, x: np.ndarray, y: np.ndarray, start: int, end: int
) -> np.ndarray:
    """Batch synchronized distances of interior points to a chord.

    For the candidate chord between data points ``start`` and ``end``,
    returns ``dist(P_i, P'_i)`` for every interior index
    ``start < i < end`` in one vectorized sweep — the quantity TD-TR,
    OPW-TR and OPW-SP test against their distance threshold.

    Args:
        t: timestamps, shape ``(n,)``, strictly increasing.
        x, y: coordinate columns, shape ``(n,)``.
        start: chord start index.
        end: chord end index (``end > start``).

    Returns:
        Array of shape ``(end - start - 1,)``; empty for adjacent points.
    """
    ts = t[start]
    delta_e = t[end] - ts
    ratio = (t[start + 1 : end] - ts) / delta_e
    px = x[start] + ratio * (x[end] - x[start])
    py = y[start] + ratio * (y[end] - y[start])
    dx = x[start + 1 : end] - px
    dy = y[start + 1 : end] - py
    return np.sqrt(dx * dx + dy * dy)


def sync_distances_py(
    t: list[float], x: list[float], y: list[float], start: int, end: int
) -> list[float]:
    """Scalar reference mirror of :func:`sync_distances`."""
    ts = t[start]
    delta_e = t[end] - ts
    xs, ys = x[start], y[start]
    ex, ey = x[end] - xs, y[end] - ys
    out = []
    for i in range(start + 1, end):
        ratio = (t[i] - ts) / delta_e
        dx = x[i] - (xs + ratio * ex)
        dy = y[i] - (ys + ratio * ey)
        out.append(math.sqrt(dx * dx + dy * dy))
    return out


# --------------------------------------------------------------------- #
# Perpendicular distance (infinite line through a chord)
# --------------------------------------------------------------------- #


def perp_distances(
    x: np.ndarray, y: np.ndarray, start: int, end: int
) -> np.ndarray:
    """Batch perpendicular distances of interior points to a chord line.

    The discard criterion of the spatial algorithms (NDP, NOPW, BOPW):
    cross-product magnitude over chord length, degenerating to the plain
    point distance when the chord has zero length.

    Returns:
        Array of shape ``(end - start - 1,)``.
    """
    ax, ay = x[start], y[start]
    abx = x[end] - ax
    aby = y[end] - ay
    norm = np.sqrt(abx * abx + aby * aby)
    rx = x[start + 1 : end] - ax
    ry = y[start + 1 : end] - ay
    if norm == 0.0:
        return np.sqrt(rx * rx + ry * ry)
    cross = rx * aby - ry * abx
    return np.abs(cross) / norm


def perp_distances_py(
    x: list[float], y: list[float], start: int, end: int
) -> list[float]:
    """Scalar reference mirror of :func:`perp_distances`."""
    ax, ay = x[start], y[start]
    abx = x[end] - ax
    aby = y[end] - ay
    norm = math.sqrt(abx * abx + aby * aby)
    out = []
    for i in range(start + 1, end):
        rx = x[i] - ax
        ry = y[i] - ay
        if norm == 0.0:
            out.append(math.sqrt(rx * rx + ry * ry))
        else:
            out.append(abs(rx * aby - ry * abx) / norm)
    return out


# --------------------------------------------------------------------- #
# Derived segment speeds and speed differences (SP criterion)
# --------------------------------------------------------------------- #


def segment_speeds(t: np.ndarray, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Batch derived speeds ``v[i] = dist(P_{i+1}, P_i) / (t_{i+1} - t_i)``.

    Returns:
        Array of shape ``(n - 1,)``.
    """
    dx = x[1:] - x[:-1]
    dy = y[1:] - y[:-1]
    dt = t[1:] - t[:-1]
    return np.sqrt(dx * dx + dy * dy) / dt


def segment_speeds_py(
    t: list[float], x: list[float], y: list[float]
) -> list[float]:
    """Scalar reference mirror of :func:`segment_speeds`."""
    out = []
    for i in range(len(t) - 1):
        dx = x[i + 1] - x[i]
        dy = y[i + 1] - y[i]
        out.append(math.sqrt(dx * dx + dy * dy) / (t[i + 1] - t[i]))
    return out


def speed_deltas(t: np.ndarray, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Batch speed differences ``|v_i - v_{i-1}|`` at interior points.

    ``out[j]`` is the speed jump at data point ``j + 1`` — the quantity
    the SP algorithms compare against ``max_speed_error``.

    Returns:
        Array of shape ``(n - 2,)``.
    """
    v = segment_speeds(t, x, y)
    return np.abs(v[1:] - v[:-1])


def speed_deltas_py(
    t: list[float], x: list[float], y: list[float]
) -> list[float]:
    """Scalar reference mirror of :func:`speed_deltas`."""
    v = segment_speeds_py(t, x, y)
    return [abs(v[j + 1] - v[j]) for j in range(len(v) - 1)]


# --------------------------------------------------------------------- #
# Reductions over criterion sweeps
# --------------------------------------------------------------------- #


def first_above(values: np.ndarray, threshold: float) -> int:
    """Offset of the first value strictly above ``threshold``, or ``-1``."""
    hits = np.nonzero(values > threshold)[0]
    if hits.size == 0:
        return -1
    return int(hits[0])


def first_above_py(values: list[float], threshold: float) -> int:
    """Scalar reference mirror of :func:`first_above`."""
    for offset, value in enumerate(values):
        if value > threshold:
            return offset
    return -1


def max_with_offset(values: np.ndarray) -> tuple[float, int]:
    """``(max value, offset of its first occurrence)`` of a sweep."""
    offset = int(np.argmax(values))
    return float(values[offset]), offset


def max_with_offset_py(values: list[float]) -> tuple[float, int]:
    """Scalar reference mirror of :func:`max_with_offset`.

    The strict ``>`` keeps the *first* occurrence of the maximum, matching
    ``np.argmax``.
    """
    best = values[0]
    best_offset = 0
    for offset in range(1, len(values)):
        if values[offset] > best:
            best = values[offset]
            best_offset = offset
    return best, best_offset


# --------------------------------------------------------------------- #
# Velocity-space feasibility circles (one-pass SED algorithms)
# --------------------------------------------------------------------- #


def sync_circles(
    t: np.ndarray,
    x: np.ndarray,
    y: np.ndarray,
    anchor: int,
    start: int,
    end: int,
    epsilon: float,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Batch velocity-space discs for points ``start <= i < end``.

    The synchronized distance of point ``i`` under a chord that leaves
    ``anchor`` with end velocity ``v`` is ``dt_i * |v - c_i|`` where
    ``c_i = (P_i - P_anchor) / dt_i``. Hence ``SED_i <= epsilon`` iff
    ``v`` lies in the disc of center ``c_i`` and radius
    ``r_i = epsilon / dt_i`` — the feasibility region the one-pass
    algorithms (OPERB, CISED) intersect incrementally.

    Args:
        t: timestamps, shape ``(n,)``, strictly increasing.
        x, y: coordinate columns, shape ``(n,)``.
        anchor: index of the chord's start point.
        start: first disc index (``start > anchor``).
        end: one past the last disc index.
        epsilon: SED threshold in metres.

    Returns:
        ``(cx, cy, r)`` arrays of shape ``(end - start,)``.
    """
    dt = t[start:end] - t[anchor]
    cx = (x[start:end] - x[anchor]) / dt
    cy = (y[start:end] - y[anchor]) / dt
    r = epsilon / dt
    return cx, cy, r


def sync_circles_py(
    t: list[float],
    x: list[float],
    y: list[float],
    anchor: int,
    start: int,
    end: int,
    epsilon: float,
) -> list[tuple[float, float, float]]:
    """Scalar reference mirror of :func:`sync_circles`."""
    ta, xa, ya = t[anchor], x[anchor], y[anchor]
    out = []
    for i in range(start, end):
        dt = t[i] - ta
        out.append(((x[i] - xa) / dt, (y[i] - ya) / dt, epsilon / dt))
    return out


# --------------------------------------------------------------------- #
# Closed-form α integrand (paper Eq. 4/5), batched
# --------------------------------------------------------------------- #

#: Relative tolerance for degenerate-case detection; must match the
#: scalar reference, :func:`repro.error.synchronized.segment_mean_distance`.
_CASE_RTOL = 1e-12


def segment_mean_distances(v0: np.ndarray, v1: np.ndarray) -> np.ndarray:
    """Batch average of ``|v0 + u (v1 - v0)|`` over ``u ∈ [0, 1]`` per row.

    Vectorized mirror of
    :func:`repro.error.synchronized.segment_mean_distance` — same case
    analysis, same expressions, bit-identical output row by row. This is
    the per-segment sweep of the paper's α(p, a) integral, evaluated for
    all merged-grid intervals in one call.

    Args:
        v0: difference vectors at interval starts, shape ``(n, 2)``.
        v1: difference vectors at interval ends, shape ``(n, 2)``.

    Raises:
        TrajectoryError: any component is NaN or infinite.
    """
    v0 = np.asarray(v0, dtype=float)
    v1 = np.asarray(v1, dtype=float)
    if not (np.all(np.isfinite(v0)) and np.all(np.isfinite(v1))):
        raise TrajectoryError("difference vectors must be finite")
    wx = v1[:, 0] - v0[:, 0]
    wy = v1[:, 1] - v0[:, 1]
    # a, b, c mirror the scalar reference's dot products term by term.
    a = wx * wx + wy * wy
    b = 2.0 * (v0[:, 0] * wx + v0[:, 1] * wy)
    c = v0[:, 0] * v0[:, 0] + v0[:, 1] * v0[:, 1]
    scale = np.maximum(np.maximum(a, np.abs(b)), np.maximum(c, 1e-300))
    out = np.empty(a.shape[0])

    # Case c1 = 0: pure translation, constant distance.
    case1 = a <= _CASE_RTOL * scale
    out[case1] = np.sqrt(c[case1])

    disc = 4.0 * a * c - b * b
    rest = ~case1

    # Case c2² - 4 c1 c3 = 0: parallel difference vectors.
    case2 = rest & (disc <= _CASE_RTOL * scale * scale)
    if np.any(case2):
        a2, b2 = a[case2], b[case2]
        r = -b2 / (2.0 * a2)
        integral = np.where(
            r <= 0.0,
            0.5 - r,
            np.where(r >= 1.0, r - 0.5, (r * r + (1.0 - r) * (1.0 - r)) / 2.0),
        )
        out[case2] = np.sqrt(a2) * integral

    # General case: arcsinh antiderivative (the paper's F(t)).
    case3 = rest & ~case2
    if np.any(case3):
        a3, b3, c3 = a[case3], b[case3], c[case3]
        disc3 = disc[case3]
        sqrt_disc = np.sqrt(disc3)
        sqrt_a = np.sqrt(a3)

        def antiderivative(u: float) -> np.ndarray:
            s = np.sqrt(np.maximum(a3 * u * u + b3 * u + c3, 0.0))
            return (2.0 * a3 * u + b3) / (4.0 * a3) * s + disc3 / (
                8.0 * a3 * sqrt_a
            ) * np.arcsinh((2.0 * a3 * u + b3) / sqrt_disc)

        out[case3] = antiderivative(1.0) - antiderivative(0.0)
    return out


# --------------------------------------------------------------------- #
# Point-to-chord distances for the error sweeps
# --------------------------------------------------------------------- #


def chord_point_distances(
    px: np.ndarray,
    py: np.ndarray,
    ax: float,
    ay: float,
    bx: float,
    by: float,
) -> np.ndarray:
    """Batch distances from points to the closed segment ``a``–``b``."""
    abx = bx - ax
    aby = by - ay
    denom = abx * abx + aby * aby
    rx = px - ax
    ry = py - ay
    if denom == 0.0:
        return np.sqrt(rx * rx + ry * ry)
    u = np.clip((rx * abx + ry * aby) / denom, 0.0, 1.0)
    dx = rx - u * abx
    dy = ry - u * aby
    return np.sqrt(dx * dx + dy * dy)


def chord_point_distance_py(
    px: float, py: float, ax: float, ay: float, bx: float, by: float
) -> float:
    """Scalar reference mirror of :func:`chord_point_distances`."""
    abx = bx - ax
    aby = by - ay
    denom = abx * abx + aby * aby
    rx = px - ax
    ry = py - ay
    if denom == 0.0:
        return math.sqrt(rx * rx + ry * ry)
    u = min(max((rx * abx + ry * aby) / denom, 0.0), 1.0)
    dx = rx - u * abx
    dy = ry - u * aby
    return math.sqrt(dx * dx + dy * dy)


def chord_line_distances(
    px: np.ndarray,
    py: np.ndarray,
    ax: float,
    ay: float,
    bx: float,
    by: float,
) -> np.ndarray:
    """Batch distances from points to the infinite line through ``a``–``b``."""
    abx = bx - ax
    aby = by - ay
    norm = np.sqrt(abx * abx + aby * aby)
    rx = px - ax
    ry = py - ay
    if norm == 0.0:
        return np.sqrt(rx * rx + ry * ry)
    return np.abs(rx * aby - ry * abx) / norm


def chord_line_distance_py(
    px: float, py: float, ax: float, ay: float, bx: float, by: float
) -> float:
    """Scalar reference mirror of :func:`chord_line_distances`."""
    abx = bx - ax
    aby = by - ay
    norm = math.sqrt(abx * abx + aby * aby)
    rx = px - ax
    ry = py - ay
    if norm == 0.0:
        return math.sqrt(rx * rx + ry * ry)
    return abs(rx * aby - ry * abx) / norm
