"""Dead-reckoning compression (the paper's future-work direction).

The paper closes by noting that "other measurements such as momentaneous
speed and direction values are sometimes available" and that "other, more
advanced, interpolation techniques and consequently other error notions
can be defined". Dead reckoning is the classic realization of that idea
in moving-object databases: a retained point carries a *velocity*, the
reconstruction extrapolates ``pos + v * (t - t_keep)`` instead of
interpolating a chord, and a new point is retained exactly when the
observed position drifts more than a threshold from the prediction.

Two practical properties distinguish it from the opening-window family:

* it is **O(N)** — each point is compared once against the current
  prediction, no window rescans — so it suits the weakest trackers;
* its decision is **causal**: the retained point is chosen before any
  later data is seen, which is why fleet-tracking protocols use it for
  *update policies* (only transmit when prediction breaks).

The cost is accuracy per retained point: a chord fitted with hindsight
(OPW-TR) beats a forward extrapolation, which the dead-reckoning ablation
bench quantifies.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core import kernels
from repro.core.base import Compressor, require_positive
from repro.trajectory.trajectory import Trajectory

__all__ = ["DeadReckoning", "dead_reckoning_indices"]


def dead_reckoning_indices(traj: Trajectory, epsilon: float) -> np.ndarray:
    """Retained indices under a dead-reckoning update policy.

    The anchor's velocity is the derived velocity of its *incoming*
    segment (available causally; the very first anchor, having no
    incoming segment, predicts a stationary object). A point is retained
    when its observed position deviates more than ``epsilon`` from the
    anchor's extrapolation; it then becomes the new anchor.

    Args:
        traj: input trajectory (``len >= 3``; the base class handles
            shorter input).
        epsilon: prediction-error threshold in metres.
    """
    epsilon = require_positive("epsilon", epsilon)
    t, x, y = traj.column_lists
    n = len(t)
    keep = [0]
    anchor = 0
    vx = vy = 0.0  # first anchor: no incoming segment yet
    for i in range(1, n - 1):
        elapsed = t[i] - t[anchor]
        dx = x[i] - (x[anchor] + vx * elapsed)
        dy = y[i] - (y[anchor] + vy * elapsed)
        if math.sqrt(dx * dx + dy * dy) > epsilon:
            keep.append(i)
            anchor = i
            dt = t[i] - t[i - 1]
            vx = (x[i] - x[i - 1]) / dt
            vy = (y[i] - y[i - 1]) / dt
    keep.append(n - 1)
    return np.asarray(keep, dtype=int)


class DeadReckoning(Compressor):
    """O(N) online compression via velocity extrapolation.

    Args:
        epsilon: prediction-error threshold in metres. Note that unlike
            the chord-based algorithms the *reconstruction* here is still
            the piecewise-linear path through retained points, so the
            synchronized error of the result is not bounded by
            ``epsilon`` — the threshold bounds the transmitter-side
            prediction error, matching how update policies are specified.
        engine: accepted for registry uniformity; the anchor/velocity
            recurrence is inherently sequential, so both engines share
            the scalar loop.
    """

    name = "dead-reckoning"
    online = True

    def __init__(self, *, epsilon: float, engine: str | None = None) -> None:
        self.epsilon = require_positive("epsilon", epsilon)
        self.engine = kernels.resolve_engine(engine)

    def select_indices(self, traj: Trajectory) -> np.ndarray:
        return dead_reckoning_indices(traj, self.epsilon)
