"""Opening-window algorithms (paper Sect. 2.2).

An opening-window (OW) algorithm anchors a segment start and grows the
window — the float moves one point up the series — as long as every
intermediate point stays within the threshold of the anchor–float chord.
On the first violation the current segment is closed at a *break point*
and the break point becomes the next anchor. Two break-point strategies:

* **NOPW** — break at the data point *causing* the threshold violation;
* **BOPW** — break at the data point *just before the float* (the last
  window position that passed in full). In the paper's Fig. 3 the first
  window opens to point 6 with point 4 causing the excess, and point 5 —
  the float's predecessor — becomes the cut point.

BOPW closes longer segments, hence compresses more but commits larger
errors (the paper's Fig. 8 comparison).

OW algorithms are *online*: they never look past the current float, so
they can compress a live stream (see :mod:`repro.streaming`). They are
O(N²) like DP, but with a worse constant because each window growth
rescans the whole window.

The machinery is generic over the *window scan* — the function that finds
the first violating intermediate point — which is how
:class:`~repro.core.opw_tr.OPWTR` (time-ratio scan) and
:class:`~repro.core.spt.OPWSP` (time-ratio + speed scan) reuse it.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.core import kernels
from repro.core.base import Compressor, require_positive
from repro.trajectory.trajectory import Trajectory

__all__ = [
    "WindowScanFn",
    "BreakStrategy",
    "perpendicular_scan",
    "opening_window_indices",
    "NOPW",
    "BOPW",
]

#: Break-point strategies: ``"violating"`` (NOPW) or ``"before-float"`` (BOPW).
BreakStrategy = str

_STRATEGIES = ("violating", "before-float")


class WindowScanFn(Protocol):
    """Find the first intermediate point violating the window's criterion.

    Given the current anchor and float (window end), scans interior
    indices ``anchor < i < float_end`` in order and returns the first
    violating index, or ``-1`` when the whole window passes.
    """

    def __call__(self, traj: Trajectory, anchor: int, float_end: int) -> int:
        ...  # pragma: no cover - protocol signature only


def perpendicular_scan(threshold: float, engine: str = "numpy") -> WindowScanFn:
    """Window scan testing perpendicular distance to the anchor–float line.

    The criterion of the classic (spatial) NOPW/BOPW algorithms.
    """
    threshold = require_positive("threshold", threshold)

    if engine == "python":

        def scan(traj: Trajectory, anchor: int, float_end: int) -> int:
            _, x, y = traj.column_lists
            offset = kernels.first_above_py(
                kernels.perp_distances_py(x, y, anchor, float_end), threshold
            )
            return -1 if offset < 0 else anchor + 1 + offset

    else:

        def scan(traj: Trajectory, anchor: int, float_end: int) -> int:
            _, x, y = traj.columns
            offset = kernels.first_above(
                kernels.perp_distances(x, y, anchor, float_end), threshold
            )
            return -1 if offset < 0 else anchor + 1 + offset

    return scan


def opening_window_indices(
    traj: Trajectory,
    scan: WindowScanFn,
    strategy: BreakStrategy = "violating",
) -> np.ndarray:
    """Generic opening-window driver: retained indices for >= 3 points.

    Args:
        traj: input trajectory (``len >= 3``).
        scan: the per-window violation test.
        strategy: ``"violating"`` (NOPW) or ``"before-float"`` (BOPW).

    The final data point is always retained — the counter-measure for the
    "lost tail" problem the paper observes in Figs. 2–3.
    """
    if strategy not in _STRATEGIES:
        raise ValueError(f"unknown break strategy {strategy!r}; use one of {_STRATEGIES}")
    n = len(traj)
    keep = [0]
    anchor = 0
    float_end = anchor + 2
    while float_end < n:
        violating = scan(traj, anchor, float_end)
        if violating < 0:
            float_end += 1
            continue
        if strategy == "violating":
            cut = violating
        else:
            cut = float_end - 1
        # The cut must advance past the anchor for termination; with a
        # window of size two the violating point *is* float_end - 1, so
        # both strategies already satisfy this — the max is a guard.
        cut = max(cut, anchor + 1)
        keep.append(cut)
        anchor = cut
        float_end = anchor + 2
    if keep[-1] != n - 1:
        keep.append(n - 1)
    return np.asarray(keep, dtype=int)


class NOPW(Compressor):
    """Normal Opening Window: spatial criterion, break at the violator.

    Online algorithm with perpendicular-distance criterion (Sect. 2.2).

    Args:
        epsilon: perpendicular distance threshold in metres.
        engine: ``"numpy"`` (default) or ``"python"``; ``None`` defers to
            the ``REPRO_ENGINE`` environment variable.
    """

    name = "nopw"
    online = True

    def __init__(self, *, epsilon: float, engine: str | None = None) -> None:
        self.epsilon = require_positive("epsilon", epsilon)
        self.engine = kernels.resolve_engine(engine)

    def select_indices(self, traj: Trajectory) -> np.ndarray:
        return opening_window_indices(
            traj, perpendicular_scan(self.epsilon, self.engine), "violating"
        )


class BOPW(Compressor):
    """Before Opening Window: spatial criterion, break before the float.

    Compresses more aggressively than :class:`NOPW` at the cost of higher
    error (the paper's Fig. 8 trade-off).

    Args:
        epsilon: perpendicular distance threshold in metres.
        engine: ``"numpy"`` (default) or ``"python"``; ``None`` defers to
            the ``REPRO_ENGINE`` environment variable.
    """

    name = "bopw"
    online = True

    def __init__(self, *, epsilon: float, engine: str | None = None) -> None:
        self.epsilon = require_positive("epsilon", epsilon)
        self.engine = kernels.resolve_engine(engine)

    def select_indices(self, traj: Trajectory) -> np.ndarray:
        return opening_window_indices(
            traj, perpendicular_scan(self.epsilon, self.engine), "before-float"
        )
