"""Fixed-size sliding-window baseline (paper Sect. 2 taxonomy).

The paper's four-way classification (after Keogh et al. [10]) includes a
*sliding window* category: a window of fixed size moves over the series
and compression happens only inside the window. This baseline partitions
the series into consecutive windows of ``window_size`` points and, inside
each window, keeps the boundary points plus any interior point whose
error against the window's chord exceeds the threshold — a bounded-memory,
online-capable scheme that trades quality for a hard O(window) space
bound.

Both the perpendicular and the synchronized criterion are supported so the
category can be compared on equal terms with the paper's classes.
"""

from __future__ import annotations

import numpy as np

from repro.core import kernels
from repro.core.base import Compressor, require_positive
from repro.trajectory.trajectory import Trajectory

__all__ = ["SlidingWindow"]


class SlidingWindow(Compressor):
    """Windowed compression with a fixed point budget per window.

    Args:
        epsilon: error threshold in metres.
        window_size: number of points per window (``>= 3``).
        criterion: ``"perpendicular"`` or ``"synchronized"``.
        engine: ``"numpy"`` (default) or ``"python"``; ``None`` defers to
            the ``REPRO_ENGINE`` environment variable.
    """

    name = "sliding-window"
    online = True

    def __init__(
        self,
        *,
        epsilon: float,
        window_size: int = 32,
        criterion: str = "perpendicular",
        engine: str | None = None,
    ) -> None:
        self.epsilon = require_positive("epsilon", epsilon)
        if window_size < 3:
            raise ValueError(f"window_size must be >= 3, got {window_size}")
        if criterion not in ("perpendicular", "synchronized"):
            raise ValueError(f"unknown criterion {criterion!r}")
        self.window_size = int(window_size)
        self.criterion = criterion
        self.engine = kernels.resolve_engine(engine)

    def _window_errors(self, traj: Trajectory, start: int, end: int):
        if self.engine == "python":
            t, x, y = traj.column_lists
            if self.criterion == "perpendicular":
                return kernels.perp_distances_py(x, y, start, end)
            return kernels.sync_distances_py(t, x, y, start, end)
        t, x, y = traj.columns
        if self.criterion == "perpendicular":
            return kernels.perp_distances(x, y, start, end)
        return kernels.sync_distances(t, x, y, start, end)

    def select_indices(self, traj: Trajectory) -> np.ndarray:
        n = len(traj)
        keep = np.zeros(n, dtype=bool)
        keep[0] = keep[n - 1] = True
        start = 0
        while start < n - 1:
            end = min(start + self.window_size - 1, n - 1)
            keep[start] = keep[end] = True
            if end - start >= 2:
                errors = self._window_errors(traj, start, end)
                if self.engine == "python":
                    for offset, error in enumerate(errors):
                        if error > self.epsilon:
                            keep[start + 1 + offset] = True
                else:
                    bad = np.nonzero(errors > self.epsilon)[0]
                    keep[start + 1 + bad] = True
            start = end
        return np.nonzero(keep)[0]
