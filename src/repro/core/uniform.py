"""Naive sequential baselines (paper Sect. 2, refs [11]).

The simplest compression algorithms ignore any relationship between
neighbouring points beyond, at most, their mutual distance:

* :class:`EveryIth` — keep every i-th data point (Tobler-style numerical
  map generalization);
* :class:`DistanceThreshold` — walk the series and drop a point when it is
  closer than a threshold to the last *kept* point.

The paper notes these are computationally efficient but "frequently
eliminate or misrepresent important points such as sharp angles"; they are
included as the floor of the comparison and for the scaling bench.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import Compressor, deprecated_positional_init, require_positive
from repro.trajectory.ops import every_ith_indices
from repro.trajectory.trajectory import Trajectory

__all__ = ["EveryIth", "DistanceThreshold"]


class EveryIth(Compressor):
    """Keep every ``step``-th data point (plus the final point).

    Args:
        step: decimation factor; ``step=3`` keeps points 0, 3, 6, ...
    """

    name = "every-ith"
    online = True

    @deprecated_positional_init
    def __init__(self, *, step: int) -> None:
        if not isinstance(step, (int, np.integer)) or step < 1:
            raise ValueError(f"step must be a positive integer, got {step!r}")
        self.step = int(step)

    def select_indices(self, traj: Trajectory) -> np.ndarray:
        return every_ith_indices(len(traj), self.step)


class DistanceThreshold(Compressor):
    """Drop points within ``epsilon`` of the last retained point.

    A sequential, online baseline: it keeps the first point, then scans
    forward retaining a point only when its Euclidean distance to the most
    recently retained point reaches ``epsilon``. The final point is always
    retained.

    Args:
        epsilon: minimum spacing between retained points, in metres.
    """

    name = "distance-threshold"
    online = True

    @deprecated_positional_init
    def __init__(self, *, epsilon: float) -> None:
        self.epsilon = require_positive("epsilon", epsilon)

    def select_indices(self, traj: Trajectory) -> np.ndarray:
        n = len(traj)
        keep = [0]
        last = traj.xy[0]
        for i in range(1, n - 1):
            if float(np.hypot(*(traj.xy[i] - last))) >= self.epsilon:
                keep.append(i)
                last = traj.xy[i]
        keep.append(n - 1)
        return np.asarray(keep, dtype=int)
