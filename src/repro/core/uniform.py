"""Naive sequential baselines (paper Sect. 2, refs [11]).

The simplest compression algorithms ignore any relationship between
neighbouring points beyond, at most, their mutual distance:

* :class:`EveryIth` — keep every i-th data point (Tobler-style numerical
  map generalization);
* :class:`DistanceThreshold` — walk the series and drop a point when it is
  closer than a threshold to the last *kept* point.

The paper notes these are computationally efficient but "frequently
eliminate or misrepresent important points such as sharp angles"; they are
included as the floor of the comparison and for the scaling bench.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core import kernels
from repro.core.base import Compressor, require_positive
from repro.trajectory.ops import every_ith_indices
from repro.trajectory.trajectory import Trajectory

__all__ = ["EveryIth", "DistanceThreshold"]


class EveryIth(Compressor):
    """Keep every ``step``-th data point (plus the final point).

    Args:
        step: decimation factor; ``step=3`` keeps points 0, 3, 6, ...
        engine: accepted for registry uniformity; index decimation has no
            floating-point sweep to vectorize, so both engines share the
            single implementation.
    """

    name = "every-ith"
    online = True

    def __init__(self, *, step: int, engine: str | None = None) -> None:
        if not isinstance(step, (int, np.integer)) or step < 1:
            raise ValueError(f"step must be a positive integer, got {step!r}")
        self.step = int(step)
        self.engine = kernels.resolve_engine(engine)

    def select_indices(self, traj: Trajectory) -> np.ndarray:
        return every_ith_indices(len(traj), self.step)


class DistanceThreshold(Compressor):
    """Drop points within ``epsilon`` of the last retained point.

    A sequential, online baseline: it keeps the first point, then scans
    forward retaining a point only when its Euclidean distance to the most
    recently retained point reaches ``epsilon``. The final point is always
    retained.

    Args:
        epsilon: minimum spacing between retained points, in metres.
        engine: accepted for registry uniformity; the anchor recurrence
            is inherently sequential (each decision depends on the last
            *kept* point), so both engines share the scalar loop.
    """

    name = "distance-threshold"
    online = True

    def __init__(self, *, epsilon: float, engine: str | None = None) -> None:
        self.epsilon = require_positive("epsilon", epsilon)
        self.engine = kernels.resolve_engine(engine)

    def select_indices(self, traj: Trajectory) -> np.ndarray:
        _, x, y = traj.column_lists
        n = len(x)
        keep = [0]
        last_x, last_y = x[0], y[0]
        for i in range(1, n - 1):
            dx = x[i] - last_x
            dy = y[i] - last_y
            if math.sqrt(dx * dx + dy * dy) >= self.epsilon:
                keep.append(i)
                last_x, last_y = x[i], y[i]
        keep.append(n - 1)
        return np.asarray(keep, dtype=int)
