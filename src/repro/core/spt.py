"""The paper's spatiotemporal algorithm class (Sect. 3.3): OPW-SP, TD-SP.

The SP class combines two retention criteria:

* the **time-ratio distance** of Sect. 3.2 against ``max_dist_error``, and
* a **speed-difference test**: a point is retained when the derived speeds
  of its two adjacent segments differ by more than ``max_speed_error``
  (speeds are derived from timestamps and positions, not measured).

Three implementations:

* :func:`spt_paper_indices` — a faithful port of the paper's ``SPT``
  pseudocode (including its restart-the-inner-scan-on-every-window-growth
  behaviour), kept as the executable specification;
* :class:`OPWSP` — the same algorithm expressed through the generic
  opening-window driver with a vectorized scan; the test suite asserts it
  selects *identical* indices to the faithful port;
* :class:`TDSP` — the top-down application of the two criteria, which the
  paper evaluates as TD-SP in Fig. 10 but does not give pseudocode for.
  Our design: a span is split at its worst speed-violating interior point
  when one exists, otherwise at the maximum synchronized-distance point
  when that exceeds the threshold (see DESIGN.md's ablation notes).
"""

from __future__ import annotations

import math

import numpy as np

from repro.core import kernels
from repro.core.base import Compressor, require_positive
from repro.core.douglas_peucker import top_down_indices
from repro.core.opening_window import WindowScanFn, opening_window_indices
from repro.trajectory.trajectory import Trajectory

__all__ = [
    "speed_violations",
    "spt_paper_indices",
    "spatiotemporal_scan",
    "OPWSP",
    "TDSP",
]


def speed_violations(
    traj: Trajectory, max_speed_error: float, engine: str = "numpy"
) -> np.ndarray:
    """Boolean mask over points: speed-difference criterion fires there.

    ``out[i]`` is True when ``|v_i - v_{i-1}| > max_speed_error`` with
    ``v_i`` the derived speed of segment ``(i, i+1)``. Endpoints are never
    marked (they have only one adjacent segment).
    """
    n = len(traj)
    out = np.zeros(n, dtype=bool)
    if n < 3:
        return out
    if engine == "python":
        t, x, y = traj.column_lists
        deltas = kernels.speed_deltas_py(t, x, y)
        out[1:-1] = [delta > max_speed_error for delta in deltas]
    else:
        t, x, y = traj.columns
        out[1:-1] = kernels.speed_deltas(t, x, y) > max_speed_error
    return out


def spt_paper_indices(
    traj: Trajectory, max_dist_error: float, max_speed_error: float
) -> np.ndarray:
    """Faithful port of the paper's ``SPT`` pseudocode (Sect. 3.3).

    Differences from the printed pseudocode are only mechanical: indices
    are 0-based, the tail recursion ``[s[1]] ++ SPT(s[i:], ...)`` is
    unrolled into a loop, and retained *indices* (not points) are
    returned. The sequence of checks — including recomputing every
    interior point's synchronized position each time the window grows — is
    preserved, which makes this the executable specification that
    :class:`OPWSP` is verified against.
    """
    max_dist_error = require_positive("max_dist_error", max_dist_error)
    max_speed_error = require_positive("max_speed_error", max_speed_error)
    t, x, y = traj.column_lists
    n = len(traj)
    keep = [0]
    base = 0
    while n - base > 2:
        violating = -1
        # Paper: e runs over window ends; inner i rescans the window.
        float_end = base + 1
        while float_end <= n - 1 and violating < 0:
            j = base + 1
            while j < float_end and violating < 0:
                ratio = (t[j] - t[base]) / (t[float_end] - t[base])
                sx = x[j] - (x[base] + ratio * (x[float_end] - x[base]))
                sy = y[j] - (y[base] + ratio * (y[float_end] - y[base]))
                sync_dist = math.sqrt(sx * sx + sy * sy)
                px, py = x[j] - x[j - 1], y[j] - y[j - 1]
                v_prev = math.sqrt(px * px + py * py) / (t[j] - t[j - 1])
                nx, ny = x[j + 1] - x[j], y[j + 1] - y[j]
                v_next = math.sqrt(nx * nx + ny * ny) / (t[j + 1] - t[j])
                if sync_dist > max_dist_error or abs(v_next - v_prev) > max_speed_error:
                    violating = j
                else:
                    j += 1
            if violating < 0:
                float_end += 1
        if violating < 0:
            # Whole remaining series fits one segment: keep only its ends.
            keep.append(n - 1)
            return np.asarray(keep, dtype=int)
        keep.append(violating)
        base = violating
    # Paper base case: a series of <= 2 points is returned as-is.
    keep.extend(range(base + 1, n))
    return np.asarray(keep, dtype=int)


def spatiotemporal_scan(
    max_dist_error: float,
    speed_violation_mask: np.ndarray,
    engine: str = "numpy",
) -> WindowScanFn:
    """Window scan combining the SED and speed criteria.

    The speed test depends only on the point, not the window, so callers
    precompute its mask once per trajectory (:func:`speed_violations`) and
    pass it in.

    Args:
        max_dist_error: synchronized distance threshold in metres.
        speed_violation_mask: boolean mask over the trajectory's points,
            True where the speed-difference criterion fires.
        engine: ``"numpy"`` (vectorized sweep) or ``"python"`` (scalar
            reference); both flag the same first violator.
    """
    max_dist_error = require_positive("max_dist_error", max_dist_error)
    mask = np.asarray(speed_violation_mask, dtype=bool)

    if engine == "python":
        mask_list = mask.tolist()

        def scan(traj: Trajectory, anchor: int, float_end: int) -> int:
            t, x, y = traj.column_lists
            distances = kernels.sync_distances_py(t, x, y, anchor, float_end)
            for offset, distance in enumerate(distances):
                if distance > max_dist_error or mask_list[anchor + 1 + offset]:
                    return anchor + 1 + offset
            return -1

    else:

        def scan(traj: Trajectory, anchor: int, float_end: int) -> int:
            t, x, y = traj.columns
            distances = kernels.sync_distances(t, x, y, anchor, float_end)
            bad = (distances > max_dist_error) | mask[anchor + 1 : float_end]
            violating = np.nonzero(bad)[0]
            if violating.size == 0:
                return -1
            return anchor + 1 + int(violating[0])

    return scan


class OPWSP(Compressor):
    """Opening-window spatiotemporal compressor (the paper's OPW-SP).

    Online algorithm; equivalent to the paper's ``SPT`` pseudocode but
    with a batch window scan (identical selected indices, much lower
    constant factor — see the ablation bench).

    Args:
        max_dist_error: synchronized distance threshold in metres.
        max_speed_error: speed-difference threshold in m/s (the paper
            sweeps 5, 15 and 25 m/s).
        engine: ``"numpy"`` (default) or ``"python"``; ``None`` defers to
            the ``REPRO_ENGINE`` environment variable.
    """

    name = "opw-sp"
    online = True

    def __init__(
        self,
        *,
        max_dist_error: float,
        max_speed_error: float,
        engine: str | None = None,
    ) -> None:
        self.max_dist_error = require_positive("max_dist_error", max_dist_error)
        self.max_speed_error = require_positive("max_speed_error", max_speed_error)
        self.engine = kernels.resolve_engine(engine)

    def sync_error_bound(self) -> float:
        """The distance half of the SP criterion bounds the synchronized
        deviation exactly as OPW-TR's does."""
        return self.max_dist_error

    def select_indices(self, traj: Trajectory) -> np.ndarray:
        mask = speed_violations(traj, self.max_speed_error, self.engine)
        scan = spatiotemporal_scan(self.max_dist_error, mask, self.engine)
        return opening_window_indices(traj, scan, "violating")


class TDSP(Compressor):
    """Top-down spatiotemporal compressor (the paper's TD-SP).

    Batch algorithm. A span is split at its worst interior
    speed-difference violation when one exists (so every point where the
    speed profile jumps by more than ``max_speed_error`` is eventually
    retained); spans without speed violations are split exactly like
    TD-TR. The paper evaluates TD-SP but gives no pseudocode; this design
    is the natural top-down application of its two criteria.

    Args:
        max_dist_error: synchronized distance threshold in metres.
        max_speed_error: speed-difference threshold in m/s.
        engine: ``"numpy"`` (default) or ``"python"``; ``None`` defers to
            the ``REPRO_ENGINE`` environment variable.
    """

    name = "td-sp"

    def __init__(
        self,
        *,
        max_dist_error: float,
        max_speed_error: float,
        engine: str | None = None,
    ) -> None:
        self.max_dist_error = require_positive("max_dist_error", max_dist_error)
        self.max_speed_error = require_positive("max_speed_error", max_speed_error)
        self.engine = kernels.resolve_engine(engine)

    def sync_error_bound(self) -> float:
        """Splitting continues while any interior synchronized distance
        exceeds the threshold, so it bounds the result like TD-TR."""
        return self.max_dist_error

    def select_indices(self, traj: Trajectory) -> np.ndarray:
        n = len(traj)
        if self.engine == "python":
            t, x, y = traj.column_lists
            speed_diff = [0.0] * n
            if n >= 3:
                speed_diff[1:-1] = kernels.speed_deltas_py(t, x, y)

            def segment_error(
                tr: Trajectory, start: int, end: int
            ) -> tuple[float, int]:
                worst, offset = kernels.max_with_offset_py(
                    speed_diff[start + 1 : end]
                )
                if worst > self.max_speed_error:
                    # Force a split at the worst speed violator by
                    # reporting an error above any finite threshold.
                    return float("inf"), start + 1 + offset
                error, offset = kernels.max_with_offset_py(
                    kernels.sync_distances_py(t, x, y, start, end)
                )
                return error, start + 1 + offset

        else:
            t, x, y = traj.columns
            speed_diff = np.zeros(n)
            if n >= 3:
                speed_diff[1:-1] = kernels.speed_deltas(t, x, y)

            def segment_error(
                tr: Trajectory, start: int, end: int
            ) -> tuple[float, int]:
                worst, offset = kernels.max_with_offset(
                    speed_diff[start + 1 : end]
                )
                if worst > self.max_speed_error:
                    return float("inf"), start + 1 + offset
                error, offset = kernels.max_with_offset(
                    kernels.sync_distances(t, x, y, start, end)
                )
                return error, start + 1 + offset

        return top_down_indices(traj, self.max_dist_error, segment_error)
