"""The paper's spatiotemporal algorithm class (Sect. 3.3): OPW-SP, TD-SP.

The SP class combines two retention criteria:

* the **time-ratio distance** of Sect. 3.2 against ``max_dist_error``, and
* a **speed-difference test**: a point is retained when the derived speeds
  of its two adjacent segments differ by more than ``max_speed_error``
  (speeds are derived from timestamps and positions, not measured).

Three implementations:

* :func:`spt_paper_indices` — a faithful port of the paper's ``SPT``
  pseudocode (including its restart-the-inner-scan-on-every-window-growth
  behaviour), kept as the executable specification;
* :class:`OPWSP` — the same algorithm expressed through the generic
  opening-window driver with a vectorized scan; the test suite asserts it
  selects *identical* indices to the faithful port;
* :class:`TDSP` — the top-down application of the two criteria, which the
  paper evaluates as TD-SP in Fig. 10 but does not give pseudocode for.
  Our design: a span is split at its worst speed-violating interior point
  when one exists, otherwise at the maximum synchronized-distance point
  when that exceeds the threshold (see DESIGN.md's ablation notes).
"""

from __future__ import annotations

import numpy as np

from repro.core.base import Compressor, deprecated_positional_init, require_positive
from repro.core.douglas_peucker import top_down_indices
from repro.core.opening_window import WindowScanFn, opening_window_indices
from repro.geometry.interpolation import segment_speeds, synchronized_distances
from repro.trajectory.trajectory import Trajectory

__all__ = [
    "speed_violations",
    "spt_paper_indices",
    "spatiotemporal_scan",
    "OPWSP",
    "TDSP",
]


def speed_violations(traj: Trajectory, max_speed_error: float) -> np.ndarray:
    """Boolean mask over points: speed-difference criterion fires there.

    ``out[i]`` is True when ``|v_i - v_{i-1}| > max_speed_error`` with
    ``v_i`` the derived speed of segment ``(i, i+1)``. Endpoints are never
    marked (they have only one adjacent segment).
    """
    n = len(traj)
    out = np.zeros(n, dtype=bool)
    if n < 3:
        return out
    v = segment_speeds(traj.t, traj.xy)
    out[1:-1] = np.abs(np.diff(v)) > max_speed_error
    return out


def spt_paper_indices(
    traj: Trajectory, max_dist_error: float, max_speed_error: float
) -> np.ndarray:
    """Faithful port of the paper's ``SPT`` pseudocode (Sect. 3.3).

    Differences from the printed pseudocode are only mechanical: indices
    are 0-based, the tail recursion ``[s[1]] ++ SPT(s[i:], ...)`` is
    unrolled into a loop, and retained *indices* (not points) are
    returned. The sequence of checks — including recomputing every
    interior point's synchronized position each time the window grows — is
    preserved, which makes this the executable specification that
    :class:`OPWSP` is verified against.
    """
    max_dist_error = require_positive("max_dist_error", max_dist_error)
    max_speed_error = require_positive("max_speed_error", max_speed_error)
    t = traj.t
    xy = traj.xy
    n = len(traj)
    keep = [0]
    base = 0
    while n - base > 2:
        violating = -1
        # Paper: e runs over window ends; inner i rescans the window.
        float_end = base + 1
        while float_end <= n - 1 and violating < 0:
            j = base + 1
            while j < float_end and violating < 0:
                delta_e = t[float_end] - t[base]
                delta_j = t[j] - t[base]
                approx = xy[base] + (xy[float_end] - xy[base]) * (delta_j / delta_e)
                v_prev = (
                    float(np.hypot(*(xy[j] - xy[j - 1]))) / (t[j] - t[j - 1])
                )
                v_next = (
                    float(np.hypot(*(xy[j + 1] - xy[j]))) / (t[j + 1] - t[j])
                )
                sync_dist = float(np.hypot(*(xy[j] - approx)))
                if sync_dist > max_dist_error or abs(v_next - v_prev) > max_speed_error:
                    violating = j
                else:
                    j += 1
            if violating < 0:
                float_end += 1
        if violating < 0:
            # Whole remaining series fits one segment: keep only its ends.
            keep.append(n - 1)
            return np.asarray(keep, dtype=int)
        keep.append(violating)
        base = violating
    # Paper base case: a series of <= 2 points is returned as-is.
    keep.extend(range(base + 1, n))
    return np.asarray(keep, dtype=int)


def spatiotemporal_scan(
    max_dist_error: float, speed_violation_mask: np.ndarray
) -> WindowScanFn:
    """Vectorized window scan combining the SED and speed criteria.

    The speed test depends only on the point, not the window, so callers
    precompute its mask once per trajectory (:func:`speed_violations`) and
    pass it in.

    Args:
        max_dist_error: synchronized distance threshold in metres.
        speed_violation_mask: boolean mask over the trajectory's points,
            True where the speed-difference criterion fires.
    """
    max_dist_error = require_positive("max_dist_error", max_dist_error)
    mask = np.asarray(speed_violation_mask, dtype=bool)

    def scan(traj: Trajectory, anchor: int, float_end: int) -> int:
        distances = synchronized_distances(traj.t, traj.xy, anchor, float_end)
        bad = (distances > max_dist_error) | mask[anchor + 1 : float_end]
        violating = np.nonzero(bad)[0]
        if violating.size == 0:
            return -1
        return anchor + 1 + int(violating[0])

    return scan


class OPWSP(Compressor):
    """Opening-window spatiotemporal compressor (the paper's OPW-SP).

    Online algorithm; equivalent to the paper's ``SPT`` pseudocode but
    with a vectorized window scan (identical selected indices, much lower
    constant factor — see the ablation bench).

    Args:
        max_dist_error: synchronized distance threshold in metres.
        max_speed_error: speed-difference threshold in m/s (the paper
            sweeps 5, 15 and 25 m/s).
    """

    name = "opw-sp"
    online = True

    @deprecated_positional_init
    def __init__(self, *, max_dist_error: float, max_speed_error: float) -> None:
        self.max_dist_error = require_positive("max_dist_error", max_dist_error)
        self.max_speed_error = require_positive("max_speed_error", max_speed_error)

    def sync_error_bound(self) -> float:
        """The distance half of the SP criterion bounds the synchronized
        deviation exactly as OPW-TR's does."""
        return self.max_dist_error

    def select_indices(self, traj: Trajectory) -> np.ndarray:
        mask = speed_violations(traj, self.max_speed_error)
        scan = spatiotemporal_scan(self.max_dist_error, mask)
        return opening_window_indices(traj, scan, "violating")


class TDSP(Compressor):
    """Top-down spatiotemporal compressor (the paper's TD-SP).

    Batch algorithm. A span is split at its worst interior
    speed-difference violation when one exists (so every point where the
    speed profile jumps by more than ``max_speed_error`` is eventually
    retained); spans without speed violations are split exactly like
    TD-TR. The paper evaluates TD-SP but gives no pseudocode; this design
    is the natural top-down application of its two criteria.

    Args:
        max_dist_error: synchronized distance threshold in metres.
        max_speed_error: speed-difference threshold in m/s.
    """

    name = "td-sp"

    @deprecated_positional_init
    def __init__(self, *, max_dist_error: float, max_speed_error: float) -> None:
        self.max_dist_error = require_positive("max_dist_error", max_dist_error)
        self.max_speed_error = require_positive("max_speed_error", max_speed_error)

    def sync_error_bound(self) -> float:
        """Splitting continues while any interior synchronized distance
        exceeds the threshold, so it bounds the result like TD-TR."""
        return self.max_dist_error

    def select_indices(self, traj: Trajectory) -> np.ndarray:
        speed_diff = np.zeros(len(traj))
        if len(traj) >= 3:
            v = segment_speeds(traj.t, traj.xy)
            speed_diff[1:-1] = np.abs(np.diff(v))

        def segment_error(t: Trajectory, start: int, end: int) -> tuple[float, int]:
            interior = speed_diff[start + 1 : end]
            worst = int(np.argmax(interior))
            if interior[worst] > self.max_speed_error:
                # Force a split at the worst speed violator by reporting
                # an error above any finite distance threshold.
                return float("inf"), start + 1 + worst
            distances = synchronized_distances(t.t, t.xy, start, end)
            offset = int(np.argmax(distances))
            return float(distances[offset]), start + 1 + offset

        return top_down_indices(traj, self.max_dist_error, segment_error)
