"""Compressor interface and result type.

Every algorithm in :mod:`repro.core` — the paper's spatiotemporal
contributions and the spatial baselines alike — is a :class:`Compressor`:
a configured, reusable object whose :meth:`~Compressor.compress` maps a
trajectory to a :class:`CompressionResult`. All compressors in this
library are *selective*: they keep a subseries of the original data points
(never inventing new ones), always including the first and last point so
the compressed trajectory covers the original's full time interval — the
counter-measure the paper calls for against opening-window algorithms
losing the series tail (Sect. 2.2).
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.exceptions import CompressionError, ThresholdError
from repro.trajectory.trajectory import Trajectory

__all__ = [
    "Compressor",
    "CompressionResult",
    "require_positive",
]


def require_positive(name: str, value: float) -> float:
    """Validate a strictly positive threshold parameter.

    Raises:
        ThresholdError: when ``value`` is not a finite positive number.
    """
    value = float(value)
    if not np.isfinite(value) or value <= 0.0:
        raise ThresholdError(f"{name} must be a finite positive number, got {value}")
    return value


@dataclass(frozen=True, eq=False)
class CompressionResult:
    """Outcome of compressing one trajectory.

    Attributes:
        original: the input trajectory.
        indices: sorted indices (into the original) of the retained
            points; always starts at 0 and ends at ``len(original) - 1``.
        compressor_name: name of the algorithm that produced the result.

    Results compare by identity (``eq=False``): the numpy ``indices``
    field has no unambiguous element-wise ``==``; compare
    ``result.indices`` explicitly when needed.
    """

    original: Trajectory
    indices: np.ndarray
    compressor_name: str
    _compressed_cache: list = field(default_factory=list, repr=False, compare=False)

    def __post_init__(self) -> None:
        idx = np.asarray(self.indices, dtype=int)
        object.__setattr__(self, "indices", idx)
        n = len(self.original)
        if idx.size == 0:
            raise CompressionError("a compression result must retain >= 1 point")
        if idx[0] != 0 or idx[-1] != n - 1:
            raise CompressionError(
                "retained indices must include the first and last data point"
            )
        if np.any(np.diff(idx) <= 0):
            raise CompressionError("retained indices must be strictly increasing")

    @property
    def compressed(self) -> Trajectory:
        """The compressed trajectory (materialized lazily, then cached)."""
        if not self._compressed_cache:
            self._compressed_cache.append(self.original.subset(self.indices))
        return self._compressed_cache[0]

    @property
    def n_original(self) -> int:
        return len(self.original)

    @property
    def n_kept(self) -> int:
        return int(self.indices.size)

    @property
    def n_removed(self) -> int:
        return self.n_original - self.n_kept

    @property
    def compression_percent(self) -> float:
        """Percent of points removed (the paper's y-axis in Figs. 7–10)."""
        return 100.0 * (1.0 - self.n_kept / self.n_original)

    def __repr__(self) -> str:
        return (
            f"CompressionResult({self.compressor_name}: "
            f"{self.n_original} -> {self.n_kept} points, "
            f"{self.compression_percent:.1f}%)"
        )


class Compressor(abc.ABC):
    """A configured trajectory compression algorithm.

    Subclasses implement :meth:`select_indices`; the base class handles
    the degenerate inputs (series of one or two points are returned
    unchanged — there is nothing to discard) and packages the result.
    """

    #: Short machine name, e.g. ``"td-tr"``; set by each subclass.
    name: str = "abstract"

    #: True when the algorithm can run point-by-point over a stream
    #: (the paper's batch/online distinction, Sect. 2).
    online: bool = False

    def sync_error_bound(self) -> float | None:
        """A priori bound on the result's max synchronized error, if any.

        The paper's third objective is "a data series with known, small
        margins of error"; algorithms whose discard criterion *is* the
        synchronized distance can promise that margin up front (TD-TR,
        OPW-TR, OPW-SP, ...). Returns the bound in metres, or ``None``
        when the algorithm gives no such guarantee (the spatial
        baselines bound only perpendicular distance, which does not
        bound the synchronized deviation).
        """
        return None

    @abc.abstractmethod
    def select_indices(self, traj: Trajectory) -> np.ndarray:
        """Return sorted retained indices for a trajectory of >= 3 points.

        Implementations may assume ``len(traj) >= 3`` and must include
        indices ``0`` and ``len(traj) - 1``.
        """

    def compress(self, traj: Trajectory) -> CompressionResult:
        """Compress ``traj``, returning the retained subseries.

        Trajectories of one or two points are passed through unchanged.

        Every call is observable: per-call wall time and point counts
        are sampled into the ambient :func:`repro.obs.get_registry`
        (a no-op unless observability is enabled), a ``compress``
        tracing span brackets the call when ``REPRO_TRACE=1``, and
        ``REPRO_PROFILE=1`` writes a cProfile snapshot per call.
        """
        n = len(traj)
        registry = obs.get_registry()
        if not registry.enabled and not obs.tracing_enabled() \
                and not obs.profiling_enabled():
            # Fast path: observability fully off costs only these checks.
            if n <= 2:
                indices = np.arange(n)
            else:
                indices = np.asarray(self.select_indices(traj), dtype=int)
            return CompressionResult(traj, indices, self.name)
        with obs.profiled(f"compress-{self.name}"), obs.span(
            "compress", algo=self.name, points=n
        ):
            started = time.perf_counter()
            if n <= 2:
                indices = np.arange(n)
            else:
                indices = np.asarray(self.select_indices(traj), dtype=int)
            elapsed = time.perf_counter() - started
        registry.timer(f"compress.{self.name}.s").observe(elapsed)
        registry.counter("compress_calls").inc()
        registry.counter("compress_points_in").inc(n)
        registry.counter("compress_points_kept").inc(int(indices.size))
        registry.histogram("compress_points_in").observe(n)
        return CompressionResult(traj, indices, self.name)

    def __call__(self, traj: Trajectory) -> CompressionResult:
        return self.compress(traj)

    def __repr__(self) -> str:
        params = ", ".join(
            f"{key}={value!r}"
            for key, value in sorted(vars(self).items())
            if not key.startswith("_")
        )
        return f"{type(self).__name__}({params})"
