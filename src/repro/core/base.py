"""Compressor interface and result type.

Every algorithm in :mod:`repro.core` — the paper's spatiotemporal
contributions and the spatial baselines alike — is a :class:`Compressor`:
a configured, reusable object whose :meth:`~Compressor.compress` maps a
trajectory to a :class:`CompressionResult`. All compressors in this
library are *selective*: they keep a subseries of the original data points
(never inventing new ones), always including the first and last point so
the compressed trajectory covers the original's full time interval — the
counter-measure the paper calls for against opening-window algorithms
losing the series tail (Sect. 2.2).
"""

from __future__ import annotations

import abc
import functools
import inspect
import time
import warnings
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.exceptions import CompressionError, ThresholdError
from repro.trajectory.trajectory import Trajectory

__all__ = [
    "Compressor",
    "CompressionResult",
    "require_positive",
    "deprecated_positional_init",
]


def require_positive(name: str, value: float) -> float:
    """Validate a strictly positive threshold parameter.

    Raises:
        ThresholdError: when ``value`` is not a finite positive number.
    """
    value = float(value)
    if not np.isfinite(value) or value <= 0.0:
        raise ThresholdError(f"{name} must be a finite positive number, got {value}")
    return value


def deprecated_positional_init(init):
    """One-release shim: accept deprecated positional threshold arguments.

    All :class:`Compressor` constructors take their threshold parameters
    keyword-only (``TDTR(epsilon=30.0)``). This decorator wraps such an
    ``__init__`` so legacy positional calls (``TDTR(30.0)``) still work
    for one release, mapping the positionals onto the keyword-only
    parameter names in declaration order and emitting a
    :class:`DeprecationWarning`.
    """
    names = [
        param.name
        for param in inspect.signature(init).parameters.values()
        if param.kind is inspect.Parameter.KEYWORD_ONLY
    ]

    @functools.wraps(init)
    def shim(self, *args, **kwargs):
        if args:
            cls = type(self).__name__
            if len(args) > len(names):
                raise TypeError(
                    f"{cls}() takes at most {len(names)} arguments "
                    f"({len(args)} given)"
                )
            keyword_form = ", ".join(
                f"{name}=..." for name in names[: len(args)]
            )
            warnings.warn(
                f"positional threshold arguments to {cls}() are deprecated "
                f"and will be removed in the next release; "
                f"call {cls}({keyword_form}) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            for name, value in zip(names, args):
                if name in kwargs:
                    raise TypeError(
                        f"{cls}() got multiple values for argument {name!r}"
                    )
                kwargs[name] = value
        return init(self, **kwargs)

    return shim


@dataclass(frozen=True, eq=False)
class CompressionResult:
    """Outcome of compressing one trajectory.

    Attributes:
        original: the input trajectory.
        indices: sorted indices (into the original) of the retained
            points; always starts at 0 and ends at ``len(original) - 1``.
        compressor_name: name of the algorithm that produced the result.

    Results compare by identity (``eq=False``): the numpy ``indices``
    field has no unambiguous element-wise ``==``; compare
    ``result.indices`` explicitly when needed.
    """

    original: Trajectory
    indices: np.ndarray
    compressor_name: str
    _compressed_cache: list = field(default_factory=list, repr=False, compare=False)

    def __post_init__(self) -> None:
        idx = np.asarray(self.indices, dtype=int)
        object.__setattr__(self, "indices", idx)
        n = len(self.original)
        if idx.size == 0:
            raise CompressionError("a compression result must retain >= 1 point")
        if idx[0] != 0 or idx[-1] != n - 1:
            raise CompressionError(
                "retained indices must include the first and last data point"
            )
        if np.any(np.diff(idx) <= 0):
            raise CompressionError("retained indices must be strictly increasing")

    @property
    def compressed(self) -> Trajectory:
        """The compressed trajectory (materialized lazily, then cached)."""
        if not self._compressed_cache:
            self._compressed_cache.append(self.original.subset(self.indices))
        return self._compressed_cache[0]

    @property
    def n_original(self) -> int:
        return len(self.original)

    @property
    def n_kept(self) -> int:
        return int(self.indices.size)

    @property
    def n_removed(self) -> int:
        return self.n_original - self.n_kept

    @property
    def compression_percent(self) -> float:
        """Percent of points removed (the paper's y-axis in Figs. 7–10)."""
        return 100.0 * (1.0 - self.n_kept / self.n_original)

    def __repr__(self) -> str:
        return (
            f"CompressionResult({self.compressor_name}: "
            f"{self.n_original} -> {self.n_kept} points, "
            f"{self.compression_percent:.1f}%)"
        )


class Compressor(abc.ABC):
    """A configured trajectory compression algorithm.

    Subclasses implement :meth:`select_indices`; the base class handles
    the degenerate inputs (series of one or two points are returned
    unchanged — there is nothing to discard) and packages the result.
    """

    #: Short machine name, e.g. ``"td-tr"``; set by each subclass.
    name: str = "abstract"

    #: True when the algorithm can run point-by-point over a stream
    #: (the paper's batch/online distinction, Sect. 2).
    online: bool = False

    def sync_error_bound(self) -> float | None:
        """A priori bound on the result's max synchronized error, if any.

        The paper's third objective is "a data series with known, small
        margins of error"; algorithms whose discard criterion *is* the
        synchronized distance can promise that margin up front (TD-TR,
        OPW-TR, OPW-SP, ...). Returns the bound in metres, or ``None``
        when the algorithm gives no such guarantee (the spatial
        baselines bound only perpendicular distance, which does not
        bound the synchronized deviation).
        """
        return None

    @abc.abstractmethod
    def select_indices(self, traj: Trajectory) -> np.ndarray:
        """Return sorted retained indices for a trajectory of >= 3 points.

        Implementations may assume ``len(traj) >= 3`` and must include
        indices ``0`` and ``len(traj) - 1``.
        """

    def compress(self, traj: Trajectory) -> CompressionResult:
        """Compress ``traj``, returning the retained subseries.

        Trajectories of one or two points are passed through unchanged.

        Every call is observable: per-call wall time and point counts
        are sampled into the ambient :func:`repro.obs.get_registry`
        (a no-op unless observability is enabled), a ``compress``
        tracing span brackets the call when ``REPRO_TRACE=1``, and
        ``REPRO_PROFILE=1`` writes a cProfile snapshot per call.
        """
        n = len(traj)
        registry = obs.get_registry()
        if not registry.enabled and not obs.tracing_enabled() \
                and not obs.profiling_enabled():
            # Fast path: observability fully off costs only these checks.
            if n <= 2:
                indices = np.arange(n)
            else:
                indices = np.asarray(self.select_indices(traj), dtype=int)
            return CompressionResult(traj, indices, self.name)
        with obs.profiled(f"compress-{self.name}"), obs.span(
            "compress", algo=self.name, points=n
        ):
            started = time.perf_counter()
            if n <= 2:
                indices = np.arange(n)
            else:
                indices = np.asarray(self.select_indices(traj), dtype=int)
            elapsed = time.perf_counter() - started
        registry.timer(f"compress.{self.name}.s").observe(elapsed)
        registry.counter("compress_calls").inc()
        registry.counter("compress_points_in").inc(n)
        registry.counter("compress_points_kept").inc(int(indices.size))
        registry.histogram("compress_points_in").observe(n)
        return CompressionResult(traj, indices, self.name)

    def __call__(self, traj: Trajectory) -> CompressionResult:
        return self.compress(traj)

    def __repr__(self) -> str:
        params = ", ".join(
            f"{key}={value!r}"
            for key, value in sorted(vars(self).items())
            if not key.startswith("_")
        )
        return f"{type(self).__name__}({params})"
