"""One-pass error-bounded SED compression (OPERB- and CISED-style).

The opening-window algorithms re-scan their open window on every new
fix, which makes the worst case quadratic. The one-pass literature
(OPERB, arXiv:1702.05597; CISED, arXiv:1801.05360) removes the re-scan
by tracking a *feasibility region in velocity space*: the synchronized
distance of a dropped point ``j`` under a chord leaving the anchor ``A``
with end velocity ``v`` is ``dt_j * |v - c_j|`` with
``c_j = (P_j - A) / dt_j``, so ``SED_j <= epsilon`` exactly when ``v``
lies in the disc of center ``c_j`` and radius ``epsilon / dt_j``. A
candidate end point is acceptable iff its own velocity ``c_i`` lies in
the intersection of the discs of every point dropped so far — a region
each algorithm maintains in O(1) space:

* :class:`RectangleRegion` (our OPERB adaptation) intersects the
  *inscribed axis-aligned squares* of the discs, keeping an exact
  axis-aligned rectangle — four floats, constant-time updates. This is
  OPERB's one-pass directed-bound idea transplanted from perpendicular
  to synchronized distance, so it is directly comparable to OPW-TR.
* :class:`PolygonRegion` (CISED-style) intersects *inscribed regular
  m-gons*. Every inscribed m-gon uses the same ``m`` outward normal
  directions, so the running intersection is always the region cut by
  those ``m`` half-planes — ``m`` offsets, updated with ``m`` minimums
  per clip. A tighter under-approximation of the true disc
  intersection (CISED's spatiotemporal cone) than the rectangle, so it
  drops more points for the same bound.

Both regions under-approximate the exact disc intersection, which can
only cost compression, never the epsilon guarantee: any accepted end
velocity lies inside every dropped point's disc. The streaming forms in
:mod:`repro.streaming.one_pass` run the identical state machine push-by-
push; the batch classes here replay it over a stored trajectory (with
the same floating-point expressions via :func:`repro.core.kernels
.sync_circles` / ``sync_circles_py``), so streaming and batch — and both
execution engines — select identical indices.
"""

from __future__ import annotations

import math
from typing import Callable, Protocol

import numpy as np

from repro.core import kernels
from repro.core.base import Compressor, require_positive
from repro.trajectory.trajectory import Trajectory

__all__ = [
    "OPERB",
    "CISED",
    "RectangleRegion",
    "PolygonRegion",
    "one_pass_indices",
]

#: Half-side of the axis-aligned square inscribed in a unit disc.
_SQUARE_HALF = math.sqrt(0.5)

#: Points per vectorized :func:`repro.core.kernels.sync_circles` call in
#: the numpy batch replay.
_BLOCK = 64


class FeasibleRegion(Protocol):
    """Velocity-space region protocol shared by the one-pass algorithms."""

    def contains(self, px: float, py: float) -> bool: ...

    def clip(self, cx: float, cy: float, r: float) -> None: ...

    @property
    def state_size(self) -> int: ...


class RectangleRegion:
    """Axis-aligned rectangle under-approximating a disc intersection.

    Initialized to the inscribed square of one disc; each :meth:`clip`
    intersects with another disc's inscribed square. Exact (the
    intersection of axis-aligned rectangles is a rectangle), O(1) state:
    four floats. An empty region is represented by inverted bounds,
    which makes :meth:`contains` vacuously false.
    """

    __slots__ = ("min_x", "min_y", "max_x", "max_y")

    def __init__(self, cx: float, cy: float, r: float) -> None:
        h = r * _SQUARE_HALF
        self.min_x = cx - h
        self.max_x = cx + h
        self.min_y = cy - h
        self.max_y = cy + h

    def contains(self, px: float, py: float) -> bool:
        """True iff ``(px, py)`` lies in the rectangle (empty → False)."""
        return (
            self.min_x <= px <= self.max_x and self.min_y <= py <= self.max_y
        )

    def clip(self, cx: float, cy: float, r: float) -> None:
        """Intersect with the inscribed square of disc ``(cx, cy, r)``."""
        h = r * _SQUARE_HALF
        self.min_x = max(self.min_x, cx - h)
        self.max_x = min(self.max_x, cx + h)
        self.min_y = max(self.min_y, cy - h)
        self.max_y = min(self.max_y, cy + h)

    @property
    def state_size(self) -> int:
        """Number of floats held — constant by construction."""
        return 4


def _polygon_normals(m: int) -> tuple[tuple[float, float], ...]:
    """Outward edge normals of the inscribed regular ``m``-gon, cached.

    The inscribed ``m``-gon of *any* disc ``(c, r)`` has edges with
    outward normal at angle ``(2k+1)*pi/m`` and offset
    ``n_k . c + r*cos(pi/m)`` — the normal directions do not depend on
    the disc, only on ``m``.
    """
    normals = _NORMALS_CACHE.get(m)
    if normals is None:
        step = math.pi / m
        normals = tuple(
            (math.cos((2 * k + 1) * step), math.sin((2 * k + 1) * step))
            for k in range(m)
        )
        _NORMALS_CACHE[m] = normals
    return normals


_NORMALS_CACHE: dict[int, tuple[tuple[float, float], ...]] = {}


class PolygonRegion:
    """Intersection of inscribed regular ``m``-gons as half-plane offsets.

    Every inscribed ``m``-gon shares the same ``m`` outward normal
    directions (angle ``(2k+1)*pi/m``), so the running intersection is
    *exactly* ``{v : n_k . v <= d_k}`` for ``m`` scalar offsets
    ``d_k`` — intersecting a further disc's inscribed ``m``-gon is
    ``m`` minimum updates (``d_k = min(d_k, n_k . c + r*cos(pi/m))``)
    and membership is ``m`` dot products. No vertex bookkeeping, no
    clipping loss: ``m`` floats of state, O(m) per operation, and the
    represented region is the exact ``m``-gon intersection (an empty
    region simply makes :meth:`contains` false for every point).
    """

    __slots__ = ("m", "_normals", "_apothem_scale", "_offsets")

    def __init__(self, cx: float, cy: float, r: float, m: int = 16) -> None:
        self.m = m
        self._normals = _polygon_normals(m)
        self._apothem_scale = math.cos(math.pi / m)
        apothem = r * self._apothem_scale
        self._offsets = [
            nx * cx + ny * cy + apothem for nx, ny in self._normals
        ]

    def contains(self, px: float, py: float) -> bool:
        """True iff ``(px, py)`` satisfies all ``m`` half-planes
        (an empty region satisfies none → False)."""
        for (nx, ny), d in zip(self._normals, self._offsets):
            if nx * px + ny * py > d:
                return False
        return True

    def clip(self, cx: float, cy: float, r: float) -> None:
        """Intersect with the inscribed ``m``-gon of disc ``(cx, cy, r)``
        — ``m`` offset minimums, exact in this representation."""
        apothem = r * self._apothem_scale
        offsets = self._offsets
        for k, (nx, ny) in enumerate(self._normals):
            d = nx * cx + ny * cy + apothem
            if d < offsets[k]:
                offsets[k] = d

    @property
    def state_size(self) -> int:
        """Number of floats held — exactly ``m``, constant for the life
        of the region."""
        return self.m


def one_pass_indices(
    n: int,
    circle: Callable[[int, int], tuple[float, float, float]],
    region_factory: Callable[[float, float, float], FeasibleRegion],
) -> np.ndarray:
    """Replay the one-pass state machine over ``n`` stored points.

    ``circle(anchor, i)`` returns the velocity-space disc ``(cx, cy, r)``
    of point ``i`` relative to ``anchor``. The machine mirrors the
    streaming compressors fix for fix: every point becomes the buffered
    candidate end; a candidate whose velocity falls outside the current
    feasibility region closes the previous candidate's segment and
    re-anchors there.
    """
    kept = [0]
    anchor = 0
    last = -1
    region: FeasibleRegion | None = None
    for i in range(1, n):
        cx, cy, r = circle(anchor, i)
        if last < 0:
            region = region_factory(cx, cy, r)
        elif region is not None and region.contains(cx, cy):
            region.clip(cx, cy, r)
        else:
            kept.append(last)
            anchor = last
            cx, cy, r = circle(anchor, i)
            region = region_factory(cx, cy, r)
        last = i
    kept.append(n - 1)
    return np.asarray(kept, dtype=int)


def _make_circle_fn(
    traj: Trajectory, epsilon: float, engine: str
) -> Callable[[int, int], tuple[float, float, float]]:
    """Per-point disc parameters, engine-matched to the kernel mirrors.

    The python engine evaluates :func:`~repro.core.kernels
    .sync_circles_py` point by point; the numpy engine batches
    :func:`~repro.core.kernels.sync_circles` over blocks of ``_BLOCK``
    points, refilled on anchor change or range miss — at most two block
    computations per index, keeping the replay O(n). Both engines
    evaluate the same floating-point expressions, so the selected
    indices are bit-identical.
    """
    n = len(traj)
    if engine == "python":
        t, x, y = traj.column_lists

        def circle(anchor: int, i: int) -> tuple[float, float, float]:
            return kernels.sync_circles_py(t, x, y, anchor, i, i + 1, epsilon)[0]

        return circle

    ta, xa, ya = traj.columns
    cache: dict[str, object] = {"anchor": -1, "start": 0, "end": 0}

    def circle(anchor: int, i: int) -> tuple[float, float, float]:
        if anchor != cache["anchor"] or not (cache["start"] <= i < cache["end"]):
            end = min(n, i + _BLOCK)
            cx, cy, r = kernels.sync_circles(ta, xa, ya, anchor, i, end, epsilon)
            cache.update(anchor=anchor, start=i, end=end, cx=cx, cy=cy, r=r)
        off = i - cache["start"]  # type: ignore[operator]
        return (
            float(cache["cx"][off]),  # type: ignore[index]
            float(cache["cy"][off]),  # type: ignore[index]
            float(cache["r"][off]),  # type: ignore[index]
        )

    return circle


class OPERB(Compressor):
    """One-pass error-bounded SED compressor (OPERB adaptation).

    Online algorithm, O(n) time and O(1) working state per trajectory:
    the feasibility region is an axis-aligned rectangle (four floats)
    intersecting the inscribed squares of the velocity-space discs —
    OPERB's one-pass directed-bound idea carried from perpendicular to
    synchronized distance. The max synchronized error of every discarded
    point is bounded by ``epsilon``; the square under-approximation
    costs some compression relative to the exact disc intersection.

    Args:
        epsilon: synchronized distance threshold in metres.
        engine: ``"numpy"`` (default) or ``"python"``; ``None`` defers to
            the ``REPRO_ENGINE`` environment variable.
    """

    name = "operb"
    online = True

    def __init__(self, *, epsilon: float, engine: str | None = None) -> None:
        self.epsilon = require_positive("epsilon", epsilon)
        self.engine = kernels.resolve_engine(engine)

    def sync_error_bound(self) -> float:
        """Accepted end velocities stay inside every dropped point's
        disc, so epsilon bounds the max synchronized error."""
        return self.epsilon

    def select_indices(self, traj: Trajectory) -> np.ndarray:
        circle = _make_circle_fn(traj, self.epsilon, self.engine)
        return one_pass_indices(len(traj), circle, RectangleRegion)


class CISED(Compressor):
    """One-pass SED compressor with a polygonal cone (CISED-style).

    Online algorithm, O(n * m) time and O(1) working state: the
    feasibility region is the intersection of inscribed regular
    ``m``-gons of the velocity-space discs, held as ``m`` half-plane
    offsets — CISED's spatiotemporal-cone intersection in its
    strong-simplification form. A larger ``m`` approximates the exact
    disc intersection more tightly (better compression) at
    proportionally higher per-fix cost.

    Args:
        epsilon: synchronized distance threshold in metres.
        m: polygon edge count per disc (>= 3; default 16).
        engine: ``"numpy"`` (default) or ``"python"``; ``None`` defers to
            the ``REPRO_ENGINE`` environment variable.
    """

    name = "cised"
    online = True

    def __init__(
        self, *, epsilon: float, m: int = 16, engine: str | None = None
    ) -> None:
        self.epsilon = require_positive("epsilon", epsilon)
        self.m = int(m)
        if self.m < 3:
            raise ValueError(f"m must be >= 3, got {m}")
        self.engine = kernels.resolve_engine(engine)

    def sync_error_bound(self) -> float:
        """Accepted end velocities stay inside every dropped point's
        disc, so epsilon bounds the max synchronized error."""
        return self.epsilon

    def select_indices(self, traj: Trajectory) -> np.ndarray:
        circle = _make_circle_fn(traj, self.epsilon, self.engine)
        m = self.m

        def factory(cx: float, cy: float, r: float) -> PolygonRegion:
            return PolygonRegion(cx, cy, r, m)

        return one_pass_indices(len(traj), circle, factory)
