"""Budget-driven halting conditions (paper Sect. 2).

The paper lists three possible halting conditions for compression
algorithms:

1. *the maximum error for a segment exceeds a user-defined threshold* —
   that is what every ``epsilon`` compressor in this package implements;
2. *the number of data points exceeds a user-defined value* —
   implemented here as :class:`TDTRBudget` (best-first top-down splitting
   until the point budget is filled) and :class:`BottomUpBudget`
   (cheapest-first merging until only the budget remains);
3. *the sum of the errors of all segments exceeds a user-defined
   threshold* — implemented as :class:`BottomUpTotalError`, which merges
   greedily while the whole approximation's time-weighted mean
   synchronized error (the paper's α, Sect. 4.2) stays within budget.

Point-budget compression is what a fixed-size storage page or a fixed
transmission quota needs; total-error budgeting is the natural knob when
an application can say "stay within 10 m on average" but has no per-point
intuition.
"""

from __future__ import annotations

import heapq
import math
from functools import partial

import numpy as np

from repro.core import kernels
from repro.core.base import Compressor, require_positive
from repro.core.douglas_peucker import perpendicular_segment_error
from repro.core.td_tr import synchronized_segment_error
from repro.trajectory.trajectory import Trajectory

__all__ = ["TDTRBudget", "BottomUpBudget", "BottomUpTotalError"]

_CRITERIA = ("perpendicular", "synchronized")


def _segment_error_fn(criterion: str, engine: str = "numpy"):
    if criterion == "perpendicular":
        return partial(perpendicular_segment_error, engine=engine)
    return partial(synchronized_segment_error, engine=engine)


class TDTRBudget(Compressor):
    """Best-first top-down splitting to an exact point budget.

    Starts from the endpoint chord and repeatedly splits the span whose
    maximum error is largest — the classic DP variant for the paper's
    "number of data points exceeds a user-defined value" halting
    condition. With the synchronized criterion (default) this is the
    budgeted TD-TR; with the perpendicular one, budgeted NDP.

    The result has exactly ``min(budget, len(trajectory))`` points
    (splitting stops early only when every remaining span is error-free).

    Args:
        budget: number of points to keep (``>= 2``).
        criterion: ``"synchronized"`` (default) or ``"perpendicular"``.
        engine: ``"numpy"`` (default) or ``"python"``; ``None`` defers to
            the ``REPRO_ENGINE`` environment variable.
    """

    name = "td-tr-budget"

    def __init__(
        self,
        *,
        budget: int,
        criterion: str = "synchronized",
        engine: str | None = None,
    ) -> None:
        if not isinstance(budget, (int, np.integer)) or budget < 2:
            raise ValueError(f"budget must be an integer >= 2, got {budget!r}")
        if criterion not in _CRITERIA:
            raise ValueError(f"unknown criterion {criterion!r}; use one of {_CRITERIA}")
        self.budget = int(budget)
        self.criterion = criterion
        self.engine = kernels.resolve_engine(engine)

    def select_indices(self, traj: Trajectory) -> np.ndarray:
        n = len(traj)
        if self.budget >= n:
            return np.arange(n)
        segment_error = _segment_error_fn(self.criterion, self.engine)
        keep = {0, n - 1}
        # Max-heap on error (negated); ties broken deterministically by
        # span start for reproducible output.
        heap: list[tuple[float, int, int, int]] = []

        def push(start: int, end: int) -> None:
            if end - start < 2:
                return
            error, cut = segment_error(traj, start, end)
            if error > 0.0:
                heapq.heappush(heap, (-error, start, end, cut))

        push(0, n - 1)
        while heap and len(keep) < self.budget:
            _, start, end, cut = heapq.heappop(heap)
            keep.add(cut)
            push(start, cut)
            push(cut, end)
        return np.asarray(sorted(keep), dtype=int)


class BottomUpBudget(Compressor):
    """Cheapest-first bottom-up merging to an exact point budget.

    Starts from the full series and repeatedly removes the interior
    point whose removal introduces the smallest maximum error, until only
    ``budget`` points remain. The dual of :class:`TDTRBudget`; usually a
    little better at equal budget because merges are chosen globally.

    Args:
        budget: number of points to keep (``>= 2``).
        criterion: ``"synchronized"`` (default) or ``"perpendicular"``.
        engine: ``"numpy"`` (default) or ``"python"``; ``None`` defers to
            the ``REPRO_ENGINE`` environment variable.
    """

    name = "bottom-up-budget"

    def __init__(
        self,
        *,
        budget: int,
        criterion: str = "synchronized",
        engine: str | None = None,
    ) -> None:
        if not isinstance(budget, (int, np.integer)) or budget < 2:
            raise ValueError(f"budget must be an integer >= 2, got {budget!r}")
        if criterion not in _CRITERIA:
            raise ValueError(f"unknown criterion {criterion!r}; use one of {_CRITERIA}")
        self.budget = int(budget)
        self.criterion = criterion
        self.engine = kernels.resolve_engine(engine)

    def _merge_cost(self, traj: Trajectory, start: int, end: int) -> float:
        segment_error = _segment_error_fn(self.criterion, self.engine)
        if end - start < 2:
            return 0.0
        error, _ = segment_error(traj, start, end)
        return error

    def select_indices(self, traj: Trajectory) -> np.ndarray:
        n = len(traj)
        if self.budget >= n:
            return np.arange(n)
        prev = np.arange(-1, n - 1)
        nxt = np.arange(1, n + 1)
        alive = np.ones(n, dtype=bool)
        heap: list[tuple[float, int, int, int]] = []
        for mid in range(1, n - 1):
            heapq.heappush(
                heap, (self._merge_cost(traj, mid - 1, mid + 1), mid, mid - 1, mid + 1)
            )
        remaining = n
        while heap and remaining > self.budget:
            _, mid, left, right = heapq.heappop(heap)
            if not alive[mid] or prev[mid] != left or nxt[mid] != right:
                continue
            if not (alive[left] and alive[right]):
                continue
            alive[mid] = False
            remaining -= 1
            nxt[left] = right
            prev[right] = left
            if left > 0:
                heapq.heappush(
                    heap,
                    (self._merge_cost(traj, prev[left], right), left, prev[left], right),
                )
            if right < n - 1:
                heapq.heappush(
                    heap,
                    (self._merge_cost(traj, left, nxt[right]), right, left, nxt[right]),
                )
        return np.nonzero(alive)[0]


class BottomUpTotalError(Compressor):
    """Merge greedily while the *whole* approximation's α stays in budget.

    The paper's third halting condition: "the sum of the errors of all
    segments exceeds a user-defined threshold". We make "sum of errors"
    precise using the paper's own Sect. 4.2 notion: the time-weighted
    mean synchronized error α(p, a) of the approximation against the
    original. Interior points are removed cheapest-first (smallest
    increase in the total error integral); compression stops when no
    removal keeps α within ``max_mean_error``.

    Args:
        max_mean_error: budget for the approximation's mean synchronized
            error, in metres.
        engine: ``"numpy"`` (default) or ``"python"``; ``None`` defers to
            the ``REPRO_ENGINE`` environment variable. Both engines
            compute bitwise-equal span integrals (the batch α kernel
            mirrors the scalar one, and ``math.fsum`` makes the weighted
            sum order-independent), hence the same merge order.
    """

    name = "bottom-up-total-error"

    def __init__(
        self, *, max_mean_error: float, engine: str | None = None
    ) -> None:
        self.max_mean_error = require_positive("max_mean_error", max_mean_error)
        self.engine = kernels.resolve_engine(engine)

    def _span_integral(self, traj: Trajectory, start: int, end: int) -> float:
        """Error integral of one approx segment over its original span.

        ``∫ dist(loc(p, t), chord(t)) dt`` over ``[t_start, t_end]``,
        evaluated with the closed form per original sub-segment; the
        difference vector is linear on each because the chord and the
        original are both linear there.
        """
        if end - start < 2:
            return 0.0
        if self.engine == "python":
            # Deferred import: repro.error.synchronized needs the batch
            # kernels, so a module-level import here would be circular.
            from repro.error.synchronized import segment_mean_distance

            t, x, y = traj.column_lists
            ts = t[start]
            delta_e = t[end] - ts
            xs, ys = x[start], y[start]
            ex, ey = x[end] - xs, y[end] - ys
            deltas = []
            for i in range(start, end + 1):
                ratio = (t[i] - ts) / delta_e
                deltas.append(
                    (x[i] - (xs + ratio * ex), y[i] - (ys + ratio * ey))
                )
            return math.fsum(
                (t[start + i + 1] - t[start + i])
                * segment_mean_distance(deltas[i], deltas[i + 1])
                for i in range(end - start)
            )
        t, x, y = traj.columns
        ts = t[start]
        delta_e = t[end] - ts
        span = slice(start, end + 1)
        ratio = (t[span] - ts) / delta_e
        dx = x[span] - (x[start] + ratio * (x[end] - x[start]))
        dy = y[span] - (y[start] + ratio * (y[end] - y[start]))
        deltas = np.column_stack((dx, dy))
        alphas = kernels.segment_mean_distances(deltas[:-1], deltas[1:])
        weights = t[start + 1 : end + 1] - t[start:end]
        return math.fsum((weights * alphas).tolist())

    def select_indices(self, traj: Trajectory) -> np.ndarray:
        n = len(traj)
        duration = traj.end_time - traj.start_time
        if duration <= 0.0:
            return np.arange(n)
        error_budget = self.max_mean_error * duration  # total integral budget
        prev = np.arange(-1, n - 1)
        nxt = np.arange(1, n + 1)
        alive = np.ones(n, dtype=bool)
        # Current error integral per live segment, keyed by start index.
        segment_integral = {i: 0.0 for i in range(n - 1)}
        total_integral = 0.0
        heap: list[tuple[float, int, int, int]] = []

        def push_candidate(mid: int) -> None:
            left, right = int(prev[mid]), int(nxt[mid])
            merged = self._span_integral(traj, left, right)
            increase = merged - segment_integral[left] - segment_integral[mid]
            heapq.heappush(heap, (increase, mid, left, right))

        for mid in range(1, n - 1):
            push_candidate(mid)
        while heap:
            increase, mid, left, right = heapq.heappop(heap)
            if not alive[mid] or prev[mid] != left or nxt[mid] != right:
                continue
            if total_integral + increase > error_budget:
                # Increases are not monotone across candidates after
                # rewiring, but stale entries were re-pushed; the
                # cheapest valid candidate exceeding budget means every
                # other valid candidate does too.
                break
            merged_integral = self._span_integral(traj, left, right)
            total_integral += merged_integral - segment_integral[left] - segment_integral[mid]
            alive[mid] = False
            nxt[left] = right
            prev[right] = left
            segment_integral[left] = merged_integral
            del segment_integral[mid]
            if left > 0:
                push_candidate(left)
            if right < n - 1:
                push_candidate(right)
        return np.nonzero(alive)[0]
