"""OPW-TR: opening-window time-ratio compression (paper Sect. 3.2).

The opening-window driver of Sect. 2.2 with the discard criterion replaced
by the time-ratio (synchronized) distance of Eqs. 1–2 — the online member
of the paper's *time ratio* algorithm class. The paper's experiments
(Fig. 9) show its error is both far lower than NOPW's and nearly flat in
the threshold, which lets applications pick generous thresholds for better
compression without losing much accuracy.
"""

from __future__ import annotations

import numpy as np

from repro.core import kernels
from repro.core.base import Compressor, require_positive
from repro.core.opening_window import (
    BreakStrategy,
    WindowScanFn,
    opening_window_indices,
)
from repro.trajectory.trajectory import Trajectory

__all__ = ["synchronized_scan", "OPWTR"]


def synchronized_scan(threshold: float, engine: str = "numpy") -> WindowScanFn:
    """Window scan testing time-ratio distance to the anchor–float chord."""
    threshold = require_positive("threshold", threshold)

    if engine == "python":

        def scan(traj: Trajectory, anchor: int, float_end: int) -> int:
            t, x, y = traj.column_lists
            offset = kernels.first_above_py(
                kernels.sync_distances_py(t, x, y, anchor, float_end), threshold
            )
            return -1 if offset < 0 else anchor + 1 + offset

    else:

        def scan(traj: Trajectory, anchor: int, float_end: int) -> int:
            t, x, y = traj.columns
            offset = kernels.first_above(
                kernels.sync_distances(t, x, y, anchor, float_end), threshold
            )
            return -1 if offset < 0 else anchor + 1 + offset

    return scan


class OPWTR(Compressor):
    """Opening-window time-ratio compressor (the paper's OPW-TR).

    Online algorithm. With the default NOPW-style break point the
    synchronized deviation of every discarded point from the final
    approximation is bounded by ``epsilon`` (each emitted segment was
    fully validated when its end point was the window float).

    Args:
        epsilon: synchronized distance threshold in metres.
        strategy: break-point choice, ``"violating"`` (paper default) or
            ``"before-float"`` for the BOPW-style variant.
        engine: ``"numpy"`` (default) or ``"python"``; ``None`` defers to
            the ``REPRO_ENGINE`` environment variable.
    """

    name = "opw-tr"
    online = True

    def __init__(
        self,
        *,
        epsilon: float,
        strategy: BreakStrategy = "violating",
        engine: str | None = None,
    ) -> None:
        self.epsilon = require_positive("epsilon", epsilon)
        self.strategy = strategy
        self.engine = kernels.resolve_engine(engine)

    def sync_error_bound(self) -> float:
        """Each emitted segment was fully validated against its own chord
        when its end point was the window float, so epsilon bounds the
        max synchronized error (under either break strategy)."""
        return self.epsilon

    def select_indices(self, traj: Trajectory) -> np.ndarray:
        return opening_window_indices(
            traj, synchronized_scan(self.epsilon, self.engine), self.strategy
        )
