"""Angular-change baseline (paper Sect. 2, Jenks [14]).

Straight stretches are over-represented by the naive sequential baselines;
Jenks' remedy thresholds on the *angular change* between each three
consecutive data points: a point on a near-straight run is droppable, a
point at a sharp turn must stay.

This implementation combines the angular criterion with a minimum-spacing
criterion (both thresholds optional), matching the paper's remark that
small angle differences can be "used as another discarding condition" on
top of distance-based elimination.
"""

from __future__ import annotations

import numpy as np

from repro.core import kernels
from repro.core.base import Compressor, require_positive
from repro.trajectory.trajectory import Trajectory

__all__ = ["AngularChange"]


class AngularChange(Compressor):
    """Retain points whose local turning angle exceeds a threshold.

    Jenks' criterion examines "the angular change between each three
    consecutive data points": a point where the trace turns by more than
    ``max_angle_rad`` (measured between its incoming and outgoing original
    segments) is a critical point and is retained; points on near-straight
    runs are discarded. An optional ``max_gap_m`` keeps occasional anchor
    points on long straight runs so the approximation cannot drift
    arbitrarily far from a noisy-but-straight trace.

    Args:
        max_angle_rad: angular-change threshold in radians, in
            ``(0, pi]``.
        max_gap_m: optional spatial cap on how far apart retained points
            may be; ``None`` disables it.
        engine: accepted for registry uniformity; the last-kept-point
            recurrence is inherently sequential, so both engines share
            the single implementation.
    """

    name = "angular"
    online = True

    def __init__(
        self,
        *,
        max_angle_rad: float,
        max_gap_m: float | None = None,
        engine: str | None = None,
    ) -> None:
        self.engine = kernels.resolve_engine(engine)
        self.max_angle_rad = require_positive("max_angle_rad", max_angle_rad)
        if self.max_angle_rad > np.pi:
            raise ValueError(
                f"max_angle_rad must be at most pi, got {self.max_angle_rad}"
            )
        self.max_gap_m = (
            None if max_gap_m is None else require_positive("max_gap_m", max_gap_m)
        )

    def select_indices(self, traj: Trajectory) -> np.ndarray:
        n = len(traj)
        step = np.diff(traj.xy, axis=0)
        lengths = np.hypot(step[:, 0], step[:, 1])
        headings = np.arctan2(step[:, 1], step[:, 0])
        keep = [0]
        last_kept = 0
        for i in range(1, n - 1):
            # Turning angle at point i between segments (i-1, i) and
            # (i, i+1); a zero-length segment carries no direction, so the
            # point cannot register a turn.
            if lengths[i - 1] == 0.0 or lengths[i] == 0.0:
                turned = 0.0
            else:
                diff = headings[i] - headings[i - 1]
                turned = abs((diff + np.pi) % (2.0 * np.pi) - np.pi)
            gap = float(np.hypot(*(traj.xy[i] - traj.xy[last_kept])))
            too_far = self.max_gap_m is not None and gap > self.max_gap_m
            if turned > self.max_angle_rad or too_far:
                keep.append(i)
                last_kept = i
        keep.append(n - 1)
        return np.asarray(keep, dtype=int)
