"""Name-based compressor construction and the compressor-spec grammar.

The experiment harness, the benchmarks and the examples refer to
algorithms by the short names the paper uses (``ndp``, ``td-tr``,
``opw-sp``...). :func:`make_compressor` turns such a name plus parameters
into a configured :class:`~repro.core.base.Compressor`.

Algorithm and parameters can also travel as one value — a *spec string*::

    name[:key=value[,key=value...]]

e.g. ``"td-tr:epsilon=30"`` or ``"opw-sp:epsilon=30,speed=5"``. Values
are coerced to ``int``, ``float`` or ``bool`` when they look like one,
and are kept as strings otherwise — which is how the execution engine
travels in a spec: ``"td-tr:epsilon=30,engine=python"`` (every
registered compressor accepts ``engine``; see
:mod:`repro.core.kernels`). A few
convenience aliases mirror the CLI's flag names: ``epsilon`` and
``speed`` map onto ``max_dist_error`` / ``max_speed_error`` for the SP
algorithms, ``epsilon`` onto ``max_mean_error`` for
``bottom-up-total-error``, and ``angle`` onto ``max_angle_rad``.
:func:`parse_compressor_spec` parses the grammar into a
:class:`CompressorSpec`; :func:`make_compressor` accepts either form.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.angular import AngularChange
from repro.core.base import Compressor
from repro.core.bottom_up import BottomUp
from repro.core.budget import BottomUpBudget, BottomUpTotalError, TDTRBudget
from repro.core.dead_reckoning import DeadReckoning
from repro.core.douglas_peucker import DouglasPeucker
from repro.core.one_pass import CISED, OPERB
from repro.core.opening_window import BOPW, NOPW
from repro.core.opw_tr import OPWTR
from repro.core.sliding_window import SlidingWindow
from repro.core.spt import OPWSP, TDSP
from repro.core.td_tr import TDTR
from repro.core.uniform import DistanceThreshold, EveryIth
from repro.exceptions import CompressorSpecError, UnknownCompressorError

__all__ = [
    "COMPRESSORS",
    "CompressorSpec",
    "make_compressor",
    "parse_compressor_spec",
    "available_compressors",
]

#: Registry of constructors keyed by the paper's algorithm names.
COMPRESSORS: dict[str, Callable[..., Compressor]] = {
    "ndp": DouglasPeucker,
    "td-tr": TDTR,
    "nopw": NOPW,
    "bopw": BOPW,
    "opw-tr": OPWTR,
    "opw-sp": OPWSP,
    "operb": OPERB,
    "cised": CISED,
    "td-sp": TDSP,
    "every-ith": EveryIth,
    "distance-threshold": DistanceThreshold,
    "angular": AngularChange,
    "sliding-window": SlidingWindow,
    "bottom-up": BottomUp,
    "td-tr-budget": TDTRBudget,
    "bottom-up-budget": BottomUpBudget,
    "bottom-up-total-error": BottomUpTotalError,
    "dead-reckoning": DeadReckoning,
}

#: Per-algorithm parameter aliases, mirroring the CLI's flag names.
_PARAM_ALIASES: dict[str, dict[str, str]] = {
    "opw-sp": {"epsilon": "max_dist_error", "speed": "max_speed_error"},
    "td-sp": {"epsilon": "max_dist_error", "speed": "max_speed_error"},
    "operb": {"max_dist_error": "epsilon"},
    "cised": {"max_dist_error": "epsilon"},
    "bottom-up-total-error": {"epsilon": "max_mean_error"},
    "angular": {"angle": "max_angle_rad"},
}


def available_compressors() -> list[str]:
    """Sorted list of registered algorithm names."""
    return sorted(COMPRESSORS)


def _coerce_value(text: str) -> int | float | bool | str:
    """Coerce a spec value: int, then float, then bool, else string."""
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    return text


@dataclass(frozen=True)
class CompressorSpec:
    """An algorithm name plus constructor parameters, as one value.

    Hashable and string-round-trippable, so a spec can travel through
    configuration files, CLI arguments and process boundaries (the
    :class:`~repro.pipeline.engine.BatchEngine` ships specs — not
    compressor instances — to its worker processes).

    Attributes:
        name: a registry name (see :func:`available_compressors`).
        params: ``(key, value)`` pairs in declaration order; values are
            ints, floats, bools or strings.
    """

    name: str
    params: tuple[tuple[str, int | float | bool | str], ...] = field(
        default_factory=tuple
    )

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", tuple(self.params))

    @property
    def params_dict(self) -> dict[str, int | float | bool | str]:
        """The parameters as a plain keyword dict (aliases unresolved)."""
        return dict(self.params)

    def build(self) -> Compressor:
        """Construct the configured compressor this spec describes.

        Raises:
            UnknownCompressorError: unknown algorithm name; the message
                lists the registered names. (Also catchable as
                ``KeyError`` or ``CompressorSpecError``.)
            TypeError: a parameter the algorithm does not accept.
        """
        try:
            factory = COMPRESSORS[self.name]
        except KeyError:
            raise UnknownCompressorError(
                f"unknown compressor {self.name!r}; "
                f"available: {', '.join(available_compressors())}"
            ) from None
        aliases = _PARAM_ALIASES.get(self.name, {})
        resolved = {aliases.get(key, key): value for key, value in self.params}
        return factory(**resolved)

    def __str__(self) -> str:
        if not self.params:
            return self.name
        rendered = ",".join(f"{key}={value}" for key, value in self.params)
        return f"{self.name}:{rendered}"


def parse_compressor_spec(text: str) -> CompressorSpec:
    """Parse a ``name[:key=value[,key=value...]]`` spec string.

    Only the grammar is validated here; whether the name is registered
    and the parameters are accepted is checked by
    :meth:`CompressorSpec.build`.

    Raises:
        CompressorSpecError: empty name, a parameter without ``=``, an
            empty key, or a non-identifier key.
    """
    text = text.strip()
    name, _, param_text = text.partition(":")
    name = name.strip()
    if not name:
        raise CompressorSpecError(f"compressor spec {text!r} has an empty name")
    params: list[tuple[str, int | float | bool | str]] = []
    if param_text.strip():
        for part in param_text.split(","):
            key, eq, raw = part.partition("=")
            key = key.strip()
            if not eq:
                raise CompressorSpecError(
                    f"compressor spec parameter {part.strip()!r} is not "
                    f"of the form key=value"
                )
            if not key.isidentifier():
                raise CompressorSpecError(
                    f"compressor spec parameter name {key!r} is not a "
                    f"valid identifier"
                )
            raw = raw.strip()
            if not raw:
                raise CompressorSpecError(
                    f"compressor spec parameter {key!r} has an empty value"
                )
            params.append((key, _coerce_value(raw)))
    return CompressorSpec(name, tuple(params))


def make_compressor(name: str, **params: object) -> Compressor:
    """Construct a compressor by registry name or spec string.

    Args:
        name: one of :func:`available_compressors`, or a full spec
            string such as ``"opw-sp:epsilon=30,speed=5"``.
        **params: constructor parameters, e.g. ``epsilon=50.0`` for
            ``"td-tr"``; with a spec string, explicit keywords override
            the spec's parameters.

    Raises:
        UnknownCompressorError: for unknown names (listing the valid
            ones; also catchable as ``KeyError``).
        CompressorSpecError: for a malformed spec string.
    """
    if ":" in name or "=" in name:
        spec = parse_compressor_spec(name)
    else:
        spec = CompressorSpec(name)
    merged = {**spec.params_dict, **params}
    return CompressorSpec(spec.name, tuple(merged.items())).build()
