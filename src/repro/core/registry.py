"""Name-based compressor construction.

The experiment harness, the benchmarks and the examples refer to
algorithms by the short names the paper uses (``ndp``, ``td-tr``,
``opw-sp``...). :func:`make_compressor` turns such a name plus parameters
into a configured :class:`~repro.core.base.Compressor`.
"""

from __future__ import annotations

from typing import Callable

from repro.core.angular import AngularChange
from repro.core.base import Compressor
from repro.core.bottom_up import BottomUp
from repro.core.budget import BottomUpBudget, BottomUpTotalError, TDTRBudget
from repro.core.dead_reckoning import DeadReckoning
from repro.core.douglas_peucker import DouglasPeucker
from repro.core.opening_window import BOPW, NOPW
from repro.core.opw_tr import OPWTR
from repro.core.sliding_window import SlidingWindow
from repro.core.spt import OPWSP, TDSP
from repro.core.td_tr import TDTR
from repro.core.uniform import DistanceThreshold, EveryIth

__all__ = ["COMPRESSORS", "make_compressor", "available_compressors"]

#: Registry of constructors keyed by the paper's algorithm names.
COMPRESSORS: dict[str, Callable[..., Compressor]] = {
    "ndp": DouglasPeucker,
    "td-tr": TDTR,
    "nopw": NOPW,
    "bopw": BOPW,
    "opw-tr": OPWTR,
    "opw-sp": OPWSP,
    "td-sp": TDSP,
    "every-ith": EveryIth,
    "distance-threshold": DistanceThreshold,
    "angular": AngularChange,
    "sliding-window": SlidingWindow,
    "bottom-up": BottomUp,
    "td-tr-budget": TDTRBudget,
    "bottom-up-budget": BottomUpBudget,
    "bottom-up-total-error": BottomUpTotalError,
    "dead-reckoning": DeadReckoning,
}


def available_compressors() -> list[str]:
    """Sorted list of registered algorithm names."""
    return sorted(COMPRESSORS)


def make_compressor(name: str, **params: object) -> Compressor:
    """Construct a compressor by its registry name.

    Args:
        name: one of :func:`available_compressors`.
        **params: constructor parameters, e.g. ``epsilon=50.0`` for
            ``"td-tr"`` or ``max_dist_error=50.0, max_speed_error=5.0``
            for ``"opw-sp"``.

    Raises:
        KeyError: for unknown names (listing the valid ones).
    """
    try:
        factory = COMPRESSORS[name]
    except KeyError:
        raise KeyError(
            f"unknown compressor {name!r}; available: {available_compressors()}"
        ) from None
    return factory(**params)
