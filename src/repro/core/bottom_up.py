"""Bottom-up merge baseline (paper Sect. 2 taxonomy).

The bottom-up category starts from the finest representation — every
point kept — and greedily merges adjacent segments while some halting
condition holds. Our halting condition is the paper's per-segment one:
stop merging a pair when the merged segment's maximum error would exceed
the threshold. The merge order is cheapest-first (smallest merged error),
maintained in a heap, which is the standard formulation from Keogh et al.

Batch algorithm; like the others it supports both the perpendicular and
the synchronized error criterion.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.core import kernels
from repro.core.base import Compressor, require_positive
from repro.trajectory.trajectory import Trajectory

__all__ = ["BottomUp"]


class BottomUp(Compressor):
    """Cheapest-first bottom-up segment merging.

    Args:
        epsilon: maximum per-segment error in metres; a merge whose merged
            segment would exceed this is never performed.
        criterion: ``"perpendicular"`` or ``"synchronized"``.
        engine: ``"numpy"`` (default) or ``"python"``; ``None`` defers to
            the ``REPRO_ENGINE`` environment variable. Both engines
            produce bitwise-equal merge costs, hence the same heap order
            and the same retained indices.
    """

    name = "bottom-up"

    def __init__(
        self,
        *,
        epsilon: float,
        criterion: str = "synchronized",
        engine: str | None = None,
    ) -> None:
        self.epsilon = require_positive("epsilon", epsilon)
        if criterion not in ("perpendicular", "synchronized"):
            raise ValueError(f"unknown criterion {criterion!r}")
        self.criterion = criterion
        self.engine = kernels.resolve_engine(engine)

    def sync_error_bound(self) -> float | None:
        """With the synchronized criterion every performed merge kept the
        merged chord's max SED under epsilon, so the final approximation
        is bounded; the perpendicular criterion bounds nothing
        synchronized."""
        return self.epsilon if self.criterion == "synchronized" else None

    def _merge_cost(self, traj: Trajectory, start: int, end: int) -> float:
        """Max error of the chord ``start``–``end`` over interior points."""
        if end - start < 2:
            return 0.0
        if self.engine == "python":
            t, x, y = traj.column_lists
            if self.criterion == "perpendicular":
                errors = kernels.perp_distances_py(x, y, start, end)
            else:
                errors = kernels.sync_distances_py(t, x, y, start, end)
            return kernels.max_with_offset_py(errors)[0]
        t, x, y = traj.columns
        if self.criterion == "perpendicular":
            errors = kernels.perp_distances(x, y, start, end)
        else:
            errors = kernels.sync_distances(t, x, y, start, end)
        return float(errors.max())

    def select_indices(self, traj: Trajectory) -> np.ndarray:
        n = len(traj)
        # Doubly linked list of retained breakpoints.
        prev = np.arange(-1, n - 1)
        nxt = np.arange(1, n + 1)
        alive = np.ones(n, dtype=bool)
        # Each heap entry proposes removing interior breakpoint ``mid`` by
        # merging its two segments; entries are lazily invalidated by
        # checking neighbours when popped.
        heap: list[tuple[float, int, int, int]] = []
        for mid in range(1, n - 1):
            cost = self._merge_cost(traj, mid - 1, mid + 1)
            heapq.heappush(heap, (cost, mid, mid - 1, mid + 1))
        while heap:
            cost, mid, left, right = heapq.heappop(heap)
            if not alive[mid] or not alive[left] or not alive[right]:
                continue
            if prev[mid] != left or nxt[mid] != right:
                continue  # stale entry: neighbours changed since push
            if cost > self.epsilon:
                break  # cheapest merge already violates: no merge can pass
            alive[mid] = False
            nxt[left] = right
            prev[right] = left
            if left > 0:
                heapq.heappush(
                    heap,
                    (self._merge_cost(traj, prev[left], right), left, prev[left], right),
                )
            if right < n - 1:
                heapq.heappush(
                    heap,
                    (self._merge_cost(traj, left, nxt[right]), right, left, nxt[right]),
                )
        return np.nonzero(alive)[0]
