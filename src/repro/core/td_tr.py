"""TD-TR: top-down time-ratio compression (paper Sect. 3.2).

TD-TR is the Douglas–Peucker recursion with the discard criterion
replaced by the **time-ratio (synchronized) distance**: an intermediate
point is compared against its temporally synchronized position on the
candidate chord (Eqs. 1–2), not its perpendicular projection. The split
point is the intermediate point of maximum synchronized distance.

This small change is the paper's key move: the retained series then bounds
the *synchronized* deviation of every original point by the threshold,
which is exactly the error that matters for a moving object (and the
quantity Sect. 4.2's α measures). The test suite pins this invariant.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import Compressor, deprecated_positional_init, require_positive
from repro.core.douglas_peucker import (
    top_down_indices,
    top_down_indices_recursive,
)
from repro.geometry.interpolation import synchronized_distances
from repro.trajectory.trajectory import Trajectory

__all__ = ["synchronized_segment_error", "TDTR"]


def synchronized_segment_error(
    traj: Trajectory, start: int, end: int
) -> tuple[float, int]:
    """TD-TR's segment error: max synchronized distance to the chord.

    Returns ``(max_error, argmax_index)`` over interior points of the
    chord ``start``–``end``.
    """
    distances = synchronized_distances(traj.t, traj.xy, start, end)
    offset = int(np.argmax(distances))
    return float(distances[offset]), start + 1 + offset


class TDTR(Compressor):
    """Top-down time-ratio compressor (the paper's TD-TR).

    Batch algorithm. Guarantees that the synchronized distance of every
    discarded point to the approximation is at most ``epsilon``; by
    convexity this also bounds the continuous max synchronized error of
    the whole approximation.

    Args:
        epsilon: synchronized distance threshold in metres.
        engine: ``"iterative"`` (default) or ``"recursive"``, as for
            :class:`~repro.core.douglas_peucker.DouglasPeucker`.
    """

    name = "td-tr"

    @deprecated_positional_init
    def __init__(self, *, epsilon: float, engine: str = "iterative") -> None:
        self.epsilon = require_positive("epsilon", epsilon)
        if engine not in ("iterative", "recursive"):
            raise ValueError(f"unknown engine {engine!r}")
        self._engine = (
            top_down_indices if engine == "iterative" else top_down_indices_recursive
        )

    def sync_error_bound(self) -> float:
        """TD-TR bounds every point's synchronized deviation by epsilon."""
        return self.epsilon

    def select_indices(self, traj: Trajectory) -> np.ndarray:
        return self._engine(traj, self.epsilon, synchronized_segment_error)
