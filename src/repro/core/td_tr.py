"""TD-TR: top-down time-ratio compression (paper Sect. 3.2).

TD-TR is the Douglas–Peucker recursion with the discard criterion
replaced by the **time-ratio (synchronized) distance**: an intermediate
point is compared against its temporally synchronized position on the
candidate chord (Eqs. 1–2), not its perpendicular projection. The split
point is the intermediate point of maximum synchronized distance.

This small change is the paper's key move: the retained series then bounds
the *synchronized* deviation of every original point by the threshold,
which is exactly the error that matters for a moving object (and the
quantity Sect. 4.2's α measures). The test suite pins this invariant.
"""

from __future__ import annotations

from functools import partial

import numpy as np

from repro.core import kernels
from repro.core.base import Compressor, require_positive
from repro.core.douglas_peucker import resolve_traversal
from repro.trajectory.trajectory import Trajectory

__all__ = ["synchronized_segment_error", "TDTR"]


def synchronized_segment_error(
    traj: Trajectory, start: int, end: int, *, engine: str = "numpy"
) -> tuple[float, int]:
    """TD-TR's segment error: max synchronized distance to the chord.

    Returns ``(max_error, argmax_index)`` over interior points of the
    chord ``start``–``end``.
    """
    if engine == "python":
        t, x, y = traj.column_lists
        error, offset = kernels.max_with_offset_py(
            kernels.sync_distances_py(t, x, y, start, end)
        )
    else:
        t, x, y = traj.columns
        error, offset = kernels.max_with_offset(
            kernels.sync_distances(t, x, y, start, end)
        )
    return error, start + 1 + offset


class TDTR(Compressor):
    """Top-down time-ratio compressor (the paper's TD-TR).

    Batch algorithm. Guarantees that the synchronized distance of every
    discarded point to the approximation is at most ``epsilon``; by
    convexity this also bounds the continuous max synchronized error of
    the whole approximation.

    Args:
        epsilon: synchronized distance threshold in metres.
        traversal: ``"iterative"`` (default) or ``"recursive"``, as for
            :class:`~repro.core.douglas_peucker.DouglasPeucker`.
        engine: ``"numpy"`` (default) or ``"python"``; ``None`` defers to
            the ``REPRO_ENGINE`` environment variable.
    """

    name = "td-tr"

    def __init__(
        self,
        *,
        epsilon: float,
        traversal: str = "iterative",
        engine: str | None = None,
    ) -> None:
        self.epsilon = require_positive("epsilon", epsilon)
        self.traversal = traversal
        self._traversal = resolve_traversal(traversal)
        self.engine = kernels.resolve_engine(engine)

    def sync_error_bound(self) -> float:
        """TD-TR bounds every point's synchronized deviation by epsilon."""
        return self.epsilon

    def select_indices(self, traj: Trajectory) -> np.ndarray:
        return self._traversal(
            traj,
            self.epsilon,
            partial(synchronized_segment_error, engine=self.engine),
        )
