"""Structural operations over trajectories beyond the core methods.

The :class:`~repro.trajectory.Trajectory` class carries the operations a
compressor needs (``subset``, slicing, interpolation); this module hosts
the dataset-level plumbing: concatenation, splitting on time gaps,
deduplication of repeated timestamps from noisy loggers, and uniform
decimation used by the naive baselines.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import TrajectoryError
from repro.trajectory.trajectory import Trajectory

__all__ = [
    "concat",
    "split_on_gaps",
    "drop_duplicate_times",
    "every_ith_indices",
    "merge_grids",
]


def concat(parts: Sequence[Trajectory], object_id: str | None = None) -> Trajectory:
    """Concatenate trajectories whose time intervals are strictly ordered.

    Args:
        parts: non-empty sequence; each part must start strictly after the
            previous part ended.
        object_id: id for the result (defaults to the first part's id).

    Raises:
        TrajectoryError: when parts overlap or touch in time.
    """
    if not parts:
        raise TrajectoryError("concat of no trajectories")
    for prev, nxt in zip(parts, parts[1:]):
        if nxt.start_time <= prev.end_time:
            raise TrajectoryError(
                f"parts overlap in time: {prev.end_time} .. {nxt.start_time}"
            )
    t = np.concatenate([p.t for p in parts])
    xy = np.concatenate([p.xy for p in parts])
    return Trajectory(t, xy, object_id or parts[0].object_id, _validated=True)


def split_on_gaps(traj: Trajectory, max_gap_s: float) -> list[Trajectory]:
    """Split a trajectory wherever consecutive samples are too far apart.

    Real GPS traces contain signal-loss gaps (tunnels, garages); treating
    the pieces as one continuous movement would let the piecewise-linear
    model invent motion that never happened. This splits at every gap
    longer than ``max_gap_s``.

    Returns:
        List of sub-trajectories in time order (length >= 1).
    """
    if max_gap_s <= 0:
        raise ValueError(f"max_gap_s must be positive, got {max_gap_s}")
    if len(traj) < 2:
        return [traj]
    gaps = np.diff(traj.t)
    cut_after = np.nonzero(gaps > max_gap_s)[0]
    if cut_after.size == 0:
        return [traj]
    pieces: list[Trajectory] = []
    start = 0
    for cut in cut_after:
        pieces.append(traj.slice_index(start, int(cut) + 1))
        start = int(cut) + 1
    pieces.append(traj.slice_index(start, len(traj)))
    return pieces


def drop_duplicate_times(
    t: np.ndarray, xy: np.ndarray, object_id: str | None = None
) -> Trajectory:
    """Build a trajectory from raw arrays, keeping the first of ties.

    Raw logger output occasionally repeats a timestamp (clock granularity)
    or delivers records out of order. This sorts by time (stable) and
    keeps the first record of each timestamp, producing a valid strictly
    increasing series.
    """
    t = np.asarray(t, dtype=float)
    xy = np.asarray(xy, dtype=float)
    if t.ndim != 1 or xy.shape != (t.shape[0], 2):
        raise TrajectoryError(
            f"expected t shape (n,) and xy shape (n, 2), got {t.shape} and {xy.shape}"
        )
    order = np.argsort(t, kind="stable")
    t_sorted = t[order]
    xy_sorted = xy[order]
    keep = np.ones(t_sorted.shape[0], dtype=bool)
    keep[1:] = np.diff(t_sorted) > 0
    return Trajectory(t_sorted[keep], xy_sorted[keep], object_id)


def every_ith_indices(n: int, step: int) -> np.ndarray:
    """Indices retained by the "keep every i-th point" baseline.

    The first point is always kept and the last point is always appended
    (so the compressed series still covers the full time interval — the
    counter-measure the paper asks for against losing the series tail).

    Args:
        n: number of points in the original series.
        step: keep one point out of every ``step`` (``step >= 1``).
    """
    if step < 1:
        raise ValueError(f"step must be >= 1, got {step}")
    if n < 1:
        raise ValueError("series must be non-empty")
    idx = np.arange(0, n, step)
    if idx[-1] != n - 1:
        idx = np.append(idx, n - 1)
    return idx


def merge_grids(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Sorted union of two sorted 1-D time grids (exact, no tolerance).

    Used by the error integrator to split original segments at the
    approximation's breakpoints when the approximation's timestamps are
    *not* a subseries of the original's (the general case the paper does
    not need, but which the library supports).
    """
    merged = np.union1d(np.asarray(a, dtype=float), np.asarray(b, dtype=float))
    return merged
