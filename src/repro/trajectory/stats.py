"""Descriptive statistics of trajectories.

These are the quantities the paper reports in Table 2 for its ten car
trajectories — duration, average speed, travelled length, net
displacement, and point count — plus the derived per-segment series
(speeds, headings) the SP algorithms and the workload calibration need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.geometry.interpolation import segment_speeds
from repro.trajectory.trajectory import Trajectory

__all__ = [
    "TrajectoryStats",
    "trajectory_stats",
    "speeds",
    "headings",
    "turning_angles",
    "stop_episodes",
    "DatasetStats",
    "dataset_stats",
    "aggregate_trajectory_stats",
]


@dataclass(frozen=True, slots=True)
class TrajectoryStats:
    """Summary of one trajectory, mirroring the paper's Table 2 rows."""

    n_points: int
    duration_s: float
    length_m: float
    displacement_m: float
    mean_speed_ms: float

    @property
    def mean_speed_kmh(self) -> float:
        """Average travel speed in km/h (the unit Table 2 uses)."""
        return self.mean_speed_ms * 3.6

    @property
    def duration_hms(self) -> str:
        """Duration formatted ``HH:MM:SS`` as printed in Table 2."""
        total = int(round(self.duration_s))
        hours, rem = divmod(total, 3600)
        minutes, seconds = divmod(rem, 60)
        return f"{hours:02d}:{minutes:02d}:{seconds:02d}"


def speeds(traj: Trajectory) -> np.ndarray:
    """Derived per-segment speeds in m/s, shape ``(n - 1,)``."""
    if len(traj) < 2:
        return np.empty(0)
    return segment_speeds(traj.t, traj.xy)


def headings(traj: Trajectory) -> np.ndarray:
    """Per-segment headings in radians in ``(-pi, pi]``, shape ``(n - 1,)``.

    Zero-length segments (the object stood still) yield heading 0; use
    :func:`stop_episodes` to find and treat them explicitly.
    """
    if len(traj) < 2:
        return np.empty(0)
    step = np.diff(traj.xy, axis=0)
    return np.arctan2(step[:, 1], step[:, 0])


def turning_angles(traj: Trajectory) -> np.ndarray:
    """Absolute heading change at each interior point, radians in [0, pi].

    This is the angular-change quantity Jenks-style algorithms threshold
    on (paper Sect. 2, ref [14]), and a key shape statistic for
    calibrating the synthetic workload.
    """
    h = headings(traj)
    if h.size < 2:
        return np.empty(0)
    diff = np.diff(h)
    diff = (diff + np.pi) % (2.0 * np.pi) - np.pi
    return np.abs(diff)


def stop_episodes(
    traj: Trajectory, speed_threshold_ms: float = 0.5, min_duration_s: float = 0.0
) -> list[tuple[int, int]]:
    """Maximal index ranges where the object is (nearly) stationary.

    Args:
        traj: the trajectory.
        speed_threshold_ms: segments slower than this count as stopped.
        min_duration_s: episodes shorter than this are dropped.

    Returns:
        List of ``(start_index, end_index)`` pairs: segment indices
        ``start_index .. end_index`` (inclusive) are all below the speed
        threshold. Empty when the trajectory has fewer than two points.
    """
    v = speeds(traj)
    episodes: list[tuple[int, int]] = []
    start: int | None = None
    for i, speed in enumerate(v):
        if speed < speed_threshold_ms:
            if start is None:
                start = i
        elif start is not None:
            episodes.append((start, i - 1))
            start = None
    if start is not None:
        episodes.append((start, v.size - 1))
    if min_duration_s > 0:
        episodes = [
            (a, b)
            for a, b in episodes
            if float(traj.t[b + 1] - traj.t[a]) >= min_duration_s
        ]
    return episodes


def trajectory_stats(traj: Trajectory) -> TrajectoryStats:
    """Compute the Table 2 summary statistics for one trajectory.

    Average speed is total travelled length over total duration (a
    time-weighted average), which is the natural reading of the paper's
    "speed" row.
    """
    n = len(traj)
    if n < 2:
        return TrajectoryStats(n, 0.0, 0.0, 0.0, 0.0)
    step = np.diff(traj.xy, axis=0)
    length = float(np.hypot(step[:, 0], step[:, 1]).sum())
    duration = traj.end_time - traj.start_time
    displacement = float(np.hypot(*(traj.xy[-1] - traj.xy[0])))
    return TrajectoryStats(
        n_points=n,
        duration_s=duration,
        length_m=length,
        displacement_m=displacement,
        mean_speed_ms=length / duration,
    )


@dataclass(frozen=True, slots=True)
class DatasetStats:
    """Mean and standard deviation over a set of trajectories (Table 2)."""

    n_trajectories: int
    duration_mean_s: float
    duration_std_s: float
    speed_mean_kmh: float
    speed_std_kmh: float
    length_mean_km: float
    length_std_km: float
    displacement_mean_km: float
    displacement_std_km: float
    points_mean: float
    points_std: float


def dataset_stats(trajectories: Iterable[Trajectory]) -> DatasetStats:
    """Aggregate Table 2 style statistics over a dataset.

    Equivalent to :func:`aggregate_trajectory_stats` over
    :func:`trajectory_stats` of each trajectory; split that way so the
    per-trajectory half can run on the batch pipeline's executor (the
    ``repro table2 --workers N`` path).
    """
    return aggregate_trajectory_stats(
        trajectory_stats(traj) for traj in trajectories
    )


def aggregate_trajectory_stats(stats: Iterable[TrajectoryStats]) -> DatasetStats:
    """Aggregate per-trajectory summaries into dataset means and stds.

    Standard deviations use the population convention (``ddof=0``); with
    only ten trajectories the paper does not say which it used, and the
    choice does not affect any of the shape comparisons.
    """
    per = list(stats)
    if not per:
        raise ValueError("dataset_stats of an empty dataset")
    durations = np.array([s.duration_s for s in per])
    speeds_kmh = np.array([s.mean_speed_kmh for s in per])
    lengths = np.array([s.length_m for s in per]) / 1000.0
    displacements = np.array([s.displacement_m for s in per]) / 1000.0
    points = np.array([s.n_points for s in per], dtype=float)
    return DatasetStats(
        n_trajectories=len(per),
        duration_mean_s=float(durations.mean()),
        duration_std_s=float(durations.std()),
        speed_mean_kmh=float(speeds_kmh.mean()),
        speed_std_kmh=float(speeds_kmh.std()),
        length_mean_km=float(lengths.mean()),
        length_std_km=float(lengths.std()),
        displacement_mean_km=float(displacements.mean()),
        displacement_std_km=float(displacements.std()),
        points_mean=float(points.mean()),
        points_std=float(points.std()),
    )
