"""Incremental trajectory construction.

Streaming consumers (the online compressors, the GPS simulator, the
storage ingest path) accumulate fixes one at a time; a
:class:`TrajectoryBuilder` collects them with validation-on-append and
materializes an immutable :class:`~repro.trajectory.Trajectory` at the
end, without re-validating the whole series.
"""

from __future__ import annotations

import bisect

import numpy as np

from repro.exceptions import EmptyTrajectoryError, TimestampOrderError
from repro.trajectory.trajectory import Trajectory
from repro.types import Fix

__all__ = ["TrajectoryBuilder"]


class TrajectoryBuilder:
    """Append-only builder of a :class:`~repro.trajectory.Trajectory`.

    Example:
        >>> builder = TrajectoryBuilder("car-1")
        >>> builder.append(0.0, 0.0, 0.0)
        >>> builder.append(10.0, 120.0, 5.0)
        >>> traj = builder.build()
        >>> len(traj)
        2
    """

    def __init__(self, object_id: str | None = None) -> None:
        self.object_id = object_id
        self._t: list[float] = []
        self._x: list[float] = []
        self._y: list[float] = []

    def __len__(self) -> int:
        return len(self._t)

    @property
    def last_time(self) -> float | None:
        """Timestamp of the most recent fix, or None when empty."""
        return self._t[-1] if self._t else None

    def append(self, t: float, x: float, y: float) -> None:
        """Append one fix; time must strictly exceed the previous fix's.

        Raises:
            TimestampOrderError: when ``t`` does not advance the clock.
        """
        t = float(t)
        if self._t and t <= self._t[-1]:
            raise TimestampOrderError(
                f"appended time {t} does not advance past {self._t[-1]}"
            )
        if not (np.isfinite(t) and np.isfinite(x) and np.isfinite(y)):
            raise ValueError(f"non-finite fix ({t}, {x}, {y})")
        self._t.append(t)
        self._x.append(float(x))
        self._y.append(float(y))

    def append_fix(self, fix: Fix) -> None:
        """Append a :class:`~repro.types.Fix`."""
        self.append(fix.t, fix.x, fix.y)

    def extend(self, fixes: list[Fix]) -> None:
        """Append many fixes in order."""
        for fix in fixes:
            self.append_fix(fix)

    def remove_time(self, t: float) -> None:
        """Remove the fix carrying timestamp ``t`` (budget evictions).

        Budget-constrained online compressors may retract a previously
        retained point (:class:`repro.streaming.base.Eviction`);
        timestamps are strictly increasing, so they identify a fix
        uniquely. O(n) in the held points — builders on the eviction
        path hold at most a session's point budget.

        Raises:
            KeyError: no held fix carries timestamp ``t``.
        """
        t = float(t)
        index = bisect.bisect_left(self._t, t)
        if index == len(self._t) or self._t[index] != t:
            raise KeyError(f"no fix at t={t} to remove")
        del self._t[index]
        del self._x[index]
        del self._y[index]

    def build(self) -> Trajectory:
        """Materialize the accumulated fixes as an immutable trajectory.

        The builder remains usable afterwards (more fixes can be appended
        and ``build`` called again).

        Raises:
            EmptyTrajectoryError: when no fix was appended.
        """
        if not self._t:
            raise EmptyTrajectoryError("builder holds no fixes")
        return Trajectory(
            np.asarray(self._t, dtype=float),
            np.column_stack([self._x, self._y]).astype(float),
            self.object_id,
            _validated=True,
        )

    def clear(self) -> None:
        """Drop all accumulated fixes."""
        self._t.clear()
        self._x.clear()
        self._y.clear()
