"""Cubic Hermite (Catmull–Rom) reconstruction of trajectories.

The paper uses piecewise *linear* interpolation throughout and notes both
that non-linear techniques exist ("e.g., using Bezier curves or splines",
Sect. 2) and, in its future work, that "other, more advanced,
interpolation techniques and consequently other error notions can be
defined". This module implements that direction: a time-parametrized
cubic Hermite spline through a trajectory's points with Catmull–Rom
tangents on the (non-uniform) timestamp grid.

A :class:`CubicHermitePath` answers the same ``position_at`` /
``positions_at`` queries a :class:`~repro.trajectory.Trajectory` does, so
the sampled error evaluators can compare reconstructions directly — the
spline-reconstruction ablation bench asks whether a smooth curve through
TD-TR's retained points tracks the original movement better than the
chords do.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import TrajectoryError
from repro.trajectory.trajectory import Trajectory

__all__ = ["CubicHermitePath"]


class CubicHermitePath:
    """C¹ cubic interpolation of a trajectory, parametrized by time.

    Tangents are Catmull–Rom style finite differences on the non-uniform
    timestamp grid: interior ``m_i = (P_{i+1} - P_{i-1}) / (t_{i+1} -
    t_{i-1})``, one-sided at the endpoints. The curve passes through
    every control point at its own timestamp, so a spline reconstruction
    of a *compressed* trajectory still honours the retained fixes
    exactly.

    Args:
        traj: control trajectory (``>= 2`` points).
    """

    def __init__(self, traj: Trajectory) -> None:
        if len(traj) < 2:
            raise TrajectoryError("a spline path needs at least 2 control points")
        self._t = traj.t
        self._xy = traj.xy
        n = len(traj)
        tangents = np.empty((n, 2))
        dt = np.diff(self._t)
        step = np.diff(self._xy, axis=0)
        tangents[0] = step[0] / dt[0]
        tangents[-1] = step[-1] / dt[-1]
        if n > 2:
            span = (self._t[2:] - self._t[:-2])[:, None]
            tangents[1:-1] = (self._xy[2:] - self._xy[:-2]) / span
        self._tangents = tangents
        self.object_id = traj.object_id

    def __len__(self) -> int:
        return self._t.shape[0]

    @property
    def start_time(self) -> float:
        return float(self._t[0])

    @property
    def end_time(self) -> float:
        return float(self._t[-1])

    def positions_at(self, times: np.ndarray) -> np.ndarray:
        """Spline positions at the given times (inside the interval)."""
        times = np.asarray(times, dtype=float)
        if times.size == 0:
            return np.empty((0, 2))
        if float(times.min()) < self.start_time - 1e-9 or (
            float(times.max()) > self.end_time + 1e-9
        ):
            raise ValueError("query times outside the path's interval")
        times = np.clip(times, self.start_time, self.end_time)
        idx = np.clip(
            np.searchsorted(self._t, times, side="right") - 1, 0, len(self) - 2
        )
        t0 = self._t[idx]
        t1 = self._t[idx + 1]
        h = t1 - t0
        u = (times - t0) / h
        u2 = u * u
        u3 = u2 * u
        h00 = 2 * u3 - 3 * u2 + 1
        h10 = u3 - 2 * u2 + u
        h01 = -2 * u3 + 3 * u2
        h11 = u3 - u2
        p0 = self._xy[idx]
        p1 = self._xy[idx + 1]
        m0 = self._tangents[idx] * h[:, None]
        m1 = self._tangents[idx + 1] * h[:, None]
        return (
            h00[:, None] * p0
            + h10[:, None] * m0
            + h01[:, None] * p1
            + h11[:, None] * m1
        )

    def position_at(self, when: float) -> np.ndarray:
        """Spline position at one time instant."""
        return self.positions_at(np.array([float(when)]))[0]

    def sample(self, n_samples: int = 256) -> Trajectory:
        """The spline discretized back into a (dense) trajectory."""
        if n_samples < 2:
            raise ValueError(f"need at least 2 samples, got {n_samples}")
        times = np.linspace(self.start_time, self.end_time, n_samples)
        return Trajectory(times, self.positions_at(times), self.object_id)
