"""The core trajectory data model.

A :class:`Trajectory` is the library's representation of the paper's
"positional time series": a finite sequence of time-stamped planar
positions, interpreted between samples as a piecewise-linear path
(Sect. 2). It is immutable — every operation returns a new trajectory —
and numpy-backed so the O(N²) compression algorithms can vectorize their
inner loops.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.exceptions import (
    EmptyTrajectoryError,
    TimestampOrderError,
    TrajectoryError,
)
from repro.geometry.interpolation import time_ratio_position
from repro.geometry.bbox import BBox
from repro.types import Fix

__all__ = ["Trajectory"]


class Trajectory:
    """An immutable time-stamped position series.

    Attributes:
        t: timestamps in seconds, float64, shape ``(n,)``, strictly
            increasing.
        xy: positions in metres, float64, shape ``(n, 2)``.
        object_id: optional identifier of the moving object.

    The arrays exposed via :attr:`t` and :attr:`xy` are read-only views;
    mutating them raises ``ValueError`` from numpy.
    """

    __slots__ = ("_t", "_xy", "_cols", "object_id")

    def __init__(
        self,
        t: np.ndarray,
        xy: np.ndarray,
        object_id: str | None = None,
        *,
        _validated: bool = False,
    ) -> None:
        """Build a trajectory from raw arrays.

        Args:
            t: timestamps, shape ``(n,)``, strictly increasing, finite.
            xy: positions, shape ``(n, 2)``, finite.
            object_id: optional moving-object identifier carried through
                compression and storage.

        Raises:
            TrajectoryError: on shape/dtype/content problems.
            TimestampOrderError: when timestamps are not strictly
                increasing.
        """
        t = np.ascontiguousarray(t, dtype=float)
        xy = np.ascontiguousarray(xy, dtype=float)
        if not _validated:
            _validate_arrays(t, xy)
        t.setflags(write=False)
        xy.setflags(write=False)
        self._t = t
        self._xy = xy
        self._cols = {}
        self.object_id = object_id

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def from_points(
        cls, points: Iterable[tuple[float, float, float] | Fix], object_id: str | None = None
    ) -> "Trajectory":
        """Build a trajectory from an iterable of ``(t, x, y)`` triples."""
        rows = [(float(p[0]), float(p[1]), float(p[2])) for p in points]
        if not rows:
            raise EmptyTrajectoryError("a trajectory needs at least one point")
        arr = np.asarray(rows, dtype=float)
        return cls(arr[:, 0], arr[:, 1:3], object_id)

    @classmethod
    def from_arrays(
        cls,
        t: Sequence[float] | np.ndarray,
        x: Sequence[float] | np.ndarray,
        y: Sequence[float] | np.ndarray,
        object_id: str | None = None,
    ) -> "Trajectory":
        """Build a trajectory from separate ``t``, ``x``, ``y`` sequences."""
        t = np.asarray(t, dtype=float)
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if not (t.shape == x.shape == y.shape):
            raise TrajectoryError(
                f"t/x/y must have equal shapes, got {t.shape}, {x.shape}, {y.shape}"
            )
        return cls(t, np.column_stack([x, y]), object_id)

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #

    @property
    def t(self) -> np.ndarray:
        """Timestamps (read-only, shape ``(n,)``)."""
        return self._t

    @property
    def xy(self) -> np.ndarray:
        """Positions (read-only, shape ``(n, 2)``)."""
        return self._xy

    @property
    def columns(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(t, x, y)`` as C-contiguous read-only float64 arrays (cached).

        The kernel layer (:mod:`repro.core.kernels`) works on flat
        coordinate columns; ``xy[:, 0]`` is a strided view, so the
        contiguous copies are materialized once per trajectory and reused
        by every subsequent compression or error sweep.
        """
        cached = self._cols.get("columns")
        if cached is None:
            x = np.ascontiguousarray(self._xy[:, 0])
            y = np.ascontiguousarray(self._xy[:, 1])
            x.setflags(write=False)
            y.setflags(write=False)
            cached = (self._t, x, y)
            self._cols["columns"] = cached
        return cached

    @property
    def column_lists(self) -> tuple[list[float], list[float], list[float]]:
        """``(t, x, y)`` as plain Python float lists (cached).

        The pure-Python reference engine (``engine="python"``) iterates
        point by point; indexing numpy arrays from Python allocates a
        scalar object per access, so the reference loops run on these
        cached lists instead.
        """
        cached = self._cols.get("column_lists")
        if cached is None:
            t, x, y = self.columns
            cached = (t.tolist(), x.tolist(), y.tolist())
            self._cols["column_lists"] = cached
        return cached

    @property
    def x(self) -> np.ndarray:
        """Eastings (read-only view, shape ``(n,)``)."""
        return self._xy[:, 0]

    @property
    def y(self) -> np.ndarray:
        """Northings (read-only view, shape ``(n,)``)."""
        return self._xy[:, 1]

    def __len__(self) -> int:
        return self._t.shape[0]

    def __iter__(self) -> Iterator[Fix]:
        for i in range(len(self)):
            yield self.point(i)

    def point(self, i: int) -> Fix:
        """The ``i``-th data point as a :class:`~repro.types.Fix`.

        Negative indices follow Python conventions.
        """
        n = len(self)
        if i < 0:
            i += n
        if not 0 <= i < n:
            raise IndexError(f"point index {i} out of range for {n} points")
        return Fix(float(self._t[i]), float(self._xy[i, 0]), float(self._xy[i, 1]))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Trajectory):
            return NotImplemented
        return (
            len(self) == len(other)
            and bool(np.array_equal(self._t, other._t))
            and bool(np.array_equal(self._xy, other._xy))
        )

    def __hash__(self) -> int:
        return hash((self._t.tobytes(), self._xy.tobytes()))

    def __getstate__(self):
        # Ship only the defining arrays; the column caches are cheap to
        # rebuild and would otherwise bloat process-pool pickles.
        return (self._t, self._xy, self.object_id)

    def __setstate__(self, state) -> None:
        self._t, self._xy, self.object_id = state
        self._cols = {}

    def __repr__(self) -> str:
        ident = f" id={self.object_id!r}" if self.object_id else ""
        if len(self) == 0:  # pragma: no cover - construction forbids this
            return f"Trajectory(empty{ident})"
        return (
            f"Trajectory(n={len(self)}{ident}, "
            f"t=[{self._t[0]:.1f}..{self._t[-1]:.1f}])"
        )

    # ------------------------------------------------------------------ #
    # Temporal interpolation
    # ------------------------------------------------------------------ #

    @property
    def start_time(self) -> float:
        return float(self._t[0])

    @property
    def end_time(self) -> float:
        return float(self._t[-1])

    def covers_time(self, when: float) -> bool:
        """Whether ``when`` falls inside the trajectory's time interval."""
        return self.start_time <= when <= self.end_time

    def segment_index_at(self, when: float) -> int:
        """Index ``i`` such that ``t[i] <= when <= t[i+1]``.

        The final timestamp maps to the last segment. Raises ``ValueError``
        outside the covered interval or for single-point trajectories.
        """
        if len(self) < 2:
            raise TrajectoryError("a single-point trajectory has no segments")
        if not self.covers_time(when):
            raise ValueError(
                f"time {when} outside trajectory interval "
                f"[{self.start_time}, {self.end_time}]"
            )
        idx = int(np.searchsorted(self._t, when, side="right")) - 1
        return min(idx, len(self) - 2)

    def position_at(self, when: float) -> np.ndarray:
        """Interpolated position at time ``when`` (paper Eqs. 1–2).

        This is ``loc(p, t)`` of Sect. 4.2: the piecewise-linear object
        position, defined on ``[t[0], t[-1]]``.
        """
        if len(self) == 1:
            if when != self.start_time:
                raise ValueError(
                    f"single-point trajectory only defined at t={self.start_time}"
                )
            return self._xy[0].copy()
        i = self.segment_index_at(when)
        return time_ratio_position(
            float(self._t[i]), self._xy[i], float(self._t[i + 1]), self._xy[i + 1], when
        )

    def positions_at(self, times: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`position_at` for sorted or unsorted times.

        Args:
            times: query times, all inside the covered interval.

        Returns:
            Array of shape ``(len(times), 2)``.
        """
        times = np.asarray(times, dtype=float)
        if times.size == 0:
            return np.empty((0, 2))
        if len(self) == 1:
            if np.any(times != self.start_time):
                raise ValueError("single-point trajectory only defined at its own time")
            return np.broadcast_to(self._xy[0], (times.size, 2)).copy()
        if float(times.min()) < self.start_time or float(times.max()) > self.end_time:
            raise ValueError("query times outside trajectory interval")
        idx = np.clip(
            np.searchsorted(self._t, times, side="right") - 1, 0, len(self) - 2
        )
        t0 = self._t[idx]
        t1 = self._t[idx + 1]
        ratio = (times - t0) / (t1 - t0)
        p0 = self._xy[idx]
        p1 = self._xy[idx + 1]
        return p0 + ratio[:, None] * (p1 - p0)

    # ------------------------------------------------------------------ #
    # Structural operations
    # ------------------------------------------------------------------ #

    def subset(self, indices: Sequence[int] | np.ndarray) -> "Trajectory":
        """A new trajectory keeping the given (sorted, unique) indices.

        This is how every compressor materializes its result: the kept
        indices are always a subseries of the original, so the compressed
        trajectory's timestamps are a subset of the original's — the
        property the error notion of Sect. 4.2 relies on.
        """
        idx = np.asarray(indices, dtype=int)
        if idx.size == 0:
            raise EmptyTrajectoryError("cannot subset to zero points")
        if np.any(idx < 0) or np.any(idx >= len(self)):
            raise IndexError("subset indices out of range")
        if np.any(np.diff(idx) <= 0):
            raise ValueError("subset indices must be strictly increasing")
        return Trajectory(
            self._t[idx].copy(), self._xy[idx].copy(), self.object_id, _validated=True
        )

    def slice_index(self, start: int, stop: int) -> "Trajectory":
        """Points ``start .. stop-1`` as a new trajectory."""
        n = len(self)
        start, stop, _ = slice(start, stop).indices(n)
        if stop - start < 1:
            raise EmptyTrajectoryError(f"empty index slice [{start}:{stop})")
        return Trajectory(
            self._t[start:stop].copy(),
            self._xy[start:stop].copy(),
            self.object_id,
            _validated=True,
        )

    def slice_time(self, t0: float, t1: float) -> "Trajectory":
        """Data points with ``t0 <= t <= t1`` as a new trajectory.

        Only original samples are kept; no boundary points are invented.
        Raises :class:`EmptyTrajectoryError` when no sample falls in the
        window.
        """
        if t1 < t0:
            raise ValueError(f"empty time window [{t0}, {t1}]")
        mask = (self._t >= t0) & (self._t <= t1)
        if not mask.any():
            raise EmptyTrajectoryError(f"no samples inside [{t0}, {t1}]")
        return Trajectory(
            self._t[mask].copy(), self._xy[mask].copy(), self.object_id, _validated=True
        )

    def shifted(self, dt: float = 0.0, dx: float = 0.0, dy: float = 0.0) -> "Trajectory":
        """A rigidly translated copy (time and/or space)."""
        return Trajectory(
            self._t + dt,
            self._xy + np.array([dx, dy]),
            self.object_id,
            _validated=True,
        )

    def with_object_id(self, object_id: str | None) -> "Trajectory":
        """A copy carrying a different object id (arrays are shared)."""
        clone = Trajectory.__new__(Trajectory)
        clone._t = self._t
        clone._xy = self._xy
        clone._cols = self._cols  # same arrays, so the caches are shared
        clone.object_id = object_id
        return clone

    def bbox(self) -> BBox:
        """Tight spatial bounding box of the sample positions."""
        return BBox.of_points(self._xy)

    def resample(self, interval: float) -> "Trajectory":
        """Piecewise-linear resampling at a fixed time interval.

        Produces samples at ``start_time, start_time + interval, ...`` and
        always includes the final timestamp, so the resampled trajectory
        covers the same time interval.

        Args:
            interval: strictly positive sampling period in seconds.
        """
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if len(self) == 1:
            return self
        times = np.arange(self.start_time, self.end_time, interval, dtype=float)
        if times.size == 0 or times[-1] < self.end_time:
            times = np.append(times, self.end_time)
        xy = self.positions_at(times)
        return Trajectory(times, xy, self.object_id, _validated=True)


def _validate_arrays(t: np.ndarray, xy: np.ndarray) -> None:
    """Shared validation for the raw-array constructor."""
    if t.ndim != 1:
        raise TrajectoryError(f"t must be 1-D, got shape {t.shape}")
    if xy.ndim != 2 or xy.shape[1] != 2:
        raise TrajectoryError(f"xy must have shape (n, 2), got {xy.shape}")
    if t.shape[0] != xy.shape[0]:
        raise TrajectoryError(
            f"t and xy disagree on length: {t.shape[0]} vs {xy.shape[0]}"
        )
    if t.shape[0] == 0:
        raise EmptyTrajectoryError("a trajectory needs at least one point")
    if not np.all(np.isfinite(t)) or not np.all(np.isfinite(xy)):
        raise TrajectoryError("timestamps and positions must be finite")
    if t.shape[0] > 1 and not np.all(np.diff(t) > 0):
        bad = int(np.argmin(np.diff(t) > 0))
        raise TimestampOrderError(
            f"timestamps must be strictly increasing; violation after index {bad} "
            f"(t[{bad}]={t[bad]}, t[{bad + 1}]={t[bad + 1]})"
        )
