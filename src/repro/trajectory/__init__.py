"""Trajectory data model: the positional time series of a moving object.

The :class:`Trajectory` class is the library's core data structure — an
immutable, numpy-backed, strictly time-ordered point series interpreted as
a piecewise-linear path. The submodules provide statistics (Table 2
quantities), structural operations, incremental building, and file I/O
(CSV/JSON/GPX).
"""

from repro.trajectory.builder import TrajectoryBuilder
from repro.trajectory.gpx import read_gpx, write_gpx
from repro.trajectory.io import (
    read_csv,
    read_dataset_json,
    read_json,
    write_csv,
    write_dataset_json,
    write_json,
)
from repro.trajectory.ops import (
    concat,
    drop_duplicate_times,
    every_ith_indices,
    merge_grids,
    split_on_gaps,
)
from repro.trajectory.quality import (
    QualityIssue,
    clean,
    drop_speed_outliers,
    quality_issues,
)
from repro.trajectory.spline import CubicHermitePath
from repro.trajectory.stats import (
    DatasetStats,
    TrajectoryStats,
    dataset_stats,
    headings,
    speeds,
    stop_episodes,
    trajectory_stats,
    turning_angles,
)
from repro.trajectory.trajectory import Trajectory

__all__ = [
    "CubicHermitePath",
    "DatasetStats",
    "QualityIssue",
    "Trajectory",
    "TrajectoryBuilder",
    "TrajectoryStats",
    "clean",
    "concat",
    "dataset_stats",
    "drop_speed_outliers",
    "drop_duplicate_times",
    "every_ith_indices",
    "headings",
    "merge_grids",
    "quality_issues",
    "read_csv",
    "read_dataset_json",
    "read_gpx",
    "read_json",
    "speeds",
    "split_on_gaps",
    "stop_episodes",
    "trajectory_stats",
    "turning_angles",
    "write_csv",
    "write_dataset_json",
    "write_gpx",
    "write_json",
]
