"""Raw GPS quality checks and cleaning.

The paper's error-tolerance argument starts from "(i) we know our raw
data to already contain error" — and real logger output contains more
than Gaussian jitter: multipath teleports (physically impossible derived
speeds), frozen fixes (the receiver repeating its last solution), and
signal-loss gaps. Compressing such artifacts wastes retained points on
garbage (every spike looks like a must-keep corner), so production
pipelines clean first:

* :func:`quality_issues` — a typed audit of one trajectory;
* :func:`drop_speed_outliers` — remove fixes whose implied in-and-out
  speeds are impossible for the platform;
* :func:`clean` — the standard pipeline: outlier removal plus gap
  splitting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trajectory.ops import split_on_gaps
from repro.trajectory.stats import speeds
from repro.trajectory.trajectory import Trajectory

__all__ = [
    "QualityIssue",
    "quality_issues",
    "drop_speed_outliers",
    "clean",
]


@dataclass(frozen=True, slots=True)
class QualityIssue:
    """One detected data-quality problem.

    Attributes:
        kind: ``"speed-spike"``, ``"frozen"`` or ``"gap"``.
        index: index of the offending fix (spikes) or of the fix *before*
            the problem interval (frozen runs, gaps).
        detail: human-readable specifics.
    """

    kind: str
    index: int
    detail: str


def quality_issues(
    traj: Trajectory,
    max_speed_ms: float = 70.0,
    max_gap_s: float = 120.0,
    frozen_min_count: int = 3,
) -> list[QualityIssue]:
    """Audit a trajectory for common logger artifacts.

    Args:
        traj: the raw trajectory.
        max_speed_ms: derived speeds above this are physically impossible
            for the tracked platform (70 m/s = 252 km/h default).
        max_gap_s: sampling gaps longer than this are signal loss.
        frozen_min_count: this many consecutive *identical* positions
            count as a frozen receiver (identical, not merely slow — real
            stops still jitter by the noise floor).

    Returns:
        Issues in index order (possibly empty).
    """
    if max_speed_ms <= 0 or max_gap_s <= 0:
        raise ValueError("thresholds must be positive")
    if frozen_min_count < 2:
        raise ValueError("frozen_min_count must be at least 2")
    issues: list[QualityIssue] = []
    if len(traj) < 2:
        return issues
    v = speeds(traj)
    for i in np.nonzero(v > max_speed_ms)[0]:
        issues.append(
            QualityIssue(
                "speed-spike",
                int(i) + 1,
                f"segment {i}->{i + 1} implies {v[i]:.1f} m/s",
            )
        )
    gaps = np.diff(traj.t)
    for i in np.nonzero(gaps > max_gap_s)[0]:
        issues.append(
            QualityIssue("gap", int(i), f"{gaps[i]:.0f} s between fixes")
        )
    identical = np.all(np.diff(traj.xy, axis=0) == 0.0, axis=1)
    run_start: int | None = None
    run_length = 0
    for i, same in enumerate(identical):
        if same:
            if run_start is None:
                run_start = i
                run_length = 1
            else:
                run_length += 1
        else:
            if run_start is not None and run_length + 1 >= frozen_min_count:
                issues.append(
                    QualityIssue(
                        "frozen",
                        run_start,
                        f"{run_length + 1} identical fixes from index {run_start}",
                    )
                )
            run_start = None
    if run_start is not None and run_length + 1 >= frozen_min_count:
        issues.append(
            QualityIssue(
                "frozen",
                run_start,
                f"{run_length + 1} identical fixes from index {run_start}",
            )
        )
    issues.sort(key=lambda issue: issue.index)
    return issues


def drop_speed_outliers(
    traj: Trajectory, max_speed_ms: float = 70.0, max_passes: int = 8
) -> Trajectory:
    """Remove fixes that create physically impossible derived speeds.

    A single teleported fix creates *two* impossible segments (in and
    out); removing the fix between them restores plausibility. The scan
    repeats (an outlier pair can mask another) up to ``max_passes``.
    Endpoints are never dropped — an impossible first/last segment keeps
    its boundary fix and the offending interior one goes.

    Returns:
        A cleaned trajectory (possibly the input, unchanged).
    """
    if max_speed_ms <= 0:
        raise ValueError("max_speed_ms must be positive")
    current = traj
    for _ in range(max_passes):
        if len(current) < 3:
            return current
        v = speeds(current)
        bad_segments = v > max_speed_ms
        if not bad_segments.any():
            return current
        keep = np.ones(len(current), dtype=bool)
        i = 0
        n_seg = bad_segments.shape[0]
        while i < n_seg:
            if bad_segments[i]:
                # Drop the interior endpoint of the offending segment:
                # the later fix, unless that is the final point.
                victim = i + 1 if i + 1 < len(current) - 1 else i
                if victim == 0:
                    victim = 1
                keep[victim] = False
                i += 2  # the segment after the victim is re-derived next pass
            else:
                i += 1
        if keep.all():
            return current
        current = current.subset(np.nonzero(keep)[0])
    return current


def clean(
    traj: Trajectory,
    max_speed_ms: float = 70.0,
    max_gap_s: float = 120.0,
) -> list[Trajectory]:
    """Standard cleaning pipeline: outlier removal, then gap splitting.

    Returns:
        One or more clean trajectory pieces in time order (frozen runs
        are left alone — they are valid "object stood still" data unless
        an application decides otherwise).
    """
    without_outliers = drop_speed_outliers(traj, max_speed_ms)
    return split_on_gaps(without_outliers, max_gap_s)
