"""Minimal, dependency-free GPX reading and writing.

Real moving-object traces — the kind the paper collected with a car-mounted
GPS — typically arrive as GPX track files. This module parses the track
points (``trkpt``: lat/lon/time) of GPX 1.0/1.1 documents with
``xml.etree`` and projects them to the local planar frame the library
operates in (see :class:`repro.geometry.LocalProjection`).

Only the subset needed for trajectories is supported: waypoint extensions,
routes, and elevation profiles are ignored.
"""

from __future__ import annotations

import datetime as _dt
import re
from pathlib import Path
from xml.etree import ElementTree

from repro.exceptions import TrajectoryError
from repro.geometry.projection import LocalProjection
from repro.io_util import write_atomic
from repro.trajectory.io import _parse_row_policy, _write_rejected_rows
from repro.trajectory.trajectory import Trajectory
from repro.trajectory.ops import drop_duplicate_times

import numpy as np

__all__ = ["read_gpx", "write_gpx", "parse_gpx_time"]

_GPX_TIME_RE = re.compile(
    r"^(\d{4})-(\d{2})-(\d{2})T(\d{2}):(\d{2}):(\d{2})(\.\d+)?(Z|[+-]\d{2}:\d{2})?$"
)


def parse_gpx_time(text: str) -> float:
    """Parse an ISO-8601 GPX timestamp to epoch seconds (UTC).

    Accepts the common GPX forms ``2004-03-14T09:00:00Z`` and variants
    with fractional seconds or explicit offsets.
    """
    match = _GPX_TIME_RE.match(text.strip())
    if not match:
        raise TrajectoryError(f"unparseable GPX timestamp: {text!r}")
    year, month, day, hour, minute, second = (int(g) for g in match.groups()[:6])
    frac = float(match.group(7) or 0.0)
    offset_text = match.group(8)
    moment = _dt.datetime(
        year, month, day, hour, minute, second, tzinfo=_dt.timezone.utc
    )
    if offset_text and offset_text != "Z":
        sign = 1 if offset_text[0] == "+" else -1
        oh, om = int(offset_text[1:3]), int(offset_text[4:6])
        moment -= sign * _dt.timedelta(hours=oh, minutes=om)
    return moment.timestamp() + frac


def _local_name(tag: str) -> str:
    """Strip the XML namespace from an element tag."""
    return tag.rsplit("}", 1)[-1]


def read_gpx(
    path: str | Path,
    object_id: str | None = None,
    projection: LocalProjection | None = None,
    on_malformed: str = "raise",
) -> Trajectory:
    """Read the first track of a GPX file as a planar trajectory.

    Args:
        path: GPX file path.
        object_id: id for the resulting trajectory (defaults to the track
            name when present).
        projection: planar projection to apply; defaults to an
            equirectangular projection centred on the track.
        on_malformed: what to do with a bad *track point* (missing or
            invalid lat/lon/time): ``"raise"`` (default) aborts,
            ``"skip"`` drops the point, ``"quarantine:<dir>"`` drops it
            and records it in ``<dir>/<name>.points.jsonl``. A document
            that is not well-formed XML always raises — there is no
            per-point recovery from broken markup.

    Raises:
        TrajectoryError: when the document has no usable track points or
            points lack timestamps.
    """
    path = Path(path)
    mode, quarantine_dir = _parse_row_policy(on_malformed, str(path))
    try:
        root = ElementTree.parse(path).getroot()
    except ElementTree.ParseError as exc:
        raise TrajectoryError(f"{path}: not well-formed XML") from exc

    name: str | None = None
    lats: list[float] = []
    lons: list[float] = []
    times: list[float] = []
    rejected: list[dict[str, object]] = []
    point_number = 0
    for elem in root.iter():
        tag = _local_name(elem.tag)
        if tag == "name" and name is None and elem.text:
            name = elem.text.strip()
        elif tag == "trkpt":
            point_number += 1
            try:
                lat = float(elem.attrib["lat"])
                lon = float(elem.attrib["lon"])
            except (KeyError, ValueError) as exc:
                if mode == "raise":
                    raise TrajectoryError(
                        f"{path}: trkpt without valid lat/lon"
                    ) from exc
                rejected.append(
                    {"point": point_number, "reason": "trkpt without valid lat/lon"}
                )
                continue
            time_el = next(
                (child for child in elem if _local_name(child.tag) == "time"), None
            )
            if time_el is None or not time_el.text:
                if mode == "raise":
                    raise TrajectoryError(
                        f"{path}: trkpt without <time> — timestamps are required"
                    )
                rejected.append(
                    {"point": point_number, "reason": "trkpt without <time>"}
                )
                continue
            try:
                when = parse_gpx_time(time_el.text)
            except TrajectoryError as exc:
                if mode == "raise":
                    raise
                rejected.append({"point": point_number, "reason": str(exc)})
                continue
            lats.append(lat)
            lons.append(lon)
            times.append(when)
    if quarantine_dir is not None and rejected:
        _write_rejected_rows(quarantine_dir, f"{path.name}.points.jsonl", rejected)
    if not lats:
        raise TrajectoryError(f"{path}: no track points found")

    lats_arr = np.asarray(lats)
    lons_arr = np.asarray(lons)
    if projection is None:
        projection = LocalProjection.centered_on(lons_arr, lats_arr)
    x, y = projection.forward(lons_arr, lats_arr)
    return drop_duplicate_times(
        np.asarray(times), np.column_stack([x, y]), object_id or name
    )


def write_gpx(
    traj: Trajectory,
    path: str | Path,
    projection: LocalProjection,
    creator: str = "repro",
) -> None:
    """Write a planar trajectory back to GPX via the inverse projection
    (atomically).

    Args:
        traj: trajectory in the local planar frame.
        path: output file.
        projection: the projection whose inverse maps ``(x, y)`` to
            lon/lat — normally the one used when reading.
        creator: value for the GPX ``creator`` attribute.
    """
    path = Path(path)
    lon, lat = projection.inverse(traj.x, traj.y)
    gpx = ElementTree.Element(
        "gpx", attrib={"version": "1.1", "creator": creator}
    )
    trk = ElementTree.SubElement(gpx, "trk")
    if traj.object_id:
        name_el = ElementTree.SubElement(trk, "name")
        name_el.text = traj.object_id
    seg = ElementTree.SubElement(trk, "trkseg")
    for i in range(len(traj)):
        pt = ElementTree.SubElement(
            seg, "trkpt", attrib={"lat": f"{lat[i]:.8f}", "lon": f"{lon[i]:.8f}"}
        )
        time_el = ElementTree.SubElement(pt, "time")
        moment = _dt.datetime.fromtimestamp(float(traj.t[i]), tz=_dt.timezone.utc)
        time_el.text = moment.strftime("%Y-%m-%dT%H:%M:%S") + (
            f".{int(moment.microsecond):06d}Z" if moment.microsecond else "Z"
        )
    document = ElementTree.tostring(gpx, encoding="unicode", xml_declaration=True)
    write_atomic(path, document)
