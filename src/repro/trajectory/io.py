"""Plain-file trajectory I/O: CSV and JSON.

Formats are deliberately boring and self-describing so traces survive
round trips through spreadsheets and shell tools:

* **CSV** — header ``t,x,y``; one fix per row; ``#`` lines are comments.
* **JSON** — ``{"object_id": ..., "points": [[t, x, y], ...]}``.

GPX support (for real GPS loggers) lives in :mod:`repro.trajectory.gpx`.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Iterable, TextIO

import numpy as np

from repro.exceptions import TrajectoryError
from repro.io_util import parse_on_malformed, write_atomic
from repro.trajectory.trajectory import Trajectory

__all__ = [
    "write_csv",
    "read_csv",
    "write_json",
    "read_json",
    "write_dataset_json",
    "read_dataset_json",
]

_CSV_HEADER = ["t", "x", "y"]


def _parse_row_policy(on_malformed: str, source: str) -> tuple[str, "Path | None"]:
    """Validate a reader's ``on_malformed`` policy string."""
    try:
        return parse_on_malformed(on_malformed)
    except ValueError as exc:
        raise TrajectoryError(f"{source}: {exc}") from exc


def _write_rejected_rows(
    quarantine_dir: Path, name: str, rejected: list[dict[str, object]]
) -> None:
    """Persist a reader's rejected rows/points as a JSONL sidecar."""
    quarantine_dir.mkdir(parents=True, exist_ok=True)
    write_atomic(
        quarantine_dir / name,
        "".join(json.dumps(entry, sort_keys=True) + "\n" for entry in rejected),
    )


def write_csv(traj: Trajectory, path: str | Path) -> None:
    """Write a trajectory to ``path`` as ``t,x,y`` CSV (atomically)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(_CSV_HEADER)
    for i in range(len(traj)):
        writer.writerow(
            [repr(float(traj.t[i])), repr(float(traj.xy[i, 0])), repr(float(traj.xy[i, 1]))]
        )
    write_atomic(Path(path), buffer.getvalue())


def read_csv(
    path: str | Path,
    object_id: str | None = None,
    on_malformed: str = "raise",
) -> Trajectory:
    """Read a ``t,x,y`` CSV written by :func:`write_csv` (or compatible).

    Blank lines and lines starting with ``#`` are skipped. A header row is
    optional but, when present, must name the three columns ``t,x,y``.

    Args:
        path: the CSV file.
        object_id: id for the resulting trajectory.
        on_malformed: what to do with an unparsable data *row*:
            ``"raise"`` (default) aborts, ``"skip"`` drops the row,
            ``"quarantine:<dir>"`` drops it and records it (with its
            line number and reason) in ``<dir>/<name>.rows.jsonl``. A
            file with no healthy rows still raises.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        return _read_csv_stream(
            handle, object_id, source=str(path), on_malformed=on_malformed,
            name=path.name,
        )


def _read_csv_stream(
    handle: TextIO,
    object_id: str | None,
    source: str,
    on_malformed: str = "raise",
    name: str = "stream.csv",
) -> Trajectory:
    mode, quarantine_dir = _parse_row_policy(on_malformed, source)
    rows: list[tuple[float, float, float]] = []
    rejected: list[dict[str, object]] = []
    reader = csv.reader(line for line in handle if line.strip() and not line.startswith("#"))
    for lineno, row in enumerate(reader, start=1):
        if lineno == 1 and [cell.strip().lower() for cell in row] == _CSV_HEADER:
            continue
        if len(row) != 3:
            reason = f"expected 3 columns at data row {lineno}, got {len(row)}"
            if mode == "raise":
                raise TrajectoryError(f"{source}: {reason}")
            rejected.append({"row": lineno, "cells": row, "reason": reason})
            continue
        try:
            rows.append((float(row[0]), float(row[1]), float(row[2])))
        except ValueError as exc:
            reason = f"non-numeric value at row {lineno}"
            if mode == "raise":
                raise TrajectoryError(f"{source}: {reason}") from exc
            rejected.append({"row": lineno, "cells": row, "reason": reason})
    if quarantine_dir is not None and rejected:
        _write_rejected_rows(quarantine_dir, f"{name}.rows.jsonl", rejected)
    if not rows:
        raise TrajectoryError(f"{source}: no data rows")
    return Trajectory.from_points(rows, object_id)


def write_json(traj: Trajectory, path: str | Path) -> None:
    """Write one trajectory as a JSON document (atomically)."""
    payload = {
        "object_id": traj.object_id,
        "points": np.column_stack([traj.t, traj.xy]).tolist(),
    }
    write_atomic(Path(path), json.dumps(payload))


def read_json(path: str | Path) -> Trajectory:
    """Read one trajectory from a JSON document written by :func:`write_json`."""
    path = Path(path)
    payload = json.loads(path.read_text())
    return _trajectory_from_payload(payload, source=str(path))


def write_dataset_json(trajectories: Iterable[Trajectory], path: str | Path) -> None:
    """Write a whole dataset (list of trajectories) as one JSON document
    (atomically)."""
    payload = [
        {
            "object_id": traj.object_id,
            "points": np.column_stack([traj.t, traj.xy]).tolist(),
        }
        for traj in trajectories
    ]
    write_atomic(Path(path), json.dumps(payload))


def read_dataset_json(path: str | Path) -> list[Trajectory]:
    """Read a dataset written by :func:`write_dataset_json`."""
    path = Path(path)
    payload = json.loads(path.read_text())
    if not isinstance(payload, list):
        raise TrajectoryError(f"{path}: expected a JSON list of trajectories")
    return [
        _trajectory_from_payload(entry, source=f"{path}[{i}]")
        for i, entry in enumerate(payload)
    ]


def _trajectory_from_payload(payload: object, source: str) -> Trajectory:
    if not isinstance(payload, dict) or "points" not in payload:
        raise TrajectoryError(f"{source}: expected an object with a 'points' key")
    points = payload["points"]
    if not isinstance(points, list) or not points:
        raise TrajectoryError(f"{source}: 'points' must be a non-empty list")
    object_id = payload.get("object_id")
    if object_id is not None and not isinstance(object_id, str):
        raise TrajectoryError(f"{source}: 'object_id' must be a string or null")
    try:
        return Trajectory.from_points(points, object_id)
    except (TypeError, IndexError) as exc:
        raise TrajectoryError(f"{source}: malformed point rows") from exc
