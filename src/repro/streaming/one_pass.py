"""Push-based one-pass SED compressors (OPERB- and CISED-style).

The streaming forms of :class:`repro.core.one_pass.OPERB` and
:class:`repro.core.one_pass.CISED`: one velocity-space feasibility
region per open segment, O(1) state, no window re-scan — each push is
constant work, which is what lifts the serving hot path past the
opening-window family's quadratic worst case. The scalar disc
parameters are computed with the exact floating-point expressions of
:func:`repro.core.kernels.sync_circles_py`, so the emitted fixes match
the batch classes' retained points bit for bit; the shared conformance
tests pin this equivalence.
"""

from __future__ import annotations

from repro.core.base import require_positive
from repro.core.one_pass import FeasibleRegion, PolygonRegion, RectangleRegion
from repro.exceptions import StreamError
from repro.streaming.registry import register_online
from repro.types import Fix

__all__ = ["StreamingOPERB", "StreamingCISED"]


class _OnePassStreaming:
    """Shared push/finish state machine of the one-pass compressors.

    State between pushes: the current anchor (already emitted), the
    buffered candidate end, and the feasibility region — a constant
    number of floats. Subclasses set :attr:`algorithm` and implement
    :meth:`_make_region`.

    Usage::

        compressor = StreamingOPERB(epsilon=30.0)
        for fix in stream:
            for kept in compressor.push(fix):
                sink(kept)
        for kept in compressor.finish():
            sink(kept)
    """

    algorithm = "one-pass"

    def __init__(self, epsilon: float) -> None:
        self.epsilon = require_positive("epsilon", epsilon)
        self._anchor: Fix | None = None
        self._last: Fix | None = None
        self._region: FeasibleRegion | None = None
        self._finished = False
        self.n_pushed = 0
        self.n_emitted = 0

    def _make_region(self, cx: float, cy: float, r: float) -> FeasibleRegion:
        raise NotImplementedError

    @property
    def closed(self) -> bool:
        """True once :meth:`finish` has been called."""
        return self._finished

    @property
    def state_size(self) -> int:
        """Current working state in floats — O(1) by construction."""
        size = 0
        if self._anchor is not None:
            size += 3
        if self._last is not None:
            size += 3
        if self._region is not None:
            size += self._region.state_size
        return size

    def sync_error_bound(self) -> float:
        """Accepted end velocities stay inside every dropped point's
        velocity disc, so epsilon bounds the max synchronized error."""
        return self.epsilon

    def _check_protocol(self, fix: Fix) -> None:
        if self._finished:
            raise StreamError("push after finish()")
        previous = self._last if self._last is not None else self._anchor
        if previous is not None and fix.t <= previous.t:
            raise StreamError(f"time went backwards ({previous.t} -> {fix.t})")

    def _circle(self, fix: Fix) -> tuple[float, float, float]:
        # Same expressions as kernels.sync_circles_py, so streaming and
        # batch replay select bit-identical points.
        anchor = self._anchor
        dt = fix.t - anchor.t  # type: ignore[union-attr]
        return (
            (fix.x - anchor.x) / dt,  # type: ignore[union-attr]
            (fix.y - anchor.y) / dt,  # type: ignore[union-attr]
            self.epsilon / dt,
        )

    def _emit(self, fix: Fix) -> Fix:
        self.n_emitted += 1
        return fix

    def push(self, fix: Fix) -> list[Fix]:
        """Feed one fix; returns the fixes decided as retained by it.

        The very first fix is always retained (and emitted immediately);
        a fix whose velocity falls outside the feasibility region emits
        the buffered candidate and re-anchors there.
        """
        fix = Fix(float(fix[0]), float(fix[1]), float(fix[2]))
        self._check_protocol(fix)
        self.n_pushed += 1
        if self._anchor is None:
            self._anchor = fix
            return [self._emit(fix)]
        cx, cy, r = self._circle(fix)
        if self._last is None:
            self._region = self._make_region(cx, cy, r)
            self._last = fix
            return []
        if self._region is not None and self._region.contains(cx, cy):
            self._region.clip(cx, cy, r)
            self._last = fix
            return []
        emitted = self._emit(self._last)
        self._anchor = emitted
        cx, cy, r = self._circle(fix)
        self._region = self._make_region(cx, cy, r)
        self._last = fix
        return [emitted]

    def finish(self) -> list[Fix]:
        """Close the stream; returns the final retained fixes.

        Emits the buffered candidate (the last pushed fix), so the
        compressed series covers the full stream. Idempotent.
        """
        if self._finished:
            return []
        self._finished = True
        out: list[Fix] = []
        if self._last is not None:
            out.append(self._emit(self._last))
        self._anchor = None
        self._last = None
        self._region = None
        return out


class StreamingOPERB(_OnePassStreaming):
    """Push-based OPERB adaptation: rectangular feasibility region.

    O(1) state (anchor, candidate, four rectangle bounds) and O(1) work
    per push. Emits exactly the points :class:`repro.core.one_pass
    .OPERB` retains on the same series.

    Args:
        epsilon: synchronized distance threshold in metres.
    """

    algorithm = "operb"

    def _make_region(self, cx: float, cy: float, r: float) -> RectangleRegion:
        return RectangleRegion(cx, cy, r)


class StreamingCISED(_OnePassStreaming):
    """Push-based CISED-style compressor: polygonal feasibility cone.

    O(1) state (the polygon is ``m`` half-plane offsets) and O(m) work
    per push. Emits exactly the points :class:`repro.core.one_pass
    .CISED` retains on the same series.

    Args:
        epsilon: synchronized distance threshold in metres.
        m: polygon edge count per velocity disc (>= 3; default 16).
    """

    algorithm = "cised"

    def __init__(self, epsilon: float, m: int = 16) -> None:
        super().__init__(epsilon)
        self.m = int(m)
        if self.m < 3:
            raise ValueError(f"m must be >= 3, got {m}")

    def _make_region(self, cx: float, cy: float, r: float) -> PolygonRegion:
        return PolygonRegion(cx, cy, r, self.m)


def _make_operb(*, epsilon: float) -> StreamingOPERB:
    return StreamingOPERB(float(epsilon))


def _make_cised(*, epsilon: float, m: int = 16) -> StreamingCISED:
    return StreamingCISED(float(epsilon), m=int(m))


register_online(
    "operb", _make_operb, {"epsilon": "epsilon", "max_dist_error": "epsilon"}
)
register_online(
    "cised",
    _make_cised,
    {"epsilon": "epsilon", "max_dist_error": "epsilon", "m": "m"},
)
