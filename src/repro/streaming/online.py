"""Incremental (push-based) opening-window compression.

The batch classes in :mod:`repro.core` already *are* online algorithms in
the paper's sense — they never look past the current window — but their
API takes a complete trajectory. This module provides the genuinely
incremental form: a :class:`StreamingOPW` accepts one fix at a time and
emits retained fixes as soon as they are decided, holding only the open
window in memory.

The selected points are **identical** to the corresponding batch
algorithm's (NOPW / OPW-TR / OPW-SP with the ``"violating"`` break
strategy); the test suite pins this equivalence. An optional
``max_window`` bound forces a break when the open window would exceed a
memory budget — the knob a constrained device needs, at a small cost in
compression.
"""

from __future__ import annotations

import math

from repro.core.base import require_positive
from repro.exceptions import StreamError
from repro.streaming.registry import register_online
from repro.types import Fix

__all__ = ["StreamingOPW"]

_CRITERIA = ("perpendicular", "synchronized")


def _perpendicular_distance(fix: Fix, anchor: Fix, float_end: Fix) -> float:
    """Distance from ``fix`` to the infinite line anchor–float."""
    abx = float_end.x - anchor.x
    aby = float_end.y - anchor.y
    norm = math.hypot(abx, aby)
    if norm == 0.0:
        return math.hypot(fix.x - anchor.x, fix.y - anchor.y)
    cross = (fix.x - anchor.x) * aby - (fix.y - anchor.y) * abx
    return abs(cross) / norm


def _synchronized_distance(fix: Fix, anchor: Fix, float_end: Fix) -> float:
    """Time-ratio distance from ``fix`` to the chord anchor–float."""
    delta_e = float_end.t - anchor.t
    if delta_e == 0.0:
        return math.hypot(fix.x - anchor.x, fix.y - anchor.y)
    ratio = (fix.t - anchor.t) / delta_e
    sx = anchor.x + ratio * (float_end.x - anchor.x)
    sy = anchor.y + ratio * (float_end.y - anchor.y)
    return math.hypot(fix.x - sx, fix.y - sy)


class StreamingOPW:
    """Push-based opening-window compressor.

    Args:
        epsilon: distance threshold in metres.
        criterion: ``"perpendicular"`` (streaming NOPW) or
            ``"synchronized"`` (streaming OPW-TR).
        max_speed_error: optional speed-difference threshold in m/s;
            setting it yields the streaming OPW-SP.
        max_window: optional bound on the open window's point count; when
            the window reaches it, the point before the current float is
            emitted as a forced break (BOPW-style), keeping memory O(1).

    Usage::

        opw = StreamingOPW(epsilon=50.0, criterion="synchronized")
        for fix in stream:
            for kept in opw.push(fix):
                sink(kept)
        for kept in opw.finish():
            sink(kept)
    """

    def __init__(
        self,
        epsilon: float,
        criterion: str = "synchronized",
        max_speed_error: float | None = None,
        max_window: int | None = None,
    ) -> None:
        self.epsilon = require_positive("epsilon", epsilon)
        if criterion not in _CRITERIA:
            raise ValueError(f"unknown criterion {criterion!r}; use one of {_CRITERIA}")
        self.criterion = criterion
        self._distance = (
            _synchronized_distance
            if criterion == "synchronized"
            else _perpendicular_distance
        )
        self.max_speed_error = (
            None
            if max_speed_error is None
            else require_positive("max_speed_error", max_speed_error)
        )
        if max_window is not None and max_window < 3:
            raise ValueError(f"max_window must be >= 3, got {max_window}")
        self.max_window = max_window
        self._window: list[Fix] = []
        self._emitted_any = False
        self._finished = False
        self.n_pushed = 0
        self.n_emitted = 0

    @property
    def algorithm(self) -> str:
        """Registry name of the configured variant."""
        if self.criterion == "perpendicular":
            return "nopw"
        return "opw-sp" if self.max_speed_error is not None else "opw-tr"

    @property
    def closed(self) -> bool:
        """True once :meth:`finish` has been called."""
        return self._finished

    @property
    def window_size(self) -> int:
        """Current number of buffered fixes (the open window)."""
        return len(self._window)

    @property
    def state_size(self) -> int:
        """Current working state in floats (three per buffered fix).

        Grows with the open window — bounded only when ``max_window``
        is set, unlike the one-pass compressors' built-in O(1) state.
        """
        return 3 * len(self._window)

    def sync_error_bound(self) -> float | None:
        """Guaranteed bound on the output's max synchronized error.

        With the synchronized criterion every emitted segment was fully
        validated against its own chord (including forced ``max_window``
        cuts, which break at the last fully validated float), so epsilon
        bounds the deviation; the perpendicular criterion promises
        nothing about synchronized error.
        """
        return self.epsilon if self.criterion == "synchronized" else None

    def _check_protocol(self, fix: Fix) -> None:
        if self._finished:
            raise StreamError("push after finish()")
        if self._window and fix.t <= self._window[-1].t:
            raise StreamError(
                f"time went backwards ({self._window[-1].t} -> {fix.t})"
            )

    def _speed_violation(self, j: int) -> bool:
        """Speed-difference criterion at window index ``j`` (interior)."""
        if self.max_speed_error is None:
            return False
        window = self._window
        v_prev = window[j - 1].speed_to(window[j])
        v_next = window[j].speed_to(window[j + 1])
        return abs(v_next - v_prev) > self.max_speed_error

    def _first_violation(self) -> int:
        """First violating interior window index, or -1."""
        window = self._window
        anchor = window[0]
        float_end = window[-1]
        for j in range(1, len(window) - 1):
            if self._distance(window[j], anchor, float_end) > self.epsilon:
                return j
            if self._speed_violation(j):
                return j
        return -1

    def _emit(self, fix: Fix) -> Fix:
        self._emitted_any = True
        self.n_emitted += 1
        return fix

    def push(self, fix: Fix) -> list[Fix]:
        """Feed one fix; returns the fixes decided as retained by it.

        The very first fix is always retained (and emitted immediately).
        A violation emits the break point; a forced ``max_window`` break
        emits the float's predecessor.
        """
        fix = Fix(float(fix[0]), float(fix[1]), float(fix[2]))
        self._check_protocol(fix)
        self.n_pushed += 1
        out: list[Fix] = []
        if not self._window and not self._emitted_any:
            self._window.append(fix)
            out.append(self._emit(fix))
            return out
        # A break restarts the window at the break point; the points that
        # were already buffered after it must then be replayed one at a
        # time so every prefix window is scanned — exactly the order the
        # batch opening-window driver checks chords in. ``pending`` holds
        # the fixes still to be absorbed.
        pending: list[Fix] = [fix]
        while pending:
            self._window.append(pending.pop(0))
            if len(self._window) < 3:
                continue
            violating = self._first_violation()
            if violating < 0:
                if (
                    self.max_window is not None
                    and len(self._window) >= self.max_window
                ):
                    violating = len(self._window) - 2  # forced BOPW-style cut
                else:
                    continue
            out.append(self._emit(self._window[violating]))
            rest = self._window[violating + 1 :]
            self._window = [self._window[violating]]
            pending[:0] = rest
        return out

    def finish(self) -> list[Fix]:
        """Close the stream; returns the final retained fixes.

        Always emits the last seen fix (unless it is the already-emitted
        anchor), so the compressed series covers the full stream — the
        paper's lost-tail counter-measure. Idempotent.
        """
        if self._finished:
            return []
        self._finished = True
        if not self._window:
            return []
        out: list[Fix] = []
        if not self._emitted_any:
            out.append(self._emit(self._window[0]))
        if len(self._window) > 1:
            out.append(self._emit(self._window[-1]))
        self._window = []
        return out


def _window(max_window: object) -> int | None:
    return None if max_window is None else int(max_window)  # type: ignore[call-overload]


def _make_nopw(*, epsilon: float, max_window: int | None = None) -> StreamingOPW:
    return StreamingOPW(float(epsilon), "perpendicular", max_window=_window(max_window))


def _make_opw_tr(*, epsilon: float, max_window: int | None = None) -> StreamingOPW:
    return StreamingOPW(float(epsilon), "synchronized", max_window=_window(max_window))


def _make_opw_sp(
    *, epsilon: float, max_speed_error: float, max_window: int | None = None
) -> StreamingOPW:
    return StreamingOPW(
        float(epsilon),
        "synchronized",
        max_speed_error=float(max_speed_error),
        max_window=_window(max_window),
    )


#: Shared spec keys of the opening-window family, with the CLI's aliases
#: mapped onto factory keyword names.
_OPW_SPEC_KEYS = {
    "epsilon": "epsilon",
    "max_dist_error": "epsilon",
    "max_window": "max_window",
}

register_online("nopw", _make_nopw, _OPW_SPEC_KEYS)
register_online("opw-tr", _make_opw_tr, _OPW_SPEC_KEYS)
register_online(
    "opw-sp",
    _make_opw_sp,
    {
        **_OPW_SPEC_KEYS,
        "speed": "max_speed_error",
        "max_speed_error": "max_speed_error",
    },
)
