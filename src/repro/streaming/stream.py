"""Point streams: the online view of moving-object data.

The paper distinguishes batch from online algorithms by whether the full
data series must be available (Sect. 2). This module provides the online
side's plumbing: a :class:`PointStream` delivers time-stamped fixes one at
a time (with protocol enforcement), and :func:`merge_streams` interleaves
several objects' streams into one time-ordered feed, the shape a tracking
server actually receives.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Iterator

import numpy as np

from repro.exceptions import StreamError
from repro.trajectory.trajectory import Trajectory
from repro.types import Fix

__all__ = ["PointStream", "merge_streams"]


class PointStream:
    """An iterator of fixes with strictly increasing timestamps.

    Wraps any fix iterable and enforces the stream protocol: time must
    strictly advance, values must be finite. Use
    :meth:`from_trajectory` to replay recorded data as a stream.

    Args:
        fixes: the underlying fix source.
        source_id: identifier carried for diagnostics.
    """

    def __init__(self, fixes: Iterable[Fix], source_id: str | None = None) -> None:
        self._fixes = iter(fixes)
        self.source_id = source_id
        self._last_time: float | None = None
        self._count = 0

    @classmethod
    def from_trajectory(cls, traj: Trajectory) -> "PointStream":
        """Replay a recorded trajectory as a stream."""
        return cls(iter(traj), traj.object_id)

    @property
    def delivered(self) -> int:
        """Number of fixes delivered so far."""
        return self._count

    def __iter__(self) -> Iterator[Fix]:
        return self

    def __next__(self) -> Fix:
        raw = next(self._fixes)
        fix = Fix(float(raw[0]), float(raw[1]), float(raw[2]))
        if not (np.isfinite(fix.t) and np.isfinite(fix.x) and np.isfinite(fix.y)):
            raise StreamError(
                f"stream {self.source_id!r}: non-finite fix {fix} "
                f"at position {self._count}"
            )
        if self._last_time is not None and fix.t <= self._last_time:
            raise StreamError(
                f"stream {self.source_id!r}: time went backwards "
                f"({self._last_time} -> {fix.t}) at position {self._count}"
            )
        self._last_time = fix.t
        self._count += 1
        return fix


def merge_streams(
    streams: dict[str, Iterable[Fix]],
) -> Iterator[tuple[str, Fix]]:
    """Interleave several fix streams into one time-ordered feed.

    Args:
        streams: mapping from object id to its fix iterable; each must be
            internally time-ordered.

    Yields:
        ``(object_id, fix)`` pairs in global timestamp order. Ties are
        broken by object id, deterministically.
    """
    heap: list[tuple[float, str, Fix, Iterator[Fix]]] = []
    for object_id, fixes in streams.items():
        iterator = iter(PointStream(fixes, object_id))
        first = next(iterator, None)
        if first is not None:
            heapq.heappush(heap, (first.t, object_id, first, iterator))
    while heap:
        when, object_id, fix, iterator = heapq.heappop(heap)
        yield object_id, fix
        nxt = next(iterator, None)
        if nxt is not None:
            heapq.heappush(heap, (nxt.t, object_id, nxt, iterator))
