"""Budget-constrained online compressors (SQUISH-E, STTrace, dead reckoning).

The paper's algorithms take an error threshold and let output size
float; production streams usually carry the opposite contract — a fixed
point budget per object. The compressors here honour such a budget by
*evicting* previously retained points when a new one arrives: each push
returns a mixed event list of retained :class:`~repro.types.Fix` entries
and :class:`~repro.streaming.base.Eviction` retractions, per the widened
:class:`~repro.streaming.base.OnlineCompressor` contract.

Both buffer-based algorithms share :class:`_BudgetBuffer`, a
deterministic priority-queue eviction core: a doubly-linked buffer of
retained points plus a lazy-invalidation min-heap keyed by
``(priority, insertion order)``, so eviction order is a pure function of
the pushed series — replaying the same fixes always evicts the same
points in the same order, which is what lets the serve tier's WAL
recovery reconstruct sessions bit-identically.

* :class:`StreamingSQUISH` follows SQUISH-E (Muckell et al., "Compression
  of trajectory data: a comprehensive evaluation and new approach"):
  each interior point carries an accumulated lower bound ``pi`` on the
  SED its removal would cost; its priority is ``pi + SED(pred, succ)``.
  On eviction the neighbours inherit ``max(pi, evicted priority)`` and
  their priorities are recomputed as
  ``max(old priority, pi + SED)`` — per-point priorities are therefore
  *monotonically non-decreasing*, and the SED of an evicted point with
  respect to the final output never exceeds the largest priority among
  evictions at or after its own (the pi inheritance is exactly what
  makes later removals account for earlier ones; both properties are
  Hypothesis-pinned in ``tests/streaming/test_budget.py``).
* :class:`StreamingSTTrace` follows STTrace (Potamias et al., "Sampling
  trajectory streams with spatiotemporal criteria"): priority is the
  plain SED with respect to the current buffer neighbours, recomputed
  (not accumulated) when a neighbour disappears.
* :class:`StreamingDeadReckoning` is the push form of
  :func:`repro.core.dead_reckoning.dead_reckoning_indices` — a
  predictor-based threshold compressor (no evictions) that emits exactly
  the points the batch function selects, bit for bit.

Budget compressors additionally support live *renegotiation*:
:meth:`~StreamingSQUISH.renegotiate` shrinks the budget mid-stream and
returns the eviction events that enforces, which is how the serve tier
degrades quality under admission pressure instead of rejecting sessions
(see ``docs/SERVING.md``).

Spec strings: ``squish:budget=200``, ``sttrace:budget=200``,
``dead-reckoning:epsilon=30``.
"""

from __future__ import annotations

import heapq
import math

from repro.core.base import require_positive
from repro.exceptions import StreamError
from repro.streaming.base import Eviction, PushEvent
from repro.streaming.registry import register_online
from repro.types import Fix

__all__ = [
    "StreamingDeadReckoning",
    "StreamingSQUISH",
    "StreamingSTTrace",
    "MIN_BUDGET",
]

#: The smallest admissible point budget: head and tail are never evicted.
MIN_BUDGET = 2


def _sed(pred: Fix, point: Fix, succ: Fix) -> float:
    """Synchronized Euclidean distance of ``point`` wrt chord pred→succ."""
    dt = succ.t - pred.t
    ratio = (point.t - pred.t) / dt
    sx = pred.x + ratio * (succ.x - pred.x)
    sy = pred.y + ratio * (succ.y - pred.y)
    return math.hypot(point.x - sx, point.y - sy)


class _Node:
    """One buffered point: linked-list neighbours + priority bookkeeping."""

    __slots__ = ("fix", "prev", "next", "order", "pi", "priority", "version", "alive")

    def __init__(self, fix: Fix, order: int) -> None:
        self.fix = fix
        self.prev: _Node | None = None
        self.next: _Node | None = None
        #: Insertion sequence number — the deterministic tie-break.
        self.order = order
        #: Accumulated cost floor (SQUISH-E's pi; unused by STTrace).
        self.pi = 0.0
        #: Current eviction priority; None while the node is an endpoint.
        self.priority: float | None = None
        #: Bumped whenever priority changes; stale heap entries skip.
        self.version = 0
        self.alive = True


class _BudgetBuffer:
    """Deterministic priority-queue eviction core.

    Holds the net retained set as a doubly-linked list (head and tail
    are never evictable) plus a min-heap of
    ``(priority, order, version, node)`` entries with lazy invalidation:
    entries for dead nodes or superseded versions are discarded at pop
    time. Ties on priority break on insertion order, so the eviction
    sequence is a pure function of the pushed fixes.
    """

    def __init__(self) -> None:
        self.head: _Node | None = None
        self.tail: _Node | None = None
        self.size = 0
        self._heap: list[tuple[float, int, int, _Node]] = []
        self._orders = 0

    def append(self, fix: Fix) -> _Node:
        node = _Node(fix, self._orders)
        self._orders += 1
        if self.tail is None:
            self.head = self.tail = node
        else:
            node.prev = self.tail
            self.tail.next = node
            self.tail = node
        self.size += 1
        return node

    def reprioritize(self, node: _Node, priority: float) -> None:
        """Set a node's priority and (re-)enter it in the heap."""
        node.priority = priority
        node.version += 1
        heapq.heappush(self._heap, (priority, node.order, node.version, node))

    def pop_min(self) -> _Node:
        """Remove and return the minimum-priority interior node."""
        while self._heap:
            priority, _, version, node = heapq.heappop(self._heap)
            if not node.alive or version != node.version:
                continue
            if node is self.head or node is self.tail:
                continue  # endpoint entries are stale by construction
            self._unlink(node)
            return node
        raise StreamError("budget buffer has no evictable point")

    def _unlink(self, node: _Node) -> None:
        node.alive = False
        if node.prev is not None:
            node.prev.next = node.next
        if node.next is not None:
            node.next.prev = node.prev
        if self.head is node:
            self.head = node.next
        if self.tail is node:
            self.tail = node.prev
        self.size -= 1

    def interior(self) -> list[_Node]:
        """The evictable nodes, head to tail (test/diagnostic hook)."""
        out: list[_Node] = []
        node = self.head.next if self.head is not None else None
        while node is not None and node is not self.tail:
            out.append(node)
            node = node.next
        return out


class _BudgetStreaming:
    """Shared push/finish state machine of the budget compressors.

    Subclasses set :attr:`algorithm` and implement the two priority
    hooks: :meth:`_enter_priority` (a point just became interior) and
    :meth:`_after_eviction` (its neighbours must be re-scored).

    Usage::

        compressor = StreamingSQUISH(budget=200)
        for fix in stream:
            for event in compressor.push(fix):
                apply(event)   # Fix = retain, Eviction = retract
        compressor.finish()
    """

    algorithm = "budget"

    def __init__(self, budget: int) -> None:
        budget = int(budget)
        if budget < MIN_BUDGET:
            raise ValueError(
                f"budget must be >= {MIN_BUDGET}, got {budget} "
                f"(head and tail are always retained)"
            )
        self.budget = budget
        self._buffer = _BudgetBuffer()
        self._finished = False
        self.n_pushed = 0
        self.n_emitted = 0
        #: Points retracted so far (evictions + renegotiations).
        self.n_evicted = 0
        #: ``(fix, priority at eviction)`` log, for tests and benches.
        self.eviction_log: list[tuple[Fix, float]] = []

    # -- priority hooks -------------------------------------------------

    def _enter_priority(self, node: _Node) -> float:
        raise NotImplementedError

    def _after_eviction(self, evicted: _Node) -> None:
        raise NotImplementedError

    # -- protocol surface -----------------------------------------------

    @property
    def closed(self) -> bool:
        """True once :meth:`finish` has been called."""
        return self._finished

    @property
    def state_size(self) -> int:
        """Working state in floats: the full buffer, 3 per point."""
        return 3 * self._buffer.size

    def sync_error_bound(self) -> None:
        """Budget compressors bound size, not error."""
        return None

    @property
    def buffer_len(self) -> int:
        """Net retained points currently held (never exceeds budget)."""
        return self._buffer.size

    def buffer_snapshot(self) -> list[tuple[Fix, float | None]]:
        """``(fix, priority)`` pairs head to tail; endpoints carry None.

        A test/diagnostic hook — the Hypothesis suite uses it to pin
        priority monotonicity across pushes.
        """
        out: list[tuple[Fix, float | None]] = []
        node = self._buffer.head
        while node is not None:
            endpoint = node is self._buffer.head or node is self._buffer.tail
            out.append((node.fix, None if endpoint else node.priority))
            node = node.next
        return out

    def _check_protocol(self, fix: Fix) -> None:
        if self._finished:
            raise StreamError("push after finish()")
        tail = self._buffer.tail
        if tail is not None and fix.t <= tail.fix.t:
            raise StreamError(f"time went backwards ({tail.fix.t} -> {fix.t})")

    def _evict_one(self) -> Eviction:
        node = self._buffer.pop_min()
        self.n_evicted += 1
        self.eviction_log.append((node.fix, float(node.priority or 0.0)))
        self._after_eviction(node)
        return Eviction(node.fix)

    def push(self, fix: Fix) -> list[PushEvent]:
        """Feed one fix; returns its events (one retain, maybe evictions).

        Every pushed fix is retained immediately; if that overflows the
        budget, the lowest-priority interior point is evicted in the same
        event list (retain first, then the eviction, so consumers can
        apply events in order).
        """
        fix = Fix(float(fix[0]), float(fix[1]), float(fix[2]))
        self._check_protocol(fix)
        self.n_pushed += 1
        previous_tail = self._buffer.tail
        self._buffer.append(fix)
        self.n_emitted += 1
        events: list[PushEvent] = [fix]
        if previous_tail is not None and previous_tail.prev is not None:
            # The old tail just became interior: it gets a priority now.
            self._buffer.reprioritize(
                previous_tail, self._enter_priority(previous_tail)
            )
        while self._buffer.size > self.budget:
            events.append(self._evict_one())
        return events

    def finish(self) -> list[PushEvent]:
        """Close the stream. The buffer was already emitted; idempotent."""
        if self._finished:
            return []
        self._finished = True
        return []

    def renegotiate(self, budget: int) -> list[PushEvent]:
        """Tighten (or relax) the budget mid-stream.

        Returns the :class:`~repro.streaming.base.Eviction` events a
        tighter budget forces, in deterministic priority order. The serve
        tier calls this under admission pressure; the events travel to
        the client exactly like push-time evictions and are WAL-logged so
        recovery replays them bit-identically.

        Raises:
            ValueError: ``budget`` below :data:`MIN_BUDGET`.
            StreamError: the stream is already finished.
        """
        budget = int(budget)
        if budget < MIN_BUDGET:
            raise ValueError(f"budget must be >= {MIN_BUDGET}, got {budget}")
        if self._finished:
            raise StreamError("renegotiate after finish()")
        self.budget = budget
        events: list[PushEvent] = []
        while self._buffer.size > self.budget:
            events.append(self._evict_one())
        return events


class StreamingSQUISH(_BudgetStreaming):
    """SQUISH-E: budget-bounded buffer with accumulated-error priorities.

    Each interior point's priority is ``pi + SED(pred, succ)`` where
    ``pi`` accumulates the priorities of evicted neighbours — a lower
    bound on the SED its own removal would introduce. Priorities only
    ever grow (``max`` on re-score), and the SED of any evicted point
    wrt the final output is bounded by the largest priority among
    evictions at or after its own.

    Args:
        budget: maximum net retained points per object (>= 2).
    """

    algorithm = "squish"

    def _enter_priority(self, node: _Node) -> float:
        assert node.prev is not None and node.next is not None
        return node.pi + _sed(node.prev.fix, node.fix, node.next.fix)

    def _after_eviction(self, evicted: _Node) -> None:
        inherited = float(evicted.priority or 0.0)
        for neighbour in (evicted.prev, evicted.next):
            if neighbour is None:
                continue
            neighbour.pi = max(neighbour.pi, inherited)
            if neighbour.prev is not None and neighbour.next is not None:
                rescored = neighbour.pi + _sed(
                    neighbour.prev.fix, neighbour.fix, neighbour.next.fix
                )
                new_priority = max(float(neighbour.priority or 0.0), rescored)
                self._buffer.reprioritize(neighbour, new_priority)


class StreamingSTTrace(_BudgetStreaming):
    """STTrace: budget-bounded buffer with instantaneous SED priorities.

    Priority is the plain SED wrt the current buffer neighbours and is
    *recomputed* (not accumulated) when a neighbour is evicted, so it
    may shrink as the buffer thins — the classic trade: tighter local
    optimality, no global error bound.

    Args:
        budget: maximum net retained points per object (>= 2).
    """

    algorithm = "sttrace"

    def _enter_priority(self, node: _Node) -> float:
        assert node.prev is not None and node.next is not None
        return _sed(node.prev.fix, node.fix, node.next.fix)

    def _after_eviction(self, evicted: _Node) -> None:
        for neighbour in (evicted.prev, evicted.next):
            if neighbour is None:
                continue
            if neighbour.prev is not None and neighbour.next is not None:
                self._buffer.reprioritize(
                    neighbour,
                    _sed(neighbour.prev.fix, neighbour.fix, neighbour.next.fix),
                )


class StreamingDeadReckoning:
    """Push form of the dead-reckoning update policy.

    Emits exactly the points
    :func:`repro.core.dead_reckoning.dead_reckoning_indices` selects —
    same float expressions, same anchor/velocity recurrence — so batch
    replay of a recorded stream is bit-identical. The one structural
    difference from the batch loop is causality: the batch form knows
    which point is last (always kept, never threshold-tested), so the
    streaming form holds the newest fix undecided until the next push
    proves it interior, and :meth:`finish` emits it as the tail.

    A threshold compressor: never evicts, no point budget.

    Args:
        epsilon: prediction-error threshold in metres. Bounds the
            transmitter-side prediction error, not the reconstruction's
            synchronized error (see the batch class's docstring).
    """

    algorithm = "dead-reckoning"

    def __init__(self, epsilon: float) -> None:
        self.epsilon = require_positive("epsilon", epsilon)
        self._anchor: Fix | None = None
        self._vx = 0.0
        self._vy = 0.0
        self._held: Fix | None = None
        self._prev: Fix | None = None  # fix pushed immediately before _held
        self._finished = False
        self.n_pushed = 0
        self.n_emitted = 0

    @property
    def closed(self) -> bool:
        """True once :meth:`finish` has been called."""
        return self._finished

    @property
    def state_size(self) -> int:
        """Anchor + velocity + held candidate + its predecessor."""
        size = 2  # velocity
        for fix in (self._anchor, self._held, self._prev):
            if fix is not None:
                size += 3
        return size

    def sync_error_bound(self) -> None:
        """The prediction bound does not bound the chord reconstruction."""
        return None

    def _emit(self, fix: Fix) -> Fix:
        self.n_emitted += 1
        return fix

    def _deviates(self, fix: Fix) -> bool:
        # Same expressions as dead_reckoning_indices, bit for bit.
        anchor = self._anchor
        assert anchor is not None
        elapsed = fix.t - anchor.t
        dx = fix.x - (anchor.x + self._vx * elapsed)
        dy = fix.y - (anchor.y + self._vy * elapsed)
        return math.sqrt(dx * dx + dy * dy) > self.epsilon

    def push(self, fix: Fix) -> list[Fix]:
        """Feed one fix; returns the fixes decided as retained by it."""
        fix = Fix(float(fix[0]), float(fix[1]), float(fix[2]))
        if self._finished:
            raise StreamError("push after finish()")
        previous = self._held if self._held is not None else self._anchor
        if previous is not None and fix.t <= previous.t:
            raise StreamError(f"time went backwards ({previous.t} -> {fix.t})")
        self.n_pushed += 1
        if self._anchor is None:
            self._anchor = fix
            self._prev = fix
            return [self._emit(fix)]
        out: list[Fix] = []
        held, prev = self._held, self._prev
        if held is not None and prev is not None and self._deviates(held):
            out.append(self._emit(held))
            self._anchor = held
            dt = held.t - prev.t
            self._vx = (held.x - prev.x) / dt
            self._vy = (held.y - prev.y) / dt
        self._prev = self._held if self._held is not None else self._prev
        self._held = fix
        return out

    def finish(self) -> list[Fix]:
        """Close the stream; emits the held tail. Idempotent."""
        if self._finished:
            return []
        self._finished = True
        out: list[Fix] = []
        if self._held is not None:
            out.append(self._emit(self._held))
        self._anchor = None
        self._held = None
        self._prev = None
        return out


def _make_squish(*, budget: int) -> StreamingSQUISH:
    return StreamingSQUISH(budget=int(budget))


def _make_sttrace(*, budget: int) -> StreamingSTTrace:
    return StreamingSTTrace(budget=int(budget))


def _make_dead_reckoning(*, epsilon: float) -> StreamingDeadReckoning:
    return StreamingDeadReckoning(float(epsilon))


register_online("squish", _make_squish, {"budget": "budget"})
register_online("sttrace", _make_sttrace, {"budget": "budget"})
register_online(
    "dead-reckoning",
    _make_dead_reckoning,
    {"epsilon": "epsilon", "max_dist_error": "epsilon"},
)
