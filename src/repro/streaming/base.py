"""The online-compressor protocol.

Every push-based compressor in this package — :class:`~repro.streaming
.online.StreamingOPW`, :class:`~repro.streaming.one_pass
.StreamingOPERB`, :class:`~repro.streaming.one_pass.StreamingCISED` —
implements the same small surface: feed fixes one at a time with
:meth:`~OnlineCompressor.push`, close the stream with
:meth:`~OnlineCompressor.finish`, observe progress through the
counters. Consumers (the serving layer, the storage ingestor, user
code) target this protocol, not a concrete class, so registering a new
online algorithm requires no changes on their side.

The protocol contract, which the shared conformance tests pin per
implementation:

* the first pushed fix is emitted immediately (the stream's head is
  always retained);
* timestamps must be strictly increasing — a non-increasing push raises
  :class:`~repro.exceptions.StreamError`;
* :meth:`~OnlineCompressor.finish` emits the held tail, is idempotent,
  and flips :attr:`~OnlineCompressor.closed`; pushing afterwards raises
  :class:`~repro.exceptions.StreamError`;
* emitted fixes form a subsequence of the pushed fixes, in push order,
  beginning with the first and (after ``finish``) ending with the last.

Budget-constrained compressors (:mod:`repro.streaming.budget`) need one
more power: a push may *retract* a previously retained point to stay
under a fixed point budget. Such a compressor yields
:class:`Eviction` events alongside plain retained fixes; consumers that
accumulate retained output apply each eviction by removing that fix.
The widened contract:

* a push returns an ordered event list of ``Fix`` (retain) and
  :class:`Eviction` (retract) entries; threshold compressors never
  evict, so their event lists stay plain fix lists;
* an evicted fix was previously returned as retained and has not been
  evicted before (no double eviction, no eviction of never-retained
  points);
* after applying all events in order, the net retained set is a
  time-ordered subsequence of the pushed fixes, still beginning with
  the first pushed fix and (after ``finish``) ending with the last.

:func:`partition_events` splits an event list into its retained and
evicted halves for consumers that track both.
"""

from __future__ import annotations

from typing import Iterable, NamedTuple, Protocol, Union, runtime_checkable

from repro.types import Fix

__all__ = ["Eviction", "OnlineCompressor", "PushEvent", "partition_events"]


class Eviction(NamedTuple):
    """A retraction: ``fix`` was retained earlier and is now dropped.

    Emitted by budget-constrained compressors when admitting a new point
    would exceed their point budget. Consumers that accumulate retained
    output must remove ``fix`` from it (match by timestamp — timestamps
    are unique within a stream).
    """

    fix: Fix


#: One element of a push result: a retained fix or an eviction of one.
PushEvent = Union[Fix, Eviction]


def partition_events(
    events: Iterable[PushEvent],
) -> tuple[list[Fix], list[Fix]]:
    """Split a push/finish event list into ``(retained, evicted)`` fixes.

    Keeps each half in event order. Threshold compressors never emit
    evictions, so for them the second list is always empty.
    """
    retained: list[Fix] = []
    evicted: list[Fix] = []
    for event in events:
        if isinstance(event, Eviction):
            evicted.append(event.fix)
        else:
            retained.append(event)
    return retained, evicted


@runtime_checkable
class OnlineCompressor(Protocol):
    """A push-based trajectory compressor.

    Structural protocol (``isinstance`` checks the surface, not the
    class): any object with these members is an online compressor.
    """

    #: Registry name of the algorithm this instance runs
    #: (e.g. ``"opw-tr"``, ``"operb"``).
    algorithm: str

    #: Fixes pushed so far.
    n_pushed: int

    #: Fixes emitted so far (including those returned by ``finish``).
    n_emitted: int

    def push(self, fix: Fix) -> Iterable[PushEvent]:
        """Feed one fix; returns the events it decided.

        Plain :class:`~repro.types.Fix` entries are newly retained
        points; :class:`Eviction` entries retract previously retained
        ones (budget compressors only — threshold compressors return
        plain fix lists).
        """
        ...

    def finish(self) -> Iterable[PushEvent]:
        """Close the stream; returns the final events.

        Idempotent: later calls return no events.
        """
        ...

    @property
    def closed(self) -> bool:
        """True once :meth:`finish` has been called."""
        ...

    @property
    def state_size(self) -> int:
        """Current per-session working state, in floats.

        The memory the compressor holds between pushes — the open
        window for the opening-window family (bounded only if
        ``max_window`` is set), a small constant for the one-pass
        algorithms.
        """
        ...

    def sync_error_bound(self) -> float | None:
        """Guaranteed bound on the output's max synchronized error.

        ``None`` when the algorithm promises no such bound.
        """
        ...
