"""The online-compressor protocol.

Every push-based compressor in this package — :class:`~repro.streaming
.online.StreamingOPW`, :class:`~repro.streaming.one_pass
.StreamingOPERB`, :class:`~repro.streaming.one_pass.StreamingCISED` —
implements the same small surface: feed fixes one at a time with
:meth:`~OnlineCompressor.push`, close the stream with
:meth:`~OnlineCompressor.finish`, observe progress through the
counters. Consumers (the serving layer, the storage ingestor, user
code) target this protocol, not a concrete class, so registering a new
online algorithm requires no changes on their side.

The protocol contract, which the shared conformance tests pin per
implementation:

* the first pushed fix is emitted immediately (the stream's head is
  always retained);
* timestamps must be strictly increasing — a non-increasing push raises
  :class:`~repro.exceptions.StreamError`;
* :meth:`~OnlineCompressor.finish` emits the held tail, is idempotent,
  and flips :attr:`~OnlineCompressor.closed`; pushing afterwards raises
  :class:`~repro.exceptions.StreamError`;
* emitted fixes form a subsequence of the pushed fixes, in push order,
  beginning with the first and (after ``finish``) ending with the last.
"""

from __future__ import annotations

from typing import Iterable, Protocol, runtime_checkable

from repro.types import Fix

__all__ = ["OnlineCompressor"]


@runtime_checkable
class OnlineCompressor(Protocol):
    """A push-based trajectory compressor.

    Structural protocol (``isinstance`` checks the surface, not the
    class): any object with these members is an online compressor.
    """

    #: Registry name of the algorithm this instance runs
    #: (e.g. ``"opw-tr"``, ``"operb"``).
    algorithm: str

    #: Fixes pushed so far.
    n_pushed: int

    #: Fixes emitted so far (including those returned by ``finish``).
    n_emitted: int

    def push(self, fix: Fix) -> Iterable[Fix]:
        """Feed one fix; returns the fixes decided as retained by it."""
        ...

    def finish(self) -> Iterable[Fix]:
        """Close the stream; returns the final retained fixes.

        Idempotent: later calls return no fixes.
        """
        ...

    @property
    def closed(self) -> bool:
        """True once :meth:`finish` has been called."""
        ...

    @property
    def state_size(self) -> int:
        """Current per-session working state, in floats.

        The memory the compressor holds between pushes — the open
        window for the opening-window family (bounded only if
        ``max_window`` is set), a small constant for the one-pass
        algorithms.
        """
        ...

    def sync_error_bound(self) -> float | None:
        """Guaranteed bound on the output's max synchronized error.

        ``None`` when the algorithm promises no such bound.
        """
        ...
