"""Online operation: point streams and incremental compression.

:class:`PointStream` replays or wraps live fix feeds with protocol
enforcement; :func:`merge_streams` interleaves a fleet's feeds. The
push-based compressors all implement the :class:`OnlineCompressor`
protocol: :class:`StreamingOPW` mirrors the batch opening-window family
(NOPW / OPW-TR / OPW-SP), :class:`StreamingOPERB` and
:class:`StreamingCISED` are the O(1)-state one-pass SED algorithms, and
the budget-constrained family (:class:`StreamingSQUISH`,
:class:`StreamingSTTrace`, :class:`StreamingDeadReckoning`) trades a
fixed point budget for unbounded error, retracting previously retained
points via :class:`Eviction` events. Construct by name or spec string
with :func:`make_online_compressor`; new algorithms plug in through
:func:`register_online`.
"""

from repro.streaming.base import (
    Eviction,
    OnlineCompressor,
    PushEvent,
    partition_events,
)
from repro.streaming.budget import (
    StreamingDeadReckoning,
    StreamingSQUISH,
    StreamingSTTrace,
)
from repro.streaming.one_pass import StreamingCISED, StreamingOPERB
from repro.streaming.online import StreamingOPW
from repro.streaming.registry import (
    available_online_compressors,
    make_online_compressor,
    register_online,
)
from repro.streaming.stream import PointStream, merge_streams

__all__ = [
    "Eviction",
    "OnlineCompressor",
    "PointStream",
    "PushEvent",
    "StreamingCISED",
    "StreamingDeadReckoning",
    "StreamingOPERB",
    "StreamingOPW",
    "StreamingSQUISH",
    "StreamingSTTrace",
    "available_online_compressors",
    "make_online_compressor",
    "merge_streams",
    "partition_events",
    "register_online",
]
