"""Online operation: point streams and incremental compression.

:class:`PointStream` replays or wraps live fix feeds with protocol
enforcement; :func:`merge_streams` interleaves a fleet's feeds;
:class:`StreamingOPW` compresses a stream push-by-push, selecting exactly
the points the corresponding batch algorithm (NOPW / OPW-TR / OPW-SP)
would.
"""

from repro.streaming.online import (
    STREAMABLE_ALGORITHMS,
    StreamingOPW,
    make_online_compressor,
)
from repro.streaming.stream import PointStream, merge_streams

__all__ = [
    "PointStream",
    "STREAMABLE_ALGORITHMS",
    "StreamingOPW",
    "make_online_compressor",
    "merge_streams",
]
