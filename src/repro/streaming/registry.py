"""Per-algorithm registry of online (push-based) compressors.

Mirrors :mod:`repro.core.registry` for the streaming side: each online
algorithm registers a keyword-only factory plus the spec keys it
understands, and :func:`make_online_compressor` turns a name or spec
string into a configured :class:`~repro.streaming.base
.OnlineCompressor`. Registering a new algorithm is one
:func:`register_online` call — spec-string support, CLI selection and
error messages listing the streamable names all follow from the
registry.

The built-in algorithms (the opening-window family in
:mod:`repro.streaming.online`, the one-pass family in
:mod:`repro.streaming.one_pass`) self-register on import; the public
functions import those modules lazily so the registry module itself
stays import-cycle-free.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Callable, Mapping

from repro.exceptions import StreamError
from repro.streaming.base import OnlineCompressor

__all__ = [
    "available_online_compressors",
    "make_online_compressor",
    "register_online",
]


@dataclass(frozen=True)
class _OnlineRegistration:
    factory: Callable[..., OnlineCompressor]
    spec_keys: Mapping[str, str]


_ONLINE: dict[str, _OnlineRegistration] = {}

#: Modules whose import registers the built-in online algorithms.
_BUILTIN_MODULES = (
    "repro.streaming.online",
    "repro.streaming.one_pass",
    "repro.streaming.budget",
)


def register_online(
    name: str,
    factory: Callable[..., OnlineCompressor],
    spec_keys: Mapping[str, str],
) -> None:
    """Register an online algorithm under a spec/CLI name.

    Args:
        name: registry name, normally matching the batch registry's
            (``"opw-tr"``, ``"operb"``, ...).
        factory: keyword-only callable building a configured compressor;
            a call with missing or unexpected keywords must raise
            ``TypeError`` (the plain ``def f(*, epsilon, ...)`` contract),
            which :func:`make_online_compressor` reports as ``ValueError``.
        spec_keys: mapping of accepted spec-string keys onto the
            factory's keyword names (identity entries for the canonical
            names, extra entries for CLI aliases such as ``speed``).

    Raises:
        ValueError: ``name`` is already registered.
    """
    if name in _ONLINE:
        raise ValueError(f"online algorithm {name!r} is already registered")
    _ONLINE[name] = _OnlineRegistration(factory, dict(spec_keys))


def _ensure_builtins() -> None:
    for module in _BUILTIN_MODULES:
        importlib.import_module(module)


def available_online_compressors() -> list[str]:
    """Sorted list of registered online algorithm names."""
    _ensure_builtins()
    return sorted(_ONLINE)


def make_online_compressor(
    name: str, epsilon: float | None = None, **params: object
) -> OnlineCompressor:
    """Construct an online compressor by registry name or spec string.

    Accepts the same unified spec grammar as
    :func:`repro.core.registry.make_compressor` —
    ``"opw-tr:epsilon=30"``, ``"operb:epsilon=30"``,
    ``"opw-sp:epsilon=30,max_speed_error=5"`` (``speed`` and
    ``max_dist_error`` alias as on the CLI, and an ``engine=`` entry is
    ignored: streaming has one engine) — or a bare name plus keyword
    parameters. Explicit keyword arguments override the spec's.

    Args:
        name: a registered online algorithm name, optionally with
            ``:key=value,...`` parameters.
        epsilon: distance threshold in metres (unless the spec sets it).
        **params: further algorithm parameters (``max_speed_error``,
            ``max_window``, ``m``, ...); ``None`` values are ignored.

    Raises:
        StreamError: a registered batch algorithm with no streaming form
            (e.g. ``"td-tr"``), or an unsupported spec parameter; the
            message lists the registered online names / supported keys.
        UnknownCompressorError: a name registered nowhere (also
            catchable as ``KeyError``).
        CompressorSpecError: a malformed spec string.
        ValueError: missing or inapplicable parameters (e.g. no
            ``epsilon``, or a speed threshold for an algorithm that
            takes none).
    """
    _ensure_builtins()
    from repro.core.registry import available_compressors, parse_compressor_spec

    spec = parse_compressor_spec(name)
    registration = _ONLINE.get(spec.name)
    if registration is None:
        streamable = ", ".join(sorted(_ONLINE))
        if spec.name in available_compressors():
            raise StreamError(
                f"{spec.name!r} is a batch-only algorithm with no streaming "
                f"form; streamable algorithms: {streamable}"
            )
        from repro.exceptions import UnknownCompressorError

        raise UnknownCompressorError(
            f"unknown online algorithm {spec.name!r}; use one of {streamable}"
        )

    spec_keys = registration.spec_keys
    kwargs: dict[str, object] = {}
    for key, value in spec.params:
        if key == "engine":
            continue
        if key not in spec_keys:
            raise StreamError(
                f"spec parameter {key!r} is not supported by the online "
                f"{spec.name!r} compressor; supported: "
                f"{', '.join(sorted(set(spec_keys)))}"
            )
        kwargs[spec_keys[key]] = value
    if epsilon is not None:
        kwargs["epsilon"] = epsilon
    for key, value in params.items():
        if value is not None:
            kwargs[spec_keys.get(key, key)] = value

    try:
        return registration.factory(**kwargs)
    except TypeError as exc:
        raise ValueError(f"{spec.name}: {exc}") from None
