"""Durable file I/O primitives: atomic writes and checksums.

Every file the library persists (store files, codec blobs inside them,
trajectory CSV/JSON/GPX, metrics and report JSON, checkpoint manifests)
funnels through :func:`write_atomic`, so a crash mid-write can never
leave a half-written file under the final name: data lands in a
temporary sibling, is fsynced, and is moved into place with the
all-or-nothing :func:`os.replace`. The checksum helpers are the shared
currency of the corruption-detection layer (codec record CRCs, store
record CRCs, checkpoint journal line CRCs).
"""

from __future__ import annotations

import json
import os
import tempfile
import zlib
from pathlib import Path
from typing import Any

__all__ = [
    "crc32",
    "crc32_text",
    "encode_crc_line",
    "decode_crc_line",
    "fsync_directory",
    "write_atomic",
    "write_atomic_json",
    "parse_on_malformed",
    "ON_MALFORMED_MODES",
]

#: The file-level malformed-input policies accepted by the readers and
#: the batch engine: ``"raise"``, ``"skip"``, or ``"quarantine:<dir>"``.
ON_MALFORMED_MODES = ("raise", "skip", "quarantine")


def crc32(data: bytes) -> int:
    """Unsigned CRC-32 of ``data`` (the library's standard checksum)."""
    return zlib.crc32(data) & 0xFFFFFFFF


def crc32_text(text: str) -> int:
    """Unsigned CRC-32 of a string's UTF-8 encoding."""
    return crc32(text.encode("utf-8"))


def encode_crc_line(payload: str) -> str:
    """Render one append-only log line: ``<crc32 hex8> <payload>\\n``.

    The shared line format of every append-only log in the library (the
    pipeline's checkpoint journal, the serve tier's write-ahead log): a
    fixed-width CRC-32 of the payload, one space, the payload, one
    newline. ``payload`` must not contain a newline.
    """
    return f"{crc32_text(payload):08x} {payload}\n"


def decode_crc_line(line: str) -> "str | None":
    """Validate one CRC-prefixed log line; returns its payload.

    Returns ``None`` for any damage — short line, malformed CRC field,
    checksum mismatch — which on an append-only log distinguishes a
    torn tail (droppable: the write never completed) from intact
    entries. The caller decides whether damage elsewhere is fatal.
    """
    if len(line) < 10 or line[8] != " ":
        return None
    crc_text, payload = line[:8], line[9:]
    try:
        stored_crc = int(crc_text, 16)
    except ValueError:
        return None
    if stored_crc != crc32_text(payload):
        return None
    return payload


def fsync_directory(directory: Path) -> None:
    """Flush a directory entry to disk (no-op where unsupported).

    After :func:`os.replace` the new *name* lives in the directory; on
    POSIX the rename itself is only durable once the directory is
    fsynced. Platforms that cannot fsync a directory (e.g. Windows)
    silently skip.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def write_atomic(
    path: "str | Path",
    data: "bytes | str",
    *,
    encoding: str = "utf-8",
    durable: bool = True,
) -> None:
    """Write ``data`` to ``path`` atomically (tmp file + fsync + replace).

    Readers either see the complete old file or the complete new file,
    never a torn mixture — even across a crash or power loss mid-write.

    Args:
        path: final destination; the temporary file is created next to
            it so the final :func:`os.replace` stays on one filesystem.
        data: bytes, or a string encoded with ``encoding``.
        encoding: text encoding for string data.
        durable: fsync the file (and its directory) before/after the
            rename. ``False`` keeps atomicity but skips the flushes —
            useful for tests and scratch output.
    """
    path = Path(path)
    if isinstance(data, str):
        data = data.encode(encoding)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            if durable:
                os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    if durable:
        fsync_directory(path.parent)


def write_atomic_json(
    path: "str | Path", payload: Any, *, indent: int | None = 2, durable: bool = True
) -> None:
    """Serialize ``payload`` as JSON and :func:`write_atomic` it."""
    write_atomic(
        path, json.dumps(payload, indent=indent, sort_keys=False) + "\n",
        durable=durable,
    )


def parse_on_malformed(value: str) -> tuple[str, "Path | None"]:
    """Parse an ``on_malformed`` policy string.

    Returns:
        ``(mode, quarantine_dir)`` where mode is ``"raise"``, ``"skip"``
        or ``"quarantine"`` and the directory is set only for the latter.

    Raises:
        ValueError: for unknown policies or a quarantine with no dir.
    """
    text = str(value).strip()
    if text in ("raise", "skip"):
        return text, None
    if text.startswith("quarantine:"):
        directory = text.split(":", 1)[1].strip()
        if not directory:
            raise ValueError("quarantine policy needs a directory: 'quarantine:<dir>'")
        return "quarantine", Path(directory)
    raise ValueError(
        f"unknown on_malformed policy {value!r}; "
        f"use 'raise', 'skip' or 'quarantine:<dir>'"
    )
