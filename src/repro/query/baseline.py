"""Brute-force decode-everything reference answers.

The honesty yardstick for :class:`~repro.query.engine.QueryEngine`:
every function here decodes whole trajectories and answers from first
principles, with no summaries, no pruning and no partial decoding. The
differential test suite asserts the engine's answers are identical, and
the query benchmark uses these as the "load everything" baseline.

:func:`window_hit` is also the serving tier's overlay predicate for
sessions still in memory — live fixes are already decoded, so the
brute-force test *is* the right test there.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.bbox import BBox
from repro.geometry.clip import segment_intersects_bbox
from repro.storage.store import TrajectoryStore, effective_query_box
from repro.trajectory.trajectory import Trajectory

__all__ = [
    "window_hit",
    "brute_position",
    "brute_window",
    "brute_nearest",
]


def window_hit(traj: Trajectory, t0: float, t1: float, box: BBox) -> bool:
    """Whether ``traj`` passes through ``box`` inside ``[t0, t1]``.

    The samples inside the window form one contiguous run (timestamps
    are strictly increasing); the run matches when its single sample
    lies in the box, or any of its segments intersects the box —
    exactly the store's slice-then-verify semantics.
    """
    mask = (traj.t >= t0) & (traj.t <= t1)
    hits = np.nonzero(mask)[0]
    if hits.size == 0:
        return False
    if hits.size == 1:
        i = int(hits[0])
        return box.contains_point(float(traj.xy[i, 0]), float(traj.xy[i, 1]))
    for i in range(int(hits[0]), int(hits[-1])):
        if segment_intersects_bbox(traj.xy[i], traj.xy[i + 1], box):
            return True
    return False


def brute_position(store: TrajectoryStore, object_id: str, when: float) -> np.ndarray:
    """Full-decode ``position_at`` (raises like the trajectory model)."""
    return store.get(object_id).position_at(when)


def brute_window(
    store: TrajectoryStore,
    t0: float,
    t1: float,
    box: BBox | None = None,
    mode: str = "stored",
) -> list[str]:
    """Full-decode window answer over every stored object."""
    if box is None:
        return store.query_time_window(t0, t1)
    out = []
    for key in store.object_ids():
        rec = store.record(key)
        effective = effective_query_box(box, rec, mode)
        if effective is None:
            continue
        if window_hit(store.get(key), t0, t1, effective):
            out.append(key)
    return out


def brute_nearest(
    store: TrajectoryStore, x: float, y: float, when: float, k: int = 1
) -> list[tuple[str, float]]:
    """Full-decode k-nearest answer over every stored object."""
    target = np.array([float(x), float(y)])
    ranked: list[tuple[float, str]] = []
    for key in store.object_ids():
        traj = store.get(key)
        if not traj.covers_time(when):
            continue
        position = traj.position_at(when)
        ranked.append((float(np.hypot(*(position - target))), key))
    ranked.sort()
    return [(key, distance) for distance, key in ranked[:k]]
