"""Queries over compressed trajectory records.

The store compresses trajectories so that position queries stay
answerable within a known synchronized error; this package makes that
promise operational *without decompressing everything*:

* :mod:`repro.query.summaries` — per-object, time-partitioned bounding
  summaries (bbox + time span per partition, quantized outward to a
  configurable grid), built in one pass over an encoded blob and
  persisted in the store's version-4 footer;
* :mod:`repro.query.engine` — a :class:`QueryEngine` answering
  ``position_at`` / ``window`` / ``nearest`` by pruning on summaries and
  decoding only the partitions that survive;
* :mod:`repro.query.baseline` — the brute-force decode-everything
  reference the differential tests and benchmarks compare against.

Exports resolve lazily: the storage layer imports
:mod:`repro.query.summaries` while the engine imports the storage layer,
so an eager ``__init__`` would close an import cycle.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "SummaryConfig",
    "PartitionSummary",
    "ObjectSummary",
    "build_summary",
    "QueryEngine",
    "PositionAnswer",
    "NearestAnswer",
]

_HOMES = {
    "SummaryConfig": "repro.query.summaries",
    "PartitionSummary": "repro.query.summaries",
    "ObjectSummary": "repro.query.summaries",
    "build_summary": "repro.query.summaries",
    "QueryEngine": "repro.query.engine",
    "PositionAnswer": "repro.query.engine",
    "NearestAnswer": "repro.query.engine",
}


def __getattr__(name: str) -> Any:
    home = _HOMES.get(name)
    if home is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(home), name)
