"""Time-partitioned bounding summaries of encoded trajectory records.

The PPQ-Trajectory idea (arXiv:2010.13721) adapted to this codec: each
stored blob is split into fixed-point-count partitions, and for each
partition we keep

* a *restart checkpoint* — the byte offset of its first point plus the
  absolute quantized integers of the point just before it — so the delta
  chain can be re-entered mid-blob (:func:`repro.storage.codec.decode_partition`),
* its time span and spatial bounding box, quantized **outward** to a
  configurable grid.

Outward quantization keeps the summary conservative: a partition whose
quantized box misses the query can never contain an answer, so pruning
on summaries is exact. The grid also makes the summary cheap to store
(coarse integers, small varints) and stable across float round-trips —
the footer serialization below reproduces the in-memory floats
bit-identically.

Partition ``k`` owns stored points ``[k*stride, (k+1)*stride)`` but its
bounds also cover the bridging point ``k*stride - 1``, so every segment
of the piecewise-linear path — including segments that cross a partition
boundary — is bounded by exactly one partition.
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass
from typing import Mapping

from repro.exceptions import CodecError, CorruptRecordError
from repro.geometry.bbox import BBox
from repro.io_util import crc32
from repro.storage.codec import (
    decode_varint,
    encode_varint,
    scan_partitions,
    unzigzag,
    zigzag,
)

__all__ = [
    "SummaryConfig",
    "PartitionSummary",
    "ObjectSummary",
    "build_summary",
    "encode_footer",
    "parse_footer",
    "FOOTER_MAGIC",
]

FOOTER_MAGIC = b"RSUM"
_FOOTER_VERSION = 1


@dataclass(frozen=True, slots=True)
class SummaryConfig:
    """Partitioning and quantization parameters.

    Args:
        partition_points: stored points per partition; smaller values
            prune harder but cost more summary bytes.
        grid_m: spatial grid the partition boxes are rounded outward to.
        time_grid_s: temporal grid the partition spans are rounded
            outward to.
    """

    partition_points: int = 64
    grid_m: float = 25.0
    time_grid_s: float = 1.0

    def __post_init__(self) -> None:
        if self.partition_points < 1:
            raise ValueError(
                f"partition_points must be >= 1, got {self.partition_points}"
            )
        if self.grid_m <= 0 or self.time_grid_s <= 0:
            raise ValueError("summary grids must be positive")


@dataclass(frozen=True, slots=True)
class PartitionSummary:
    """Checkpoint and outward-quantized bounds of one blob partition."""

    #: Byte offset of the partition's first point varints in the blob.
    offset: int
    #: Absolute quantized ``(t, x, y)`` of the point before the
    #: partition (delta base, prepended on decode), ``None`` for the
    #: first partition.
    prev: tuple[int, int, int] | None
    #: Stored points owned by the partition (excludes the bridge point).
    n_points: int
    #: Quantized-outward time span covered (bridge point included).
    t_lo: float
    t_hi: float
    #: Quantized-outward spatial bounds covered (bridge point included).
    bbox: BBox

    def covers_time(self, when: float) -> bool:
        """True when the quantized time span contains ``when``."""
        return self.t_lo <= when <= self.t_hi

    def overlaps_window(self, t0: float, t1: float) -> bool:
        """True when the quantized time span intersects ``[t0, t1]``."""
        return self.t_lo <= t1 and self.t_hi >= t0


@dataclass(frozen=True, slots=True)
class ObjectSummary:
    """All partition summaries of one stored record, plus their union."""

    object_id: str
    n_points: int
    partitions: tuple[PartitionSummary, ...]
    #: Union of the partition spans/boxes — the record-level prefilter.
    t_lo: float
    t_hi: float
    bbox: BBox

    @classmethod
    def from_partitions(
        cls, object_id: str, n_points: int, parts: tuple[PartitionSummary, ...]
    ) -> "ObjectSummary":
        """Build the record-level summary as the union of ``parts``."""
        return cls(
            object_id,
            n_points,
            parts,
            parts[0].t_lo,
            parts[-1].t_hi,
            BBox(
                min(p.bbox.min_x for p in parts),
                min(p.bbox.min_y for p in parts),
                max(p.bbox.max_x for p in parts),
                max(p.bbox.max_y for p in parts),
            ),
        )

    def overlaps_window(self, t0: float, t1: float) -> bool:
        """True when the record's quantized time span intersects ``[t0, t1]``."""
        return self.t_lo <= t1 and self.t_hi >= t0

    def to_wire(self) -> dict:
        """JSON-friendly form for the serve ``summaries`` verb.

        Checkpoint internals (offsets, restart state) stay private to
        the store; the wire form carries only the prunable bounds.
        """
        return {
            "object": self.object_id,
            "n_points": self.n_points,
            "partitions": [
                {
                    "t0": part.t_lo,
                    "t1": part.t_hi,
                    "bbox": [
                        part.bbox.min_x, part.bbox.min_y,
                        part.bbox.max_x, part.bbox.max_y,
                    ],
                    "n": part.n_points,
                }
                for part in self.partitions
            ],
        }


def _grid_floor(value: float, grid: float) -> int:
    """Largest ``n`` with ``n * grid <= value`` (robust to division ulps)."""
    n = math.floor(value / grid)
    if n * grid > value:
        n -= 1
    return n


def _grid_ceil(value: float, grid: float) -> int:
    """Smallest ``n`` with ``n * grid >= value`` (robust to division ulps)."""
    n = math.ceil(value / grid)
    if n * grid < value:
        n += 1
    return n


def build_summary(object_id: str, blob: bytes, config: SummaryConfig) -> ObjectSummary:
    """Summarize an encoded blob in one linear pass (no full decode)."""
    layout, raw = scan_partitions(blob, config.partition_points)
    t_res = layout.time_resolution_s
    c_res = layout.coord_resolution_m
    parts = []
    for part in raw:
        t_lo_g = _grid_floor(part.t_lo_q * t_res, config.time_grid_s)
        t_hi_g = _grid_ceil(part.t_hi_q * t_res, config.time_grid_s)
        x_lo_g = _grid_floor(part.x_lo_q * c_res, config.grid_m)
        x_hi_g = _grid_ceil(part.x_hi_q * c_res, config.grid_m)
        y_lo_g = _grid_floor(part.y_lo_q * c_res, config.grid_m)
        y_hi_g = _grid_ceil(part.y_hi_q * c_res, config.grid_m)
        parts.append(PartitionSummary(
            offset=part.offset,
            prev=part.prev,
            n_points=part.n_points,
            t_lo=t_lo_g * config.time_grid_s,
            t_hi=t_hi_g * config.time_grid_s,
            bbox=BBox(
                x_lo_g * config.grid_m, y_lo_g * config.grid_m,
                x_hi_g * config.grid_m, y_hi_g * config.grid_m,
            ),
        ))
    return ObjectSummary.from_partitions(object_id, layout.n_points, tuple(parts))


# ---------------------------------------------------------------------- #
# Store-footer serialization (file version 4)
#
#   b"RSUM" | u8 version | <Idd> partition_points grid_m time_grid_s |
#   varint n_objects | n_objects x object entry | u32 CRC-32
#
# Object entry:
#   varint id_len | id utf-8 | varint n_points | varint n_partitions |
#   per partition: varint offset_delta | varint n_points |
#     (partitions after the first) zigzag prev_t prev_x prev_y |
#     zigzag t_lo_g t_hi_g x_lo_g x_hi_g y_lo_g y_hi_g
#
# Bounds are stored as grid multiples, so decode reproduces the
# in-memory floats (``n * grid``) bit-identically. The CRC covers the
# whole footer: a torn or flipped footer is detected independently of
# the record region.
# ---------------------------------------------------------------------- #


def encode_footer(
    summaries: Mapping[str, ObjectSummary], config: SummaryConfig
) -> bytes:
    """Serialize summaries as a store-file footer block."""
    out = bytearray()
    out += FOOTER_MAGIC
    out.append(_FOOTER_VERSION)
    out += struct.pack(
        "<Idd", config.partition_points, config.grid_m, config.time_grid_s
    )
    encode_varint(len(summaries), out)
    for key in sorted(summaries):
        summary = summaries[key]
        ident = key.encode("utf-8")
        encode_varint(len(ident), out)
        out += ident
        encode_varint(summary.n_points, out)
        encode_varint(len(summary.partitions), out)
        prev_offset = 0
        for part in summary.partitions:
            encode_varint(part.offset - prev_offset, out)
            prev_offset = part.offset
            encode_varint(part.n_points, out)
            if part.prev is not None:
                for value in part.prev:
                    encode_varint(zigzag(value), out)
            encode_varint(zigzag(round(part.t_lo / config.time_grid_s)), out)
            encode_varint(zigzag(round(part.t_hi / config.time_grid_s)), out)
            encode_varint(zigzag(round(part.bbox.min_x / config.grid_m)), out)
            encode_varint(zigzag(round(part.bbox.max_x / config.grid_m)), out)
            encode_varint(zigzag(round(part.bbox.min_y / config.grid_m)), out)
            encode_varint(zigzag(round(part.bbox.max_y / config.grid_m)), out)
    out += struct.pack("<I", crc32(bytes(out)))
    return bytes(out)


def parse_footer(
    data: bytes, offset: int
) -> tuple[SummaryConfig, dict[str, ObjectSummary], int]:
    """Parse a footer written by :func:`encode_footer` at ``offset``.

    Returns ``(config, summaries, end_offset)``.

    Raises:
        CodecError: malformed or truncated footer.
        CorruptRecordError: footer checksum mismatch.
    """
    start = offset
    if data[offset : offset + 4] != FOOTER_MAGIC:
        raise CodecError("not a summary footer (bad magic)")
    offset += 4
    if offset >= len(data):
        raise CodecError("truncated summary footer")
    version = data[offset]
    offset += 1
    if version != _FOOTER_VERSION:
        raise CodecError(f"unsupported summary footer version {version}")
    if offset + 20 > len(data):
        raise CodecError("truncated summary footer header")
    partition_points, grid_m, time_grid_s = struct.unpack_from("<Idd", data, offset)
    offset += 20
    try:
        config = SummaryConfig(partition_points, grid_m, time_grid_s)
    except ValueError as exc:
        raise CodecError(f"invalid summary config in footer: {exc}") from None
    body_end = len(data) - 4
    n_objects, offset = decode_varint(data, offset)
    summaries: dict[str, ObjectSummary] = {}
    for _ in range(n_objects):
        id_len, offset = decode_varint(data, offset)
        if offset + id_len > body_end:
            raise CodecError("truncated summary object id")
        key = data[offset : offset + id_len].decode("utf-8")
        offset += id_len
        n_points, offset = decode_varint(data, offset)
        n_parts, offset = decode_varint(data, offset)
        parts = []
        prev_offset = 0
        for index in range(n_parts):
            delta, offset = decode_varint(data, offset)
            part_offset = prev_offset + delta
            prev_offset = part_offset
            part_points, offset = decode_varint(data, offset)
            prev: tuple[int, int, int] | None = None
            if index:
                restart = []
                for _ in range(3):
                    value, offset = decode_varint(data, offset)
                    restart.append(unzigzag(value))
                prev = (restart[0], restart[1], restart[2])
            grids = []
            for _ in range(6):
                value, offset = decode_varint(data, offset)
                grids.append(unzigzag(value))
            t_lo_g, t_hi_g, x_lo_g, x_hi_g, y_lo_g, y_hi_g = grids
            # Structural sanity before building value objects: corrupt
            # bytes must surface as codec errors, not constructor
            # failures (the footer CRC sits after the entries).
            if part_points < 1 or t_lo_g > t_hi_g or x_lo_g > x_hi_g \
                    or y_lo_g > y_hi_g:
                raise CodecError("malformed summary partition entry")
            parts.append(PartitionSummary(
                offset=part_offset,
                prev=prev,
                n_points=part_points,
                t_lo=t_lo_g * time_grid_s,
                t_hi=t_hi_g * time_grid_s,
                bbox=BBox(
                    x_lo_g * grid_m, y_lo_g * grid_m,
                    x_hi_g * grid_m, y_hi_g * grid_m,
                ),
            ))
        if key in summaries:
            raise CodecError(f"duplicate summary entry for {key!r}")
        if not parts:
            raise CodecError(f"summary entry for {key!r} has no partitions")
        summaries[key] = ObjectSummary.from_partitions(key, n_points, tuple(parts))
    if offset != body_end:
        raise CodecError(
            f"{body_end - offset} unread bytes before the footer checksum"
        )
    (stored_crc,) = struct.unpack_from("<I", data, body_end)
    actual_crc = crc32(data[start:body_end])
    if stored_crc != actual_crc:
        raise CorruptRecordError(
            f"summary footer checksum mismatch: stored {stored_crc:#010x}, "
            f"computed {actual_crc:#010x}"
        )
    return config, summaries, len(data)
