"""Summary-pruned queries over a compressed trajectory store.

The engine answers the three moving-object queries of the paper's
motivating application — "where was object X at time t", window, and
k-nearest — while decoding only the blob partitions whose
:mod:`summaries <repro.query.summaries>` survive pruning. It never
performs a whole-store load.

Exactness contract: every answer is bit-identical to the brute-force
answer computed by decoding everything (:mod:`repro.query.baseline`),
because

* partition summaries are quantized *outward* from decoded geometry, so
  pruning only ever discards partitions that cannot contain an answer;
* a decoded partition carries its bridging sample, so its rows are the
  exact rows of a full decode and every segment is examined in exactly
  one partition;
* interpolation runs through the same
  :meth:`~repro.trajectory.trajectory.Trajectory.position_at` code path
  on the same float values.

Time/space prefilters deliberately use summaries rather than the
catalog's pre-quantization extents: decoded geometry can shift by up to
half a quantum, and the summaries are the bounds that are conservative
with respect to what a decode actually returns. The spatial candidate
sweep pads the query box by one coordinate quantum for the same reason
(the grid index is built from pre-quantization samples).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ObjectNotFoundError  # noqa: F401 - re-raised to callers
from repro.geometry.bbox import BBox
from repro.geometry.clip import segment_intersects_bbox
from repro.obs import Registry, get_registry
from repro.storage.codec import blob_layout, decode_partition
from repro.storage.store import StoredRecord, TrajectoryStore, effective_query_box
from repro.query.summaries import ObjectSummary, PartitionSummary
from repro.trajectory.trajectory import Trajectory

__all__ = ["PositionAnswer", "NearestAnswer", "QueryEngine"]


@dataclass(frozen=True, slots=True)
class PositionAnswer:
    """An interpolated position with the record's honesty margin."""

    object_id: str
    t: float
    x: float
    y: float
    #: The stored geometry's synchronized error bound against the raw
    #: movement (compressor guarantee + codec quantization slack), or
    #: ``None`` when the ingest path gave no guarantee.
    error_bound_m: float | None


@dataclass(frozen=True, slots=True)
class NearestAnswer:
    """One ranked answer of a k-nearest query."""

    object_id: str
    distance_m: float
    x: float
    y: float
    error_bound_m: float | None


class _QueryStats:
    """Per-query decode accounting, flushed to the registry afterwards."""

    __slots__ = ("considered", "decoded", "decoded_bytes", "decoded_points", "records")

    def __init__(self) -> None:
        self.considered = 0
        self.decoded = 0
        self.decoded_bytes = 0
        self.decoded_points = 0
        self.records: set[str] = set()


def _bbox_distance(x: float, y: float, box: BBox) -> float:
    """Distance from ``(x, y)`` to the closed rectangle (0 inside)."""
    dx = max(box.min_x - x, 0.0, x - box.max_x)
    dy = max(box.min_y - y, 0.0, y - box.max_y)
    return math.hypot(dx, dy)


class QueryEngine:
    """Answers position/window/nearest queries by partition pruning.

    Args:
        store: the compressed store to query; live inserts are picked up
            immediately (summaries are maintained incrementally).
        metrics: registry for query instrumentation; falls back to the
            ambient :func:`repro.obs.get_registry`.
    """

    def __init__(
        self, store: TrajectoryStore, metrics: Registry | None = None
    ) -> None:
        self.store = store
        self.metrics = metrics

    def _registry(self) -> Registry:
        return self.metrics if self.metrics is not None else get_registry()

    # ------------------------------------------------------------------ #
    # Decode plumbing
    # ------------------------------------------------------------------ #

    def _decode(
        self, rec: StoredRecord, part: PartitionSummary, stats: _QueryStats
    ) -> tuple[np.ndarray, np.ndarray]:
        """Decode one partition (bridge included), with accounting."""
        layout = blob_layout(rec.blob)
        t, xy, end = decode_partition(
            rec.blob, layout, part.offset, part.n_points, part.prev
        )
        stats.decoded += 1
        stats.decoded_bytes += end - part.offset
        stats.decoded_points += len(t)
        stats.records.add(rec.object_id)
        return t, xy

    def _flush(self, verb: str, stats: _QueryStats) -> None:
        registry = self._registry()
        registry.counter("queries").inc()
        registry.counter(f"queries_{verb}").inc()
        registry.counter("query_decoded_records").inc(len(stats.records))
        registry.counter("query_decoded_bytes").inc(stats.decoded_bytes)
        registry.counter("query_decoded_points").inc(stats.decoded_points)
        if stats.considered:
            registry.gauge("query_prune_ratio").set(
                1.0 - stats.decoded / stats.considered
            )

    def _position(
        self,
        rec: StoredRecord,
        summary: ObjectSummary,
        when: float,
        stats: _QueryStats,
    ) -> np.ndarray | None:
        """Interpolated position, or ``None`` when the decoded interval
        does not cover ``when``.

        The accepting partition is the one owning the segment a global
        ``searchsorted`` would select: the partition whose decoded rows
        satisfy ``t[0] <= when < t[-1]`` (the final partition also
        accepts ``when == t[-1]``), which makes the interpolation
        bit-identical to a full decode.
        """
        last = summary.partitions[-1]
        stats.considered += len(summary.partitions)
        for part in summary.partitions:
            if not part.covers_time(when):
                continue
            t, xy = self._decode(rec, part, stats)
            if when < t[0] or when > t[-1]:
                continue
            if when == t[-1] and part is not last:
                continue
            traj = Trajectory(t, xy, rec.object_id, _validated=True)
            return traj.position_at(when)
        return None

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def position_at(self, object_id: str, when: float) -> PositionAnswer:
        """Interpolated position of ``object_id`` at time ``when``.

        Raises:
            ObjectNotFoundError: unknown id.
            ValueError: ``when`` outside the stored interval.
        """
        rec = self.store.record(object_id)
        stats = _QueryStats()
        with self._registry().timer("query.position.s").time():
            summary = self.store.summary(object_id)
            position = self._position(rec, summary, float(when), stats)
        self._flush("position", stats)
        if position is None:
            raise ValueError(
                f"time {when} outside stored interval of {object_id!r}"
            )
        return PositionAnswer(
            object_id, float(when),
            float(position[0]), float(position[1]),
            rec.sync_error_bound_m,
        )

    def window(
        self,
        t0: float,
        t1: float,
        box: BBox | None = None,
        mode: str = "stored",
    ) -> list[str]:
        """Ids matching a time window, optionally restricted to a box.

        Without ``box`` this is the catalog-interval overlap query
        (exactly :meth:`TrajectoryStore.query_time_window`). With a box
        the answer is defined on decoded geometry: an object matches
        when an in-window sample lies in the (mode-adjusted) box or an
        in-window segment intersects it — identical to
        :meth:`TrajectoryStore.query_bbox` restricted to the window, but
        computed from only the partitions that survive pruning.
        """
        t0, t1 = float(t0), float(t1)
        if t1 < t0:
            raise ValueError(f"empty time window [{t0}, {t1}]")
        if mode not in ("stored", "possibly", "definitely"):
            raise ValueError(f"unknown query mode {mode!r}")
        if box is None:
            out = self.store.query_time_window(t0, t1)
            self._flush("window", _QueryStats())
            return out
        stats = _QueryStats()
        with self._registry().timer("query.window.s").time():
            # Pad by one coordinate quantum: the grid index covers
            # pre-quantization samples, the answer is defined on decoded
            # (quantized) geometry.
            pad = self.store.coord_resolution_m
            if mode == "possibly":
                pad += self.store.max_sync_error_bound()
            out = []
            for key in sorted(self.store.spatial_candidates(box.expanded(pad))):
                rec = self.store.record(key)
                effective = effective_query_box(box, rec, mode)
                if effective is None:
                    continue
                summary = self.store.summary(key)
                if not summary.overlaps_window(t0, t1):
                    continue
                if not summary.bbox.intersects(effective):
                    continue
                if self._window_hit(rec, summary, t0, t1, effective, stats):
                    out.append(key)
        self._flush("window", stats)
        return out

    def _window_hit(
        self,
        rec: StoredRecord,
        summary: ObjectSummary,
        t0: float,
        t1: float,
        box: BBox,
        stats: _QueryStats,
    ) -> bool:
        """Decoded-geometry window test over surviving partitions.

        A match is an in-window sample inside ``box`` or a segment with
        both endpoints in the window intersecting ``box``. Each global
        segment lives in exactly one partition (bridge included), and an
        in-window sample inside the box always has an in-window incident
        segment when the object has two or more in-window samples — so
        the per-partition test reproduces the slice-then-verify answer.
        """
        stats.considered += len(summary.partitions)
        for part in summary.partitions:
            if not part.overlaps_window(t0, t1):
                continue
            if not part.bbox.intersects(box):
                continue
            t, xy = self._decode(rec, part, stats)
            in_window = (t >= t0) & (t <= t1)
            hits = np.nonzero(in_window)[0]
            if hits.size == 0:
                continue
            for i in hits:
                if box.contains_point(float(xy[i, 0]), float(xy[i, 1])):
                    return True
                if i + 1 < len(t) and in_window[i + 1]:
                    if segment_intersects_bbox(xy[i], xy[i + 1], box):
                        return True
        return False

    def nearest(
        self, x: float, y: float, when: float, k: int = 1
    ) -> list[NearestAnswer]:
        """The ``k`` objects nearest to ``(x, y)`` at time ``when``.

        Candidates are ranked by their summary lower bound (distance to
        the covering partition's box) and decoded in that order; the
        scan stops as soon as the next lower bound exceeds the current
        k-th distance. Ties are broken by object id, identical to the
        brute-force ranking.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        x, y, when = float(x), float(y), float(when)
        target = np.array([x, y])
        stats = _QueryStats()
        with self._registry().timer("query.nearest.s").time():
            # The interval index holds catalog (pre-quantization)
            # intervals; pad by one time quantum so no object whose
            # decoded interval covers ``when`` is missed.
            pad = self.store.time_resolution_s
            entries: list[tuple[float, str]] = []
            for key in self.store.query_time_window(when - pad, when + pad):
                summary = self.store.summary(key)
                bound = math.inf
                for part in summary.partitions:
                    if part.covers_time(when):
                        bound = min(bound, _bbox_distance(x, y, part.bbox))
                if math.isfinite(bound):
                    # One ulp down: the bound must stay below every true
                    # distance even after hypot rounding.
                    entries.append((math.nextafter(bound, -math.inf), key))
            entries.sort()
            best: list[tuple[float, str, float, float]] = []
            for lower, key in entries:
                if len(best) == k and lower > best[-1][0]:
                    break
                rec = self.store.record(key)
                position = self._position(rec, self.store.summary(key), when, stats)
                if position is None:
                    continue  # decoded interval does not cover ``when``
                distance = float(np.hypot(*(position - target)))
                best.append((distance, key, float(position[0]), float(position[1])))
                best.sort()
                del best[k:]
        self._flush("nearest", stats)
        return [
            NearestAnswer(
                key, distance, px, py,
                self.store.record(key).sync_error_bound_m,
            )
            for distance, key, px, py in best
        ]
