"""Detailed per-trajectory compression diagnostics.

:func:`repro.error.evaluate_compression` answers "how good is this
compression" with one number per notion; this module answers "where and
how is it wrong": per-retained-segment error breakdown, the distribution
(percentiles) of the synchronized deviation over time, and the worst
moments — the report an engineer reads when a threshold choice needs
justifying. Rendered as text via :meth:`DetailedReport.render`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.error.synchronized import synchronized_deltas
from repro.exceptions import TrajectoryError
from repro.trajectory.trajectory import Trajectory

__all__ = ["SegmentErrorRow", "DetailedReport", "detailed_report"]


@dataclass(frozen=True, slots=True)
class SegmentErrorRow:
    """Error profile of one retained segment of the approximation."""

    segment_index: int
    start_time: float
    end_time: float
    n_original_points: int
    max_sync_error_m: float
    mean_sync_error_m: float

    @property
    def duration_s(self) -> float:
        return self.end_time - self.start_time


@dataclass(frozen=True)
class DetailedReport:
    """Full diagnostic picture of one compression."""

    n_original: int
    n_kept: int
    percentiles_m: dict[int, float]
    worst_time: float
    worst_error_m: float
    segments: tuple[SegmentErrorRow, ...]

    @property
    def compression_percent(self) -> float:
        return 100.0 * (1.0 - self.n_kept / self.n_original)

    def worst_segments(self, k: int = 3) -> list[SegmentErrorRow]:
        """The ``k`` segments with the largest max error, worst first."""
        ranked = sorted(self.segments, key=lambda s: -s.max_sync_error_m)
        return ranked[:k]

    def render(self) -> str:
        """Human-readable multi-line report."""
        lines = [
            f"compression: {self.n_original} -> {self.n_kept} points "
            f"({self.compression_percent:.1f}% removed, "
            f"{len(self.segments)} segments)",
            "synchronized deviation percentiles (over original fixes):",
        ]
        lines.append(
            "  "
            + "  ".join(
                f"p{p}={v:.1f}m" for p, v in sorted(self.percentiles_m.items())
            )
        )
        lines.append(
            f"worst moment: t={self.worst_time:.1f} s "
            f"({self.worst_error_m:.1f} m off)"
        )
        lines.append("worst segments (max / mean deviation):")
        for seg in self.worst_segments():
            lines.append(
                f"  #{seg.segment_index}: t=[{seg.start_time:.0f}, {seg.end_time:.0f}] s"
                f", {seg.n_original_points} pts, "
                f"{seg.max_sync_error_m:.1f} / {seg.mean_sync_error_m:.1f} m"
            )
        return "\n".join(lines)


def detailed_report(
    original: Trajectory,
    approx: Trajectory,
    percentiles: tuple[int, ...] = (50, 90, 95, 99),
) -> DetailedReport:
    """Build the full diagnostic report for one compression.

    Args:
        original: the raw trajectory.
        approx: its compression (timestamps a subseries of the
            original's, covering the same interval).
        percentiles: which deviation percentiles to report.
    """
    if len(approx) < 2:
        raise TrajectoryError("report needs an approximation with >= 2 points")
    deltas = synchronized_deltas(original, approx)
    worst_index = int(np.argmax(deltas))
    percentile_values = {
        int(p): float(np.percentile(deltas, p)) for p in percentiles
    }
    # Assign each original point to its covering approx segment.
    assignment = np.clip(
        np.searchsorted(approx.t, original.t, side="right") - 1, 0, len(approx) - 2
    )
    segments = []
    for seg in range(len(approx) - 1):
        mask = assignment == seg
        count = int(mask.sum())
        seg_deltas = deltas[mask] if count else np.array([0.0])
        segments.append(
            SegmentErrorRow(
                segment_index=seg,
                start_time=float(approx.t[seg]),
                end_time=float(approx.t[seg + 1]),
                n_original_points=count,
                max_sync_error_m=float(seg_deltas.max()),
                mean_sync_error_m=float(seg_deltas.mean()),
            )
        )
    return DetailedReport(
        n_original=len(original),
        n_kept=len(approx),
        percentiles_m=percentile_values,
        worst_time=float(original.t[worst_index]),
        worst_error_m=float(deltas[worst_index]),
        segments=tuple(segments),
    )
