"""Error evaluation between arbitrary time-parametrized paths.

The closed-form α of :mod:`repro.error.synchronized` needs both paths to
be piecewise linear; once spline reconstructions enter the picture
(:mod:`repro.trajectory.spline`), the synchronized distance must be
evaluated numerically. Any object exposing ``start_time`` / ``end_time``
and ``positions_at`` qualifies as a path here — trajectories and spline
paths alike.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.exceptions import TrajectoryError

__all__ = ["TimedPath", "mean_path_distance", "max_path_distance"]


class TimedPath(Protocol):
    """Anything that can report a position for each instant it covers."""

    @property
    def start_time(self) -> float: ...  # pragma: no cover - protocol

    @property
    def end_time(self) -> float: ...  # pragma: no cover - protocol

    def positions_at(self, times: np.ndarray) -> np.ndarray:
        """Positions at the given times, shape ``(len(times), 2)``."""
        ...  # pragma: no cover - protocol signature only


def _common_times(a: TimedPath, b: TimedPath, n_samples: int) -> np.ndarray:
    if n_samples < 2:
        raise ValueError(f"need at least 2 samples, got {n_samples}")
    t0 = max(a.start_time, b.start_time)
    t1 = min(a.end_time, b.end_time)
    if t1 <= t0:
        raise TrajectoryError(
            f"paths do not overlap in time: [{a.start_time}, {a.end_time}] vs "
            f"[{b.start_time}, {b.end_time}]"
        )
    return np.linspace(t0, t1, n_samples)


def mean_path_distance(a: TimedPath, b: TimedPath, n_samples: int = 4096) -> float:
    """Sampled time-weighted mean synchronized distance between two paths.

    The generalization of the paper's α to arbitrary (possibly
    non-linear) interpolations, evaluated with the trapezoid rule over
    the overlapping time interval.
    """
    times = _common_times(a, b, n_samples)
    diff = a.positions_at(times) - b.positions_at(times)
    dist = np.hypot(diff[:, 0], diff[:, 1])
    return float(np.trapezoid(dist, times) / (times[-1] - times[0]))


def max_path_distance(a: TimedPath, b: TimedPath, n_samples: int = 4096) -> float:
    """Sampled maximum synchronized distance between two paths.

    A sampling-resolution approximation (unlike the exact piecewise
    linear case); increase ``n_samples`` for tighter estimates.
    """
    times = _common_times(a, b, n_samples)
    diff = a.positions_at(times) - b.positions_at(times)
    return float(np.hypot(diff[:, 0], diff[:, 1]).max())
