"""Error notions for trajectory compression (paper Sect. 4).

Two families:

* **Synchronized (spatiotemporal)** — the paper's contribution: distance
  between the original and approximated object travelling synchronously,
  averaged over time with a closed-form per-segment integral
  (:func:`mean_synchronized_error`).
* **Perpendicular (spatial)** — the classic line-generalization measures
  the paper argues are biased for moving objects
  (:func:`mean_perpendicular_error` and friends).

:func:`evaluate_compression` bundles everything into one report.
"""

from repro.error.metrics import (
    CompressionReport,
    compression_percent,
    compression_ratio,
    evaluate_compression,
    mean_speed_error,
)
from repro.error.paths import TimedPath, max_path_distance, mean_path_distance
from repro.error.report import DetailedReport, SegmentErrorRow, detailed_report
from repro.error.perpendicular import (
    area_error_sampled,
    max_perpendicular_error,
    mean_perpendicular_error,
    perpendicular_deltas,
)
from repro.error.synchronized import (
    max_synchronized_error,
    mean_synchronized_error,
    mean_synchronized_error_sampled,
    segment_mean_distance,
    synchronized_deltas,
)

__all__ = [
    "CompressionReport",
    "DetailedReport",
    "SegmentErrorRow",
    "detailed_report",
    "area_error_sampled",
    "compression_percent",
    "compression_ratio",
    "evaluate_compression",
    "max_perpendicular_error",
    "max_synchronized_error",
    "mean_perpendicular_error",
    "mean_speed_error",
    "max_path_distance",
    "mean_path_distance",
    "mean_synchronized_error",
    "mean_synchronized_error_sampled",
    "TimedPath",
    "perpendicular_deltas",
    "segment_mean_distance",
    "synchronized_deltas",
]
