"""Compression accounting and composite quality reports.

Combines the error notions of this package with size accounting into one
:class:`CompressionReport` — the record type the experiment harness and
the benchmarks aggregate into the paper's figures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields

import numpy as np

from repro.core import kernels
from repro.core.base import CompressionResult
from repro.error.perpendicular import (
    max_perpendicular_error,
    mean_perpendicular_error,
)
from repro.error.synchronized import (
    max_synchronized_error,
    mean_synchronized_error,
)
from repro.trajectory.trajectory import Trajectory

__all__ = [
    "compression_percent",
    "compression_ratio",
    "mean_speed_error",
    "CompressionReport",
    "evaluate_compression",
]


def compression_percent(n_original: int, n_kept: int) -> float:
    """Percentage of data points removed — the paper's "compression (%)".

    ``0`` means nothing was removed; ``90`` means nine of every ten points
    were discarded (the best values in the paper's figures).
    """
    if n_original <= 0:
        raise ValueError(f"original size must be positive, got {n_original}")
    if not 0 < n_kept <= n_original:
        raise ValueError(
            f"kept size must be in 1..{n_original}, got {n_kept}"
        )
    return 100.0 * (1.0 - n_kept / n_original)


def compression_ratio(n_original: int, n_kept: int) -> float:
    """Size ratio original/kept (``>= 1``); 10 means 10x smaller."""
    if n_kept <= 0:
        raise ValueError(f"kept size must be positive, got {n_kept}")
    return n_original / n_kept


def mean_speed_error(
    original: Trajectory, approx: Trajectory, engine: str | None = None
) -> float:
    """Time-weighted mean absolute difference of the derived speed profiles.

    The SP algorithms (Sect. 3.3) retain points where speed changes; this
    metric quantifies how well an approximation preserves the speed
    profile. Both profiles are piecewise-constant per segment; the
    comparison is evaluated on the original's segments (whose time extents
    weight the average).
    """
    engine = kernels.resolve_engine(engine)
    if len(original) < 2 or len(approx) < 2:
        raise ValueError("speed error needs >= 2 points on both trajectories")
    # Midpoint of each original segment determines which approx segment's
    # speed applies (approx timestamps are a subseries of the original's,
    # so no original segment straddles an approx breakpoint). The integer
    # assignment is shared precompute; only the float sweeps are dual.
    midpoints = (original.t[:-1] + original.t[1:]) / 2.0
    idx = np.clip(
        np.searchsorted(approx.t, midpoints, side="right") - 1, 0, len(approx) - 2
    )
    if engine == "python":
        t, x, y = original.column_lists
        at, ax, ay = approx.column_lists
        original_speeds = kernels.segment_speeds_py(t, x, y)
        approx_speeds = kernels.segment_speeds_py(at, ax, ay)
        idx_list = idx.tolist()
        weight_list = [t[i + 1] - t[i] for i in range(len(t) - 1)]
        weighted = math.fsum(
            abs(original_speeds[i] - approx_speeds[idx_list[i]]) * weight_list[i]
            for i in range(len(weight_list))
        )
        return weighted / math.fsum(weight_list)
    t, x, y = original.columns
    at, ax, ay = approx.columns
    original_speeds = kernels.segment_speeds(t, x, y)
    approx_speeds = kernels.segment_speeds(at, ax, ay)
    weights = t[1:] - t[:-1]
    abs_diff = np.abs(original_speeds - approx_speeds[idx])
    return math.fsum((abs_diff * weights).tolist()) / math.fsum(weights.tolist())


@dataclass(frozen=True, slots=True)
class CompressionReport:
    """All quality numbers for one (original, compressed) pair."""

    n_original: int
    n_kept: int
    mean_sync_error_m: float
    max_sync_error_m: float
    mean_perp_error_m: float
    max_perp_error_m: float
    mean_speed_error_ms: float

    @property
    def compression_percent(self) -> float:
        return compression_percent(self.n_original, self.n_kept)

    @property
    def compression_ratio(self) -> float:
        return compression_ratio(self.n_original, self.n_kept)

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.n_original} -> {self.n_kept} points "
            f"({self.compression_percent:.1f}% removed), "
            f"sync err mean {self.mean_sync_error_m:.1f} m / "
            f"max {self.max_sync_error_m:.1f} m, "
            f"perp err mean {self.mean_perp_error_m:.1f} m"
        )

    def to_dict(self) -> dict[str, float | int]:
        """JSON-ready dict of all fields plus the derived size ratios.

        Round-trips through :meth:`from_dict`; the derived entries are
        for human consumers and are ignored on the way back in.
        """
        out: dict[str, float | int] = {
            f.name: getattr(self, f.name) for f in fields(self)
        }
        out["compression_percent"] = self.compression_percent
        out["compression_ratio"] = self.compression_ratio
        return out

    @classmethod
    def from_dict(cls, data: dict[str, float | int]) -> "CompressionReport":
        """Rebuild a report from :meth:`to_dict` output (extras ignored).

        Raises:
            ValueError: when a required field is missing.
        """
        names = [f.name for f in fields(cls)]
        missing = [name for name in names if name not in data]
        if missing:
            raise ValueError(f"CompressionReport dict is missing {missing}")
        return cls(**{name: data[name] for name in names})


def evaluate_compression(
    original: Trajectory | CompressionResult | tuple[Trajectory, Trajectory],
    approx: Trajectory | None = None,
    engine: str | None = None,
) -> CompressionReport:
    """Compute the full quality report for a compressed trajectory.

    Accepts either the classic ``(original, approx)`` pair of
    trajectories (as two arguments or one tuple) or a
    :class:`~repro.core.base.CompressionResult` directly —
    ``evaluate_compression(TDTR(epsilon=30).compress(traj))``.

    Args:
        original: the raw trajectory, a ``(original, approx)`` tuple, or
            a :class:`~repro.core.base.CompressionResult`.
        approx: the compression — timestamps must be a subseries of the
            original's and cover the same interval (what every compressor
            in :mod:`repro.core` produces). Omit when ``original`` is a
            result or a pair.
        engine: ``"numpy"`` (default) or ``"python"``; ``None`` defers to
            the ``REPRO_ENGINE`` environment variable. Both engines
            produce bit-identical reports (the conformance suite pins
            this).
    """
    engine = kernels.resolve_engine(engine)
    if approx is None:
        if isinstance(original, CompressionResult):
            original, approx = original.original, original.compressed
        elif isinstance(original, tuple) and len(original) == 2:
            original, approx = original
        else:
            raise TypeError(
                "evaluate_compression needs (original, approx) trajectories "
                "or a CompressionResult"
            )
    return CompressionReport(
        n_original=len(original),
        n_kept=len(approx),
        mean_sync_error_m=mean_synchronized_error(original, approx, engine),
        max_sync_error_m=max_synchronized_error(original, approx, engine),
        mean_perp_error_m=mean_perpendicular_error(original, approx, engine=engine),
        max_perp_error_m=max_perpendicular_error(original, approx, engine=engine),
        mean_speed_error_ms=mean_speed_error(original, approx, engine),
    )
