"""The paper's time-synchronous error notion (Sect. 4.2), in closed form.

Given an original trajectory ``p`` and an approximation ``a``, the quality
measure is the **average distance between the original and the
approximated object travelling synchronously** over the shared time
interval::

    α(p, a) = (1 / (T_end - T_start)) ∫ dist(loc(p, t), loc(a, t)) dt

The paper evaluates the integral per original segment (its Eq. 3–5) with a
case analysis on the polynomial under the square root. We implement the
same mathematics in a numerically safer parametrization: on any interval
where both ``p`` and ``a`` are linear, the difference vector
``d(u) = loc(p) - loc(a)`` is itself linear in the normalized time
``u ∈ [0, 1]``, so with ``v0 = d(0)``, ``v1 = d(1)`` and ``w = v1 - v0``::

    dist(u)² = A u² + B u + C,   A = |w|²,  B = 2 v0·w,  C = |v0|²

and the paper's three cases become:

* ``A = 0`` — the approximation is a translated copy of the segment
  (paper: *c1 = 0*); the distance is the constant ``sqrt(C)``.
* ``4AC - B² = 0`` — the difference vectors are parallel (paper: *δ ratios
  respected*, subsuming *segments share start/end point*); the integrand
  is a piecewise-linear ``sqrt(A)·|u - r|``.
* ``4AC - B² > 0`` — the general case, solved with the ``arcsinh``
  antiderivative exactly as in the paper.

By Cauchy–Schwarz the discriminant ``4AC - B²`` is never negative; small
negative values from floating-point round-off are clamped.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core import kernels
from repro.exceptions import TrajectoryError
from repro.trajectory.ops import merge_grids
from repro.trajectory.trajectory import Trajectory

__all__ = [
    "segment_mean_distance",
    "mean_synchronized_error",
    "max_synchronized_error",
    "synchronized_deltas",
    "mean_synchronized_error_sampled",
]

#: Relative tolerance for degenerate-case detection in the integral.
_CASE_RTOL = 1e-12


def segment_mean_distance(v0: np.ndarray, v1: np.ndarray) -> float:
    """Average of ``|v0 + u (v1 - v0)|`` over ``u ∈ [0, 1]``.

    This is the single-interval building block of α(p, a) — the paper's
    Eq. 4/5 after normalizing time to the unit interval (which leaves the
    *average* unchanged). See the module docstring for the case analysis.

    Args:
        v0: difference vector at the interval start, shape ``(2,)``.
        v1: difference vector at the interval end, shape ``(2,)``.

    Raises:
        TrajectoryError: a component of ``v0``/``v1`` is NaN or
            infinite. The case analysis below would otherwise turn such
            input into a quiet NaN (or a spurious finite value via the
            clamps), poisoning every aggregate built on top.
    """
    v0 = np.asarray(v0, dtype=float)
    v1 = np.asarray(v1, dtype=float)
    if not (np.all(np.isfinite(v0)) and np.all(np.isfinite(v1))):
        raise TrajectoryError(
            f"difference vectors must be finite, got v0={v0.tolist()}, "
            f"v1={v1.tolist()}"
        )
    # Explicit component products (not ``w @ w``): the batch kernel in
    # repro.core.kernels mirrors these expressions term by term, and BLAS
    # dot products may differ from the written-out form by one ulp.
    wx = float(v1[0]) - float(v0[0])
    wy = float(v1[1]) - float(v0[1])
    v0x, v0y = float(v0[0]), float(v0[1])
    a = wx * wx + wy * wy
    b = 2.0 * (v0x * wx + v0y * wy)
    c = v0x * v0x + v0y * v0y
    scale = max(a, abs(b), c, 1e-300)
    if a <= _CASE_RTOL * scale:
        # Paper case c1 = 0: pure translation, constant distance.
        return float(np.sqrt(c))
    disc = 4.0 * a * c - b * b
    if disc <= _CASE_RTOL * scale * scale:
        # Paper case c2² - 4 c1 c3 = 0: parallel difference vectors; the
        # integrand is sqrt(a) * |u - r| with r the zero crossing.
        r = -b / (2.0 * a)
        if r <= 0.0:
            integral = 0.5 - r
        elif r >= 1.0:
            integral = r - 0.5
        else:
            integral = (r * r + (1.0 - r) * (1.0 - r)) / 2.0
        return float(np.sqrt(a) * integral)
    # General case: arcsinh antiderivative (the paper's F(t)).
    sqrt_disc = np.sqrt(disc)
    sqrt_a = np.sqrt(a)

    def antiderivative(u: float) -> float:
        s = np.sqrt(max(a * u * u + b * u + c, 0.0))
        return float(
            (2.0 * a * u + b) / (4.0 * a) * s
            + disc / (8.0 * a * sqrt_a) * np.arcsinh((2.0 * a * u + b) / sqrt_disc)
        )

    return antiderivative(1.0) - antiderivative(0.0)


def _interval_tolerance(original: Trajectory) -> float:
    """Allowed start/end mismatch between original and approximation.

    Codec round trips quantize timestamps (default quantum 1 ms), so an
    approximation decoded from storage may disagree with the raw data by
    a sub-millisecond amount; treating that as a different interval would
    make the error notion unusable on exactly the comparisons users want.
    """
    duration = original.end_time - original.start_time
    return 1e-9 + 1e-5 * max(duration, 1.0)


def _check_same_interval(original: Trajectory, approx: Trajectory) -> None:
    if len(original) < 2:
        raise TrajectoryError("error notion needs an original with >= 2 points")
    tol = _interval_tolerance(original)
    if (
        abs(approx.start_time - original.start_time) > tol
        or abs(approx.end_time - original.end_time) > tol
    ):
        raise TrajectoryError(
            "approximation must cover the original's time interval: "
            f"[{original.start_time}, {original.end_time}] vs "
            f"[{approx.start_time}, {approx.end_time}]"
        )


def _synchronized_positions(
    original: Trajectory, approx: Trajectory, grid: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Positions of both trajectories over ``grid``, clamping each query
    into the respective trajectory's own (tolerance-aligned) domain."""
    p_times = np.clip(grid, original.start_time, original.end_time)
    a_times = np.clip(grid, approx.start_time, approx.end_time)
    return original.positions_at(p_times), approx.positions_at(a_times)


def synchronized_deltas(
    original: Trajectory, approx: Trajectory, engine: str | None = None
) -> np.ndarray:
    """Synchronized distances at every *original* timestamp.

    ``out[i] = dist(p[i], loc(a, t_i))`` — the per-point view of the error
    the spatiotemporal algorithms bound. Shape ``(len(original),)``.
    """
    engine = kernels.resolve_engine(engine)
    _check_same_interval(original, approx)
    _, approx_positions = _synchronized_positions(original, approx, original.t)
    diff = original.xy - approx_positions
    if engine == "python":
        return np.asarray(
            [
                math.sqrt(dx * dx + dy * dy)
                for dx, dy in zip(diff[:, 0].tolist(), diff[:, 1].tolist())
            ]
        )
    dx = diff[:, 0]
    dy = diff[:, 1]
    return np.sqrt(dx * dx + dy * dy)


def mean_synchronized_error(
    original: Trajectory, approx: Trajectory, engine: str | None = None
) -> float:
    """The paper's α(p, a): time-weighted mean synchronized distance.

    Exact (closed form), assuming both trajectories are piecewise linear.
    Works for any approximation covering the same time interval — when
    the approximation's timestamps are a subseries of the original's (the
    compression case) the merged evaluation grid is just the original's
    timestamps, exactly the paper's Eq. 3.

    Both engines share the grid/position precompute; the per-interval α
    sweep runs either through the batch kernel or the scalar
    :func:`segment_mean_distance`, and ``math.fsum`` (exactly rounded,
    order-independent) aggregates both to bit-identical totals.

    Returns:
        Average distance in metres over the whole time interval.
    """
    engine = kernels.resolve_engine(engine)
    _check_same_interval(original, approx)
    grid = merge_grids(original.t, approx.t)
    p_pos, a_pos = _synchronized_positions(original, approx, grid)
    deltas = p_pos - a_pos
    weights = np.diff(grid)
    if engine == "python":
        total = math.fsum(
            weights[i] * segment_mean_distance(deltas[i], deltas[i + 1])
            for i in range(grid.size - 1)
        )
    else:
        alphas = kernels.segment_mean_distances(deltas[:-1], deltas[1:])
        total = math.fsum((weights * alphas).tolist())
    duration = float(grid[-1] - grid[0])
    if duration == 0.0:
        raise TrajectoryError("error notion undefined on a zero-length interval")
    return total / duration


def max_synchronized_error(
    original: Trajectory, approx: Trajectory, engine: str | None = None
) -> float:
    """Maximum synchronized distance over the whole time interval.

    Exact: on each interval of the merged time grid both paths are linear,
    so the distance is convex in time and attains its maximum at grid
    points.
    """
    engine = kernels.resolve_engine(engine)
    _check_same_interval(original, approx)
    grid = merge_grids(original.t, approx.t)
    p_pos, a_pos = _synchronized_positions(original, approx, grid)
    diff = p_pos - a_pos
    if engine == "python":
        return max(
            math.sqrt(dx * dx + dy * dy)
            for dx, dy in zip(diff[:, 0].tolist(), diff[:, 1].tolist())
        )
    dx = diff[:, 0]
    dy = diff[:, 1]
    return float(np.sqrt(dx * dx + dy * dy).max())


def mean_synchronized_error_sampled(
    original: Trajectory, approx: Trajectory, n_samples: int = 2048
) -> float:
    """Numeric cross-check of :func:`mean_synchronized_error`.

    Trapezoid rule over ``n_samples`` uniform time samples. Converges to
    the closed form as ``n_samples`` grows; used by the test suite and the
    error-evaluation ablation bench, not by production code paths.
    """
    _check_same_interval(original, approx)
    if n_samples < 2:
        raise ValueError(f"need at least 2 samples, got {n_samples}")
    times = np.linspace(original.start_time, original.end_time, n_samples)
    p_pos, a_pos = _synchronized_positions(original, approx, times)
    diff = p_pos - a_pos
    dist = np.hypot(diff[:, 0], diff[:, 1])
    duration = original.end_time - original.start_time
    if duration == 0.0:
        raise TrajectoryError("error notion undefined on a zero-length interval")
    return float(np.trapezoid(dist, times) / duration)
