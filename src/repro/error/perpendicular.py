"""Classic perpendicular-distance error notions (paper Sect. 4.1).

These are the measures line-generalization work traditionally reports:
distances of discarded points to the approximating chord, ignoring time.
The paper discusses them (Fig. 5a) as the baseline against which its
time-synchronous notion is an improvement; we implement them both to
evaluate the spatial algorithms on their own terms and to demonstrate the
bias the paper criticizes.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core import kernels
from repro.error.synchronized import _check_same_interval
from repro.geometry.distance import point_segment_distances
from repro.exceptions import TrajectoryError
from repro.trajectory.trajectory import Trajectory

__all__ = [
    "perpendicular_deltas",
    "mean_perpendicular_error",
    "max_perpendicular_error",
    "area_error_sampled",
]


def _chord_assignment(original: Trajectory, approx: Trajectory) -> np.ndarray:
    """For each original point, the approx segment index covering its time.

    Requires the approximation's timestamps to be a subseries of the
    original's (which every compressor in this library guarantees).
    """
    if len(approx) < 2:
        raise TrajectoryError("approximation needs >= 2 points")
    _check_same_interval(original, approx)
    idx = np.searchsorted(approx.t, original.t, side="right") - 1
    return np.clip(idx, 0, len(approx) - 2)


def perpendicular_deltas(
    original: Trajectory,
    approx: Trajectory,
    to_segment: bool = True,
    engine: str | None = None,
) -> np.ndarray:
    """Perpendicular distance of every original point to its chord.

    Args:
        original: the uncompressed trajectory.
        approx: the compressed trajectory (timestamps a subseries of the
            original's).
        to_segment: measure to the closed segment (default) rather than
            the infinite line; the infinite-line variant matches the
            Douglas–Peucker discard test exactly.
        engine: ``"numpy"`` (default) or ``"python"``; ``None`` defers to
            the ``REPRO_ENGINE`` environment variable. The chord
            assignment is shared precompute; the distance sweep is dual
            and bit-identical.

    Returns:
        Distances, shape ``(len(original),)``; retained points contribute
        zero.
    """
    engine = kernels.resolve_engine(engine)
    assignment = _chord_assignment(original, approx)
    if engine == "python":
        _, px, py = original.column_lists
        _, ax, ay = approx.column_lists
        measure_py = (
            kernels.chord_point_distance_py
            if to_segment
            else kernels.chord_line_distance_py
        )
        return np.asarray(
            [
                measure_py(
                    px[i], py[i], ax[seg], ay[seg], ax[seg + 1], ay[seg + 1]
                )
                for i, seg in enumerate(assignment.tolist())
            ]
        )
    _, px, py = original.columns
    _, ax, ay = approx.columns
    measure = (
        kernels.chord_point_distances if to_segment else kernels.chord_line_distances
    )
    out = np.empty(len(original))
    for seg in np.unique(assignment):
        mask = assignment == seg
        out[mask] = measure(
            px[mask],
            py[mask],
            float(ax[seg]),
            float(ay[seg]),
            float(ax[seg + 1]),
            float(ay[seg + 1]),
        )
    return out


def mean_perpendicular_error(
    original: Trajectory,
    approx: Trajectory,
    to_segment: bool = True,
    engine: str | None = None,
) -> float:
    """Average perpendicular distance over original data points.

    The paper notes this is "sensitive to the actual number of data
    points" — it is a per-point average, not a time-weighted one.
    """
    deltas = perpendicular_deltas(original, approx, to_segment, engine=engine)
    return math.fsum(deltas.tolist()) / deltas.size


def max_perpendicular_error(
    original: Trajectory,
    approx: Trajectory,
    to_segment: bool = False,
    engine: str | None = None,
) -> float:
    """Maximum perpendicular distance of any original point to its chord.

    With ``to_segment=False`` (infinite-line distance) this is exactly the
    quantity Douglas–Peucker bounds by its threshold, so
    ``max_perpendicular_error(p, ndp(p, eps)) <= eps`` is an invariant the
    test suite pins.
    """
    return float(
        perpendicular_deltas(original, approx, to_segment, engine=engine).max()
    )


def area_error_sampled(
    original: Trajectory, approx: Trajectory, n_samples: int = 2048
) -> float:
    """Fig. 5a's limit notion: time-integrated perpendicular distance.

    Samples the original path at ``n_samples`` uniform time instants,
    measures each sampled position's distance to its covering approx
    chord, and averages with the trapezoid rule. As the sampling rate
    grows this approaches "the sum over segments of weighted areas between
    original and approximation" that the paper describes.
    """
    if n_samples < 2:
        raise ValueError(f"need at least 2 samples, got {n_samples}")
    _check_same_interval(original, approx)
    times = np.linspace(original.start_time, original.end_time, n_samples)
    p_pos = original.positions_at(times)
    idx = np.clip(
        np.searchsorted(approx.t, times, side="right") - 1, 0, len(approx) - 2
    )
    dist = np.empty(n_samples)
    for seg in np.unique(idx):
        mask = idx == seg
        dist[mask] = point_segment_distances(
            p_pos[mask], approx.xy[seg], approx.xy[seg + 1]
        )
    duration = original.end_time - original.start_time
    return float(np.trapezoid(dist, times) / duration)
