"""End-to-end smoke check: one served session must match the batch result.

Starts a server on an ephemeral loopback port with a temporary store
file, runs one complete client session (open / per-fix appends / close),
then loads the persisted store file back and asserts the stored
trajectory's points are identical to the batch ``OPW-TR`` selection on
the same input. Exits non-zero on any divergence.

Run it directly (CI does)::

    python -m repro.serve.smoke
"""

from __future__ import annotations

import asyncio
import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.core.opw_tr import OPWTR
from repro.serve.client import ServeClient
from repro.serve.server import TrajectoryServer
from repro.storage.store import TrajectoryStore
from repro.trajectory.trajectory import Trajectory

_EPSILON = 30.0
_SPEC = f"opw-tr:epsilon={_EPSILON:g}"


def _workload() -> Trajectory:
    """A small deterministic trip with turns (so the window breaks)."""
    rng = np.random.default_rng(42)
    t = np.arange(120, dtype=float)
    xy = np.cumsum(rng.normal(0.0, 12.0, size=(120, 2)), axis=0)
    return Trajectory(t, xy, object_id="smoke-1")


async def _session(store_path: Path, traj: Trajectory) -> dict:
    server = TrajectoryServer(port=0, store_path=store_path)
    await server.start()
    try:
        async with await ServeClient.connect(server.host, server.port) as client:
            await client.open("smoke-1", _SPEC)
            retained = []
            for fix in traj:
                retained.extend(await client.append("smoke-1", [fix]))
            summary = await client.close_session("smoke-1")
            retained.extend(summary["retained"])
            stats = await client.stats()
        return {"retained": retained, "stored": summary["stored"], "stats": stats}
    finally:
        await server.stop()


def main() -> int:
    traj = _workload()
    with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as tmp:
        store_path = Path(tmp) / "smoke.rsto"
        outcome = asyncio.run(_session(store_path, traj))

        expected = traj.t[OPWTR(epsilon=_EPSILON).compress(traj).indices]
        served = [fix.t for fix in outcome["retained"]]
        if list(expected) != served:
            print(
                f"FAIL: served session retained {len(served)} points, "
                f"batch OPW-TR retained {len(expected)}",
                file=sys.stderr,
            )
            return 1

        store = TrajectoryStore.load(store_path)
        if "smoke-1" not in store:
            print("FAIL: store file lacks the flushed trajectory", file=sys.stderr)
            return 1
        stored = store.get("smoke-1")
        if list(stored.t) != served:
            print("FAIL: stored trajectory diverges from the served stream",
                  file=sys.stderr)
            return 1

        stats = outcome["stats"]
        if stats["sessions_flushed"] != 1 or stats["fixes_in"] != len(traj):
            print(f"FAIL: unexpected stats {stats}", file=sys.stderr)
            return 1
    print(
        f"serve smoke OK: {len(traj)} fixes -> {len(served)} retained "
        f"({_SPEC}), stored output batch-identical"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
