"""The consistent-hash router in front of a sharded worker fleet.

One thin asyncio process that owns no session state at all: every
``open``/``append``/``resume``/``close`` is forwarded — as the original
wire bytes — to the worker whose hash range owns the session id, and
the worker's response bytes are relayed back verbatim. Decoding happens
exactly once per request (to read the op and session id for routing);
the seq/dedup/resume semantics of protocol v2 therefore pass through
the router untouched, because the router never rewrites them.

Fleet-wide verbs fan out instead: ``flush`` asks every worker to
persist its partition, ``stats`` merges every worker's payload into one
view (summed lifecycle counters, per-shard detail under ``shards``, the
per-shard-labelled registry of :func:`repro.obs.merge_shard_metrics`,
and a fleet ``wal.failed`` flag so :class:`DurableServeClient`'s
lost-ack heuristic keeps working through the router).

Failure model, chosen to *reuse* the PR-7 client machinery rather than
duplicate it: when a worker dies mid-request, the router closes the
client's connection instead of synthesizing an error. A
:class:`~repro.serve.client.DurableServeClient` sees exactly what it
would see talking to a crashed single server — redials with backoff,
``resume``\\ s (the router routes that to the respawned worker, *after*
its WAL replay, because :meth:`WorkerPool.acquire` only returns ready
workers), and re-sends under the same seq, which the worker dedups.

Load shedding is per shard, not global: the router keeps an inflight
gauge per worker (``shard_inflight.<name>``) and refuses requests for a
drowning shard with code ``rejected`` while its neighbours keep
serving — one hot object cannot take down the fleet.
"""

from __future__ import annotations

import asyncio
import contextlib
from pathlib import Path

from repro.exceptions import ServeError
from repro.obs import Registry, merge_shard_metrics
from repro.serve.pool import WorkerHandle, WorkerPool
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    decode_line,
    encode_message,
    error_response,
    ok_response,
)
from repro.storage.store import TrajectoryStore

__all__ = ["ServeRouter", "merge_partition_stores"]

#: Ops routed by session id; everything else fans out or is local.
_SESSION_OPS = frozenset({"open", "append", "resume", "close"})


def merge_partition_stores(
    pool: WorkerPool,
    merged_path: "Path | str",
    *,
    durable: bool = True,
    replace: bool = False,
) -> dict:
    """Merge every worker's partition store file into one store file.

    The drain endgame: workers persist disjoint partitions (the ring
    guarantees an object id lives on exactly one shard), so the merge
    is a plain union — a duplicate id across partitions means the ring
    was violated and is refused loudly unless ``replace`` is set.

    Returns:
        ``{"path", "n_objects", "partitions": {name: n}}``.
    """
    merged = TrajectoryStore()
    partitions: dict[str, int] = {}
    for handle in pool.handles:
        if handle.store_path is None or not handle.store_path.exists():
            partitions[handle.name] = 0
            continue
        partition = TrajectoryStore.load(handle.store_path)
        partitions[handle.name] = len(partition)
        for object_id in partition.object_ids():
            if object_id in merged and not replace:
                raise ServeError(
                    f"object {object_id!r} appears in more than one shard "
                    f"partition (ring violation)",
                    code="storage",
                )
            merged.adopt_record(partition.record(object_id), replace=replace)
    merged.save(merged_path, durable=durable)
    return {
        "path": str(merged_path),
        "n_objects": len(merged),
        "partitions": partitions,
    }


class _Upstream:
    """One proxied connection from a client connection to one worker."""

    __slots__ = ("reader", "writer", "pid")

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter, pid: int
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.pid = pid


class ServeRouter:
    """Accept client connections and proxy them onto the worker fleet.

    Args:
        pool: the (already constructed, not yet started) worker pool.
        host, port: the router's own bind address (``port=0`` = pick).
        store_path: where :meth:`drain` writes the merged store file
            (``None`` = the pool has no persistence configured).
        shed_inflight: per-shard inflight ceiling; requests for a shard
            at the ceiling are refused with code ``rejected``. ``0``
            disables shedding.
        acquire_timeout_s: how long one request may wait for a dead
            worker's respawn before giving up with ``unavailable``.
        metrics: the router's own registry (separate from the workers').
    """

    def __init__(
        self,
        pool: WorkerPool,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        store_path: "Path | str | None" = None,
        shed_inflight: int = 256,
        acquire_timeout_s: float = 15.0,
        metrics: "Registry | None" = None,
    ) -> None:
        self.pool = pool
        self.host = host
        self.port = int(port)
        self.store_path = None if store_path is None else Path(store_path)
        self.shed_inflight = int(shed_inflight)
        self.acquire_timeout_s = float(acquire_timeout_s)
        self.metrics = metrics if metrics is not None else Registry()
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.Task] = set()
        self._draining = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    async def start(self) -> "ServeRouter":
        """Start the worker fleet, then bind the router's socket."""
        if self._server is not None:
            raise ServeError("router already started", code="internal")
        await self.pool.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, limit=MAX_LINE_BYTES
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve_forever(self) -> None:
        """Block accepting connections until cancelled (requires start())."""
        if self._server is None:
            raise ServeError("router not started", code="internal")
        await self._server.serve_forever()

    async def run(self) -> None:
        """Start and serve until cancelled; stops the fleet on the way out."""
        await self.start()
        try:
            await self.serve_forever()
        finally:
            await self.stop()

    async def drain(self) -> dict:
        """Graceful fleet shutdown — the router's SIGTERM path.

        Stop accepting, drop live client connections (drain means the
        fleet is going away; durable clients will find nobody to redial
        and surface that honestly), SIGTERM every worker — each flushes
        its sessions and persists its partition, PR-7 semantics — and
        finally merge the partition files into one store file.

        Returns:
            ``{"workers": {...exit codes...}, "merged": {...} | None}``.
        """
        self._draining = True
        await self._close_frontend()
        result = await self.pool.drain()
        merged = None
        if self.store_path is not None:
            merged = await asyncio.to_thread(
                merge_partition_stores,
                self.pool,
                self.store_path,
                replace=self.pool.replace,
            )
        return {"workers": result["exit_codes"], "merged": merged}

    async def stop(self) -> None:
        """Hard shutdown: kill the fleet without flushing (WALs survive)."""
        await self._close_frontend()
        await self.pool.stop()

    async def _close_frontend(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
            self._connections.clear()

    # ------------------------------------------------------------------ #
    # Connection proxying
    # ------------------------------------------------------------------ #

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._connections.add(task)
        self.metrics.counter("connections_opened").inc()
        self.metrics.gauge("connections_live").inc()
        upstreams: dict[str, _Upstream] = {}
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    await self._reply(
                        writer,
                        error_response(
                            None,
                            "bad-request",
                            f"protocol line exceeds {MAX_LINE_BYTES} bytes; "
                            f"closing connection",
                        ),
                    )
                    break
                except (ConnectionResetError, BrokenPipeError):
                    break
                if not line:
                    break
                if not await self._dispatch(line, writer, upstreams):
                    break
        except asyncio.CancelledError:
            pass  # router shutdown; fall through to teardown
        finally:
            self._connections.discard(task)
            for upstream in upstreams.values():
                upstream.writer.close()
            writer.close()
            with contextlib.suppress(asyncio.CancelledError, Exception):
                await writer.wait_closed()
            self.metrics.counter("connections_closed").inc()
            self.metrics.gauge("connections_live").dec()

    async def _dispatch(
        self,
        line: bytes,
        writer: asyncio.StreamWriter,
        upstreams: dict[str, _Upstream],
    ) -> bool:
        """Route one request line; False = close this client connection."""
        try:
            message = decode_line(line)
        except ServeError as exc:
            return await self._reply(
                writer, error_response(None, exc.code, str(exc))
            )
        op = message.get("op")
        if op in _SESSION_OPS:
            return await self._proxy_keyed_op(
                line, message, writer, upstreams, "session"
            )
        if op == "query":
            return await self._route_query(line, message, writer, upstreams)
        if op == "summaries":
            if message.get("object") is not None:
                # One object lives on exactly one shard: route like a
                # session op, keyed by the object id.
                return await self._proxy_keyed_op(
                    line, message, writer, upstreams, "object"
                )
            return await self._reply(writer, await self._fan_out_summaries())
        if op == "flush":
            return await self._reply(writer, await self._fan_out_flush())
        if op == "stats":
            return await self._reply(writer, await self._fan_out_stats())
        return await self._reply(
            writer,
            error_response(
                op if isinstance(op, str) else None,
                "bad-request",
                f"unknown op {op!r}; valid ops: open, append, resume, "
                f"close, flush, stats, query, summaries",
                message.get("session")
                if isinstance(message.get("session"), str)
                else None,
            ),
        )

    async def _route_query(
        self,
        line: bytes,
        message: dict,
        writer: asyncio.StreamWriter,
        upstreams: dict[str, _Upstream],
    ) -> bool:
        """Route one ``query`` request: by ring when the query names one
        object, scatter-gather across the fleet otherwise."""
        kind = message.get("query")
        if kind == "position":
            return await self._proxy_keyed_op(
                line, message, writer, upstreams, "object"
            )
        if kind == "window":
            return await self._reply(writer, await self._fan_out_window(message))
        if kind == "nearest":
            return await self._reply(writer, await self._fan_out_nearest(message))
        return await self._reply(
            writer,
            error_response(
                "query",
                "bad-request",
                f"unknown query kind {kind!r}; valid kinds: position, "
                f"window, nearest",
            ),
        )

    async def _proxy_keyed_op(
        self,
        line: bytes,
        message: dict,
        writer: asyncio.StreamWriter,
        upstreams: dict[str, _Upstream],
        key_field: str,
    ) -> bool:
        """Proxy one request to the shard owning ``message[key_field]``.

        Session ops key on ``session``; single-object read ops key on
        ``object`` — the ring assigns both the same way, so a query for
        an object always lands on the shard ingesting it.
        """
        op = str(message.get("op"))
        session = message.get(key_field)
        if not isinstance(session, str) or not session:
            return await self._reply(
                writer,
                error_response(
                    op,
                    "bad-request",
                    f"{op} needs a non-empty string {key_field} id, "
                    f"got {session!r}",
                ),
            )
        if self._draining:
            return await self._reply(
                writer,
                error_response(op, "rejected", "router is draining", session),
            )
        name = self.pool.ring.node_for(session)
        inflight = self.metrics.gauge(f"shard_inflight.{name}")
        if self.shed_inflight and inflight.value >= self.shed_inflight:
            self.metrics.counter("requests_shed").inc()
            self.metrics.counter(f"requests_shed.{name}").inc()
            return await self._reply(
                writer,
                error_response(
                    op,
                    "rejected",
                    f"shard {name} is overloaded "
                    f"({self.shed_inflight} requests in flight); retry later",
                    session,
                ),
            )
        try:
            handle = await self.pool.acquire(
                name, timeout_s=self.acquire_timeout_s
            )
        except ServeError as exc:
            return await self._reply(
                writer, error_response(op, exc.code, str(exc), session)
            )
        inflight.inc()
        try:
            response_line = await self._round_trip(handle, line, upstreams)
        except (ConnectionError, EOFError, OSError):
            # The worker died under this request: whether it applied the
            # batch is unknowable from here. Hang up on the client — the
            # durable client redials, resumes (routed to the *recovered*
            # respawn) and re-sends under the same seq, which the worker
            # dedups. Synthesizing an error here would instead force
            # every client to learn router-specific failure semantics.
            process = handle.process
            if process is not None and process.returncode is not None:
                # Observably dead but the pool monitor hasn't reaped it
                # yet: close the admission window now so the client's
                # very next retry parks in acquire() until the respawn
                # finishes, instead of dialing a dead port.
                handle.ready.clear()
            self.metrics.counter("upstream_failures").inc()
            self.metrics.counter(f"upstream_failures.{name}").inc()
            return False
        finally:
            inflight.dec()
        self.metrics.counter("requests_proxied").inc()
        try:
            writer.write(response_line)
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            return False
        return True

    async def _round_trip(
        self, handle: WorkerHandle, line: bytes, upstreams: dict[str, _Upstream]
    ) -> bytes:
        """Forward raw request bytes to a worker; return raw response bytes."""
        upstream = upstreams.get(handle.name)
        process = handle.process
        pid = process.pid if process is not None else -1
        if upstream is not None and upstream.pid != pid:
            # The worker was respawned since this connection last talked
            # to it; the cached socket points at a dead process.
            upstream.writer.close()
            upstream = None
            upstreams.pop(handle.name, None)
        if upstream is None:
            assert handle.port is not None
            reader, writer = await asyncio.open_connection(
                self.pool.host, handle.port, limit=MAX_LINE_BYTES
            )
            upstream = _Upstream(reader, writer, pid)
            upstreams[handle.name] = upstream
        upstream.writer.write(line)
        await upstream.writer.drain()
        response = await upstream.reader.readline()
        if not response:
            raise EOFError(f"worker {handle.name} closed the connection")
        return response

    # ------------------------------------------------------------------ #
    # Fan-out verbs
    # ------------------------------------------------------------------ #

    async def _worker_request(self, handle: WorkerHandle, message: dict) -> dict:
        """One short-lived request/response against one worker."""
        await self.pool.acquire(handle.name, timeout_s=self.acquire_timeout_s)
        assert handle.port is not None
        reader, writer = await asyncio.open_connection(
            self.pool.host, handle.port, limit=MAX_LINE_BYTES
        )
        try:
            writer.write(encode_message(message))
            await writer.drain()
            line = await reader.readline()
            if not line:
                raise EOFError(f"worker {handle.name} closed the connection")
            return decode_line(line)
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _fan_out(self, message: dict) -> dict:
        """Send one message to every worker; ``{name: response | error}``."""
        results = await asyncio.gather(
            *(self._worker_request(handle, message) for handle in self.pool.handles),
            return_exceptions=True,
        )
        out: dict = {}
        for handle, result in zip(self.pool.handles, results):
            if isinstance(result, BaseException):
                out[handle.name] = error_response(
                    message.get("op"),
                    "unavailable",
                    f"{type(result).__name__}: {result}",
                )
            else:
                out[handle.name] = result
        return out

    async def _fan_out_flush(self) -> dict:
        responses = await self._fan_out({"op": "flush"})
        failed = {
            name: response
            for name, response in responses.items()
            if not response.get("ok")
        }
        if failed:
            name, response = next(iter(failed.items()))
            return error_response(
                "flush",
                str(response.get("code", "unavailable")),
                f"shard {name}: {response.get('error', 'flush failed')}",
                shards=responses,
            )
        return ok_response(
            "flush",
            n_objects=sum(
                int(response.get("n_objects", 0)) for response in responses.values()
            ),
            shards={
                name: {"path": response.get("path"), "n_objects": response.get("n_objects")}
                for name, response in responses.items()
            },
        )

    def _first_shard_error(self, op: str, responses: dict) -> dict | None:
        """An error response naming the first failed shard, or ``None``.

        Scatter-gathered reads are all-or-nothing: a partial fleet answer
        would silently drop the failed shard's objects, so any shard
        error fails the whole query (the full per-shard picture rides
        under ``shards`` for diagnosis).
        """
        for name in sorted(responses):
            response = responses[name]
            if not response.get("ok"):
                return error_response(
                    op,
                    str(response.get("code", "unavailable")),
                    f"shard {name}: {response.get('error', f'{op} failed')}",
                    shards=responses,
                )
        return None

    async def _fan_out_window(self, message: dict) -> dict:
        """Scatter a window query; merge to one sorted, deduplicated id
        list (shards hold disjoint partitions, so the union is exact)."""
        responses = await self._fan_out(message)
        failed = self._first_shard_error("query", responses)
        if failed is not None:
            return failed
        objects = sorted(
            {
                key
                for response in responses.values()
                for key in response.get("objects", [])
            }
        )
        return ok_response("query", query="window", objects=objects, n=len(objects))

    async def _fan_out_nearest(self, message: dict) -> dict:
        """Scatter a nearest query; merge by (distance, id) and keep k.

        Each shard returns its local top k, and the true k nearest are
        all within some shard's local top k — so re-ranking the union by
        the same (distance, id) order a single server uses yields the
        fleet-wide answer deterministically.
        """
        responses = await self._fan_out(message)
        failed = self._first_shard_error("query", responses)
        if failed is not None:
            return failed
        k = message.get("k", 1)
        if isinstance(k, bool) or not isinstance(k, int) or k < 1:
            # Unreachable in practice: every shard already rejected it.
            k = 1  # pragma: no cover - defensive
        merged: list[dict] = []
        seen: set[str] = set()
        for response in responses.values():
            merged.extend(response.get("results", []))
        merged.sort(
            key=lambda entry: (entry.get("distance_m", 0.0), entry.get("object", ""))
        )
        results = []
        for entry in merged:
            object_id = str(entry.get("object", ""))
            if object_id in seen:
                continue  # ring violation or mid-rebalance duplicate
            seen.add(object_id)
            results.append(entry)
            if len(results) == k:
                break
        return ok_response("query", query="nearest", results=results)

    async def _fan_out_summaries(self) -> dict:
        """Scatter a fleet-wide summaries request; union the payloads."""
        responses = await self._fan_out({"op": "summaries"})
        failed = self._first_shard_error("summaries", responses)
        if failed is not None:
            return failed
        objects: dict = {}
        live: set[str] = set()
        config = None
        for name in sorted(responses):
            response = responses[name]
            objects.update(response.get("objects", {}))
            live.update(response.get("live_sessions", []))
            if config is None:
                config = response.get("config")
        return ok_response(
            "summaries",
            objects=objects,
            live_sessions=sorted(live),
            config=config,
        )

    async def _fan_out_stats(self) -> dict:
        responses = await self._fan_out({"op": "stats"})
        shard_stats = {
            name: response.get("stats", {})
            for name, response in responses.items()
            if response.get("ok")
        }
        unavailable = sorted(
            name for name, response in responses.items() if not response.get("ok")
        )
        return ok_response("stats", stats=self.stats(shard_stats, unavailable))

    def stats(
        self,
        shard_stats: "dict[str, dict] | None" = None,
        unavailable: "list[str] | None" = None,
    ) -> dict:
        """The fleet-wide ``stats`` payload.

        Sums the workers' lifecycle counters into the same top-level
        fields a single server reports (so existing dashboards and the
        durable client's heuristics keep reading them), keeps each
        worker's full payload under ``shards``, and merges the metric
        registries with per-shard labels. ``wal`` is the fleet view:
        ``failed`` iff *any* shard's WAL failed — the conservative
        answer for the client's lost-ack heuristic.
        """
        shard_stats = shard_stats or {}
        unavailable = unavailable or []
        summed = {}
        for field in (
            "live_sessions",
            "stored_objects",
            "sessions_opened",
            "sessions_rejected",
            "sessions_evicted",
            "sessions_flushed",
            "sessions_recovered",
            "sessions_discarded",
            "sessions_renegotiated",
            "sessions_admitted_degraded",
            "budget_renegotiations",
            "fixes_in",
            "fixes_retained",
            "fixes_evicted",
            "fixes_flushed",
            "queries",
            "query_decoded_records",
            "query_decoded_bytes",
            "queue_depth",
            "requests_failed",
        ):
            summed[field] = sum(
                int(payload.get(field, 0)) for payload in shard_stats.values()
            )
        for field in ("fixes_in_by_algorithm", "fixes_evicted_by_algorithm"):
            merged: dict[str, int] = {}
            for payload in shard_stats.values():
                per_shard = payload.get(field)
                if isinstance(per_shard, dict):
                    for algorithm, count in per_shard.items():
                        merged[algorithm] = merged.get(algorithm, 0) + int(count)
            summed[field] = merged
        wals = {
            name: payload["wal"]
            for name, payload in shard_stats.items()
            if isinstance(payload.get("wal"), dict)
        }
        payload = {
            "protocol_version": PROTOCOL_VERSION,
            "role": "router",
            "draining": self._draining,
            **summed,
            "shards": shard_stats,
            "shards_unavailable": unavailable,
            "pool": self.pool.stats(),
            "router": {
                "connections_live": self.metrics.gauge("connections_live").value,
                "connections_opened": self.metrics.counter("connections_opened").value,
                "requests_proxied": self.metrics.counter("requests_proxied").value,
                "requests_shed": self.metrics.counter("requests_shed").value,
                "upstream_failures": self.metrics.counter("upstream_failures").value,
                "shed_inflight": self.shed_inflight,
                "inflight": {
                    handle.name: self.metrics.gauge(
                        f"shard_inflight.{handle.name}"
                    ).value
                    for handle in self.pool.handles
                },
            },
            "metrics": merge_shard_metrics(
                {
                    name: payload.get("metrics", {})
                    for name, payload in shard_stats.items()
                },
                extra=self.metrics.to_dict(),
            ),
        }
        if wals or self.pool.wal_base is not None:
            payload["wal"] = {
                "failed": any(bool(wal.get("failed")) for wal in wals.values())
                or bool(unavailable),
                "shards": wals,
            }
        return payload

    @staticmethod
    async def _reply(writer: asyncio.StreamWriter, response: dict) -> bool:
        try:
            writer.write(encode_message(response))
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            return False
        return True
