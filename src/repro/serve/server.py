"""The asyncio trajectory-ingestion server.

A stdlib-only TCP server speaking the NDJSON protocol of
:mod:`repro.serve.protocol`. Each connection gets a **bounded** inbound
queue: a reader task parses lines off the socket and blocks when the
queue is full (which stops reading and lets TCP flow control push back
on the producer), while a processor task drains the queue, dispatches to
the shared :class:`~repro.serve.session.SessionManager`, and writes each
response followed by ``await writer.drain()`` — so a slow consumer
throttles the server instead of growing its buffers.

Sessions are keyed by object id and are **server-global**, not
per-connection: a tracker that reconnects can keep appending to its open
session, and a connection that vanishes leaves its sessions to the idle
sweeper, which evicts *and flushes* them (no data loss). Retained fixes
stream back in each ``append`` response the moment the opening window
decides them, in decision order.

Usage::

    server = TrajectoryServer(port=0, store_path="fleet.rsto")
    await server.start()          # port 0 -> server.port has the real one
    ...
    await server.stop()

or from the command line: ``repro serve --port 8765 --store fleet.rsto``.
"""

from __future__ import annotations

import asyncio
import contextlib
import math
import time
from pathlib import Path
from types import SimpleNamespace
from typing import Callable

import numpy as np

from repro.exceptions import ObjectNotFoundError, ReproError, ServeError, WalError
from repro.geometry.bbox import BBox
from repro.obs import LATENCY_BUCKETS_MS, Registry, span
from repro.query.baseline import window_hit
from repro.query.engine import QueryEngine
from repro.serve.faults import FaultInjector
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    decode_line,
    encode_message,
    error_response,
    ok_response,
    parse_fix,
    parse_fixes,
    parse_flat_fixes,
    render_fixes,
)
from repro.serve.session import Session, SessionManager
from repro.serve.wal import WalWriter
from repro.storage.store import TrajectoryStore, effective_query_box

__all__ = ["TrajectoryServer"]

#: Append-latency histogram buckets in milliseconds: loopback appends
#: sit well under a millisecond, WAN round trips in the tens. Shared
#: with the rest of the codebase via :mod:`repro.obs`.
_LATENCY_BUCKETS_MS = LATENCY_BUCKETS_MS

#: Queue sentinels: end-of-connection, and an oversized inbound line.
_EOF = object()
_OVERSIZE = object()


class TrajectoryServer:
    """Ingestion service: live fixes in, compressed stored trajectories out.

    Args:
        host, port: bind address; ``port=0`` picks an ephemeral port
            (read :attr:`port` after :meth:`start`).
        store: destination store; created empty when omitted. When
            ``store_path`` names an existing file, the store is loaded
            from it instead — restarting a server resumes its data.
        store_path: when set, every session flush atomically re-persists
            the store file (see :mod:`repro.serve.session`).
        max_sessions: admission limit on live sessions.
        idle_timeout_s: inactivity after which a session is evictable.
        sweep_interval_s: period of the background eviction sweep.
        queue_size: per-connection bounded inbound queue (backpressure).
        durable: fsync on store persists.
        replace: allow flushes to overwrite already-stored ids.
        default_spec: compressor spec applied to ``open`` requests that
            carry none (the CLI's ``--algorithm`` flag); an open with an
            explicit spec still wins.
        wal_dir: when set, a :class:`~repro.serve.wal.WalWriter` over
            this directory makes every acknowledged request durable
            (group commit before the response is written), and
            :meth:`start` replays its surviving sessions. Crash safety
            costs one fsync per group of in-flight requests.
        degrade_budget_floor: enables degraded admission — under
            ``max_sessions`` pressure, live budget-capable sessions are
            renegotiated down (budgets multiplied by
            ``degrade_budget_factor``, never below this floor) and the
            new session admitted, instead of rejecting it (see
            :class:`~repro.serve.session.SessionManager`).
        degrade_budget_factor: budget multiplier under pressure
            (0 < factor < 1; default 0.5).
        shard: name of this worker's shard when it serves as part of a
            ``--workers N`` fleet; purely a label, echoed in ``stats``.
        faults: optional fault injector threaded into the WAL (chaos
            harness only).
        metrics: shared registry; one is created if absent.
        clock: monotonic time source, injectable for tests.
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        store: TrajectoryStore | None = None,
        store_path: str | Path | None = None,
        max_sessions: int = 1024,
        idle_timeout_s: float = 300.0,
        sweep_interval_s: float = 5.0,
        queue_size: int = 64,
        durable: bool = True,
        replace: bool = False,
        default_spec: str | None = None,
        wal_dir: str | Path | None = None,
        degrade_budget_floor: int | None = None,
        degrade_budget_factor: float = 0.5,
        shard: str | None = None,
        faults: FaultInjector | None = None,
        metrics: Registry | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if queue_size < 1:
            raise ValueError(f"queue_size must be >= 1, got {queue_size}")
        if sweep_interval_s <= 0:
            raise ValueError(
                f"sweep_interval_s must be positive, got {sweep_interval_s}"
            )
        self.host = host
        self.port = int(port)
        #: Shard name when this server is one worker of a sharded fleet
        #: (``repro serve --workers N``); surfaces in ``stats`` so the
        #: router's merged view can attribute per-worker payloads.
        self.shard = shard
        self.default_spec = default_spec
        self.queue_size = int(queue_size)
        self.sweep_interval_s = float(sweep_interval_s)
        self.metrics = metrics if metrics is not None else Registry()
        store_path = None if store_path is None else Path(store_path)
        if store is None:
            if store_path is not None and store_path.exists():
                store = TrajectoryStore.load(store_path, metrics=self.metrics)
            else:
                store = TrajectoryStore(metrics=self.metrics)
        else:
            # Route the store's flush/load instrumentation into this
            # server's registry so the STATS verb sees it.
            store.metrics = self.metrics
        self.wal: WalWriter | None = None
        if wal_dir is not None:
            self.wal = WalWriter(wal_dir, durable=durable, faults=faults)
        self.manager = SessionManager(
            store,
            max_sessions=max_sessions,
            idle_timeout_s=idle_timeout_s,
            store_path=store_path,
            durable=durable,
            replace=replace,
            wal=self.wal,
            degrade_budget_floor=degrade_budget_floor,
            degrade_budget_factor=degrade_budget_factor,
            metrics=self.metrics,
            clock=clock,
        )
        #: Summary-pruned read path over the same store the sessions
        #: flush into; live sessions are overlaid per query so an acked
        #: fix is queryable before its session closes.
        self.engine = QueryEngine(self.store, metrics=self.metrics)
        self._latency = self.metrics.histogram(
            "append_latency_ms", buckets=_LATENCY_BUCKETS_MS
        )
        self._server: asyncio.AbstractServer | None = None
        self._sweeper: asyncio.Task | None = None
        self._connections: set[asyncio.Task | None] = set()
        self._started_at: float | None = None
        self._clock = clock
        self._draining = False
        #: What :meth:`start`'s WAL replay recovered (None = no WAL).
        self.recovery: dict | None = None

    @property
    def store(self) -> TrajectoryStore:
        """The store flushed sessions land in."""
        return self.manager.store

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    async def start(self) -> "TrajectoryServer":
        """Bind the listening socket and start the eviction sweeper.

        When a WAL is configured, its surviving sessions are replayed
        into live state *before* the socket opens: a client that
        reconnects after a crash finds its session at the exact
        sequence number the server last acknowledged.
        """
        if self._server is not None:
            raise ServeError("server already started", code="internal")
        if self.wal is not None:
            self.recovery = self.manager.recover()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, limit=MAX_LINE_BYTES
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = self._clock()
        self._sweeper = asyncio.create_task(self._sweep_loop())
        return self

    async def serve_forever(self) -> None:
        """Serve until cancelled (call :meth:`start` first)."""
        if self._server is None:
            raise ServeError("server not started", code="internal")
        await self._server.serve_forever()

    async def run(self) -> None:
        """Start and serve until cancelled; stops cleanly on the way out."""
        await self.start()
        try:
            await self.serve_forever()
        finally:
            await self.stop()

    async def stop(self) -> None:
        """Stop listening, cancel the sweeper, persist the store file.

        Live sessions stay unflushed — with a WAL they survive in the
        log and a restart recovers them; use :meth:`drain` to flush
        everything out instead.
        """
        await self._shutdown_tasks()
        if self.wal is not None and not self.wal.failed:
            # Make any staged-but-uncommitted truncation markers durable
            # so a clean stop does not leave dead segments behind.
            with contextlib.suppress(ServeError):
                self.wal.commit_sync()
            self.wal.close()
        self.manager.persist()

    async def drain(self) -> dict:
        """Graceful shutdown: stop accepting, flush every session, persist.

        The SIGTERM/SIGINT path. Every live session is finalized and
        landed in the store exactly as a client ``close`` would land it,
        truncation markers are committed, and the store file is
        persisted — after a drain the WAL directory is empty of live
        sessions and a restart recovers nothing.

        Returns:
            ``{"flushed": [ids...], "failed": n}``.
        """
        self._draining = True
        await self._shutdown_tasks()
        before = self.metrics.counter("drain_flush_failures").value
        flushed = self.manager.flush_all()
        failed = self.metrics.counter("drain_flush_failures").value - before
        if self.wal is not None and not self.wal.failed:
            with contextlib.suppress(ServeError):
                self.wal.commit_sync()
            self.wal.close()
        self.manager.persist()
        return {"flushed": flushed, "failed": failed}

    def abort(self) -> None:
        """Crash simulation: drop everything without flushing a byte.

        Closes the listening socket and the WAL handle with no commit,
        no flush and no persist — the harness uses this to model a hard
        failure inside one process, then proves recovery from the WAL
        alone.
        """
        if self._sweeper is not None:
            self._sweeper.cancel()
            self._sweeper = None
        if self._server is not None:
            self._server.close()
            self._server = None
        for task in list(self._connections):
            if task is not None:
                task.cancel()
        self._connections.clear()
        if self.wal is not None:
            self.wal.close()

    async def _shutdown_tasks(self) -> None:
        """Stop the listener, sweeper and connection tasks."""
        if self._sweeper is not None:
            self._sweeper.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._sweeper
            self._sweeper = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._connections):
            if task is not None:
                task.cancel()
        if self._connections:
            await asyncio.gather(
                *(t for t in self._connections if t is not None),
                return_exceptions=True,
            )
            self._connections.clear()

    async def _sweep_loop(self) -> None:
        while True:
            await asyncio.sleep(self.sweep_interval_s)
            self.manager.evict_idle()
            if self.wal is not None and self.wal.pending_records:
                # Evictions stage truncation markers outside any request;
                # commit them here so idle segments can be reclaimed. A
                # failure sticks and the next request reports it.
                with contextlib.suppress(ServeError):
                    await self.wal.commit()

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.metrics.counter("connections_opened").inc()
        self.metrics.gauge("connections_live").inc()
        self._connections.add(asyncio.current_task())
        queue: asyncio.Queue = asyncio.Queue(maxsize=self.queue_size)
        depth = self.metrics.gauge("queue_depth")
        processor = asyncio.create_task(self._process_queue(queue, writer))
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # Line exceeded MAX_LINE_BYTES: report, then hang up —
                    # the stream is no longer line-synchronized.
                    await queue.put(_OVERSIZE)
                    break
                except (ConnectionResetError, BrokenPipeError):
                    break
                if not line:
                    break
                # A full queue blocks here, which stops socket reads and
                # lets TCP flow control throttle the producer.
                await queue.put(line)
                depth.inc()
            await queue.put(_EOF)
            await processor
        except asyncio.CancelledError:
            # Server shutdown cancelled the connection mid-flight. Swallow
            # the cancellation (a handler task that *ends* cancelled makes
            # asyncio's stream machinery log a spurious error) and fall
            # through to the teardown below.
            processor.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await processor
        finally:
            self._connections.discard(asyncio.current_task())
            # Account for lines the cancelled processor never consumed,
            # so the queue-depth gauge cannot drift on teardown.
            while not queue.empty():
                if queue.get_nowait() not in (_EOF, _OVERSIZE):
                    depth.dec()
            writer.close()
            with contextlib.suppress(asyncio.CancelledError, Exception):
                await writer.wait_closed()
            self.metrics.counter("connections_closed").inc()
            self.metrics.gauge("connections_live").dec()

    async def _process_queue(
        self, queue: asyncio.Queue, writer: asyncio.StreamWriter
    ) -> None:
        write_ok = True
        depth = self.metrics.gauge("queue_depth")
        while True:
            item = await queue.get()
            if item is _EOF:
                return
            if item is not _OVERSIZE:
                depth.dec()
            if item is _OVERSIZE:
                response = error_response(
                    None,
                    "bad-request",
                    f"protocol line exceeds {MAX_LINE_BYTES} bytes; "
                    f"closing connection",
                )
            else:
                response = self._handle_line(item)
            if self.wal is not None and self.wal.pending_records:
                # Durability barrier: whatever this request staged must
                # hit disk before its acknowledgement leaves the process.
                # Concurrent connections parked on the same commit ride
                # one fsync (group commit).
                try:
                    await self.wal.commit()
                except WalError as exc:
                    # Unknown durability: anything staged since the last
                    # good commit may or may not be on disk. Discard the
                    # affected sessions (a restart recovers their durable
                    # prefix) and tell the client instead of acking.
                    for sid in self.wal.dirty_sessions():
                        self.manager.discard(sid)
                    self.metrics.counter("requests_failed").inc()
                    response = error_response(
                        response.get("op"),
                        exc.code,
                        str(exc),
                        response.get("session"),
                    )
            if write_ok:
                try:
                    writer.write(encode_message(response))
                    # Slow consumers block us here, not in kernel buffers.
                    await writer.drain()
                except (ConnectionResetError, BrokenPipeError):
                    # The socket is gone, but keep draining the queue so
                    # the reader task never deadlocks on a full queue; it
                    # will see the reset and put the _EOF sentinel.
                    write_ok = False
            if item is _OVERSIZE:
                return

    # ------------------------------------------------------------------ #
    # Request dispatch (synchronous: one event-loop thread, no locks)
    # ------------------------------------------------------------------ #

    def _handle_line(self, line: bytes) -> dict:
        try:
            message = decode_line(line)
        except ServeError as exc:
            return error_response(None, exc.code, str(exc))
        op = message.get("op")
        session = message.get("session")
        session_str = session if isinstance(session, str) else None
        try:
            if op == "open":
                return self._op_open(message)
            if op == "append":
                return self._op_append(message)
            if op == "resume":
                return self._op_resume(message)
            if op == "close":
                return self._op_close(message)
            if op == "flush":
                return self._op_flush()
            if op == "stats":
                return ok_response("stats", stats=self.stats())
            if op == "query":
                return self._op_query(message)
            if op == "summaries":
                return self._op_summaries(message)
            return error_response(
                op if isinstance(op, str) else None,
                "bad-request",
                f"unknown op {op!r}; valid ops: open, append, resume, "
                f"close, flush, stats, query, summaries",
                session_str,
            )
        except ServeError as exc:
            self.metrics.counter("requests_failed").inc()
            return error_response(op, exc.code, str(exc), session_str)
        except ReproError as exc:
            self.metrics.counter("requests_failed").inc()
            return error_response(
                op, "internal", f"{type(exc).__name__}: {exc}", session_str
            )

    def _op_open(self, message: dict) -> dict:
        session_id = message.get("session")
        spec = message.get("spec")
        if spec is None:
            spec = self.default_spec
        self.manager.open(session_id, spec)
        return ok_response("open", session_id, spec=spec)

    def _op_append(self, message: dict) -> dict:
        started = time.perf_counter()
        session_id = message.get("session")
        seq = message.get("seq")
        if seq is not None and (
            isinstance(seq, bool) or not isinstance(seq, int) or seq < 1
        ):
            raise ServeError(
                f"'seq' must be a positive integer, got {seq!r}",
                code="bad-request",
            )
        if "fixes_flat" in message:
            fixes = parse_flat_fixes(message["fixes_flat"])
        elif "fixes" in message:
            fixes = parse_fixes(message["fixes"])
        elif "fix" in message:
            fixes = [parse_fix(message["fix"])]
        else:
            raise ServeError(
                "append needs a 'fix' triple, a 'fixes' list or a "
                "'fixes_flat' array",
                code="bad-request",
            )
        try:
            with span("serve.append", fixes=len(fixes)):
                outcome = self.manager.append_batch(session_id, fixes, seq=seq)
        except ServeError as exc:
            # Mid-batch failure: fixes before the bad one are already in
            # the session; report what they decided so nothing the client
            # sees is ever silently dropped.
            session_str = session_id if isinstance(session_id, str) else None
            return error_response(
                "append",
                exc.code,
                str(exc),
                session_str,
                retained=render_fixes(exc.retained),
            )
        session_str = session_id if isinstance(session_id, str) else None
        if outcome.error is not None:
            response = error_response(
                "append",
                "out-of-order",
                str(outcome.error),
                session_str,
                seq=outcome.seq,
                retained=render_fixes(outcome.retained),
            )
        else:
            self._latency.observe((time.perf_counter() - started) * 1e3)
            response = ok_response(
                "append",
                session_str,
                seq=outcome.seq,
                retained=render_fixes(outcome.retained),
                n_retained=len(outcome.retained),
            )
        if outcome.evicted:
            # Budget compressors retract previously retained points; the
            # field is present only when something was evicted, so the
            # threshold-compressor wire form is unchanged.
            response["evicted"] = render_fixes(outcome.evicted)
            response["n_evicted"] = len(outcome.evicted)
        if outcome.duplicate:
            response["duplicate"] = True
        return response

    def _op_resume(self, message: dict) -> dict:
        """Where a session stands, for reconnecting clients.

        Reports the last acknowledged sequence number (so the client
        re-sends exactly the unacknowledged suffix), the session's spec
        and whether it was rebuilt from the WAL. An unknown session
        raises ``unknown-session`` — the client opens a fresh one.
        """
        session_id = message.get("session")
        session = self.manager.get(session_id)
        return ok_response(
            "resume",
            session.object_id,
            seq=session.last_seq,
            spec=session.spec,
            recovered=session.recovered,
            fixes_in=session.n_fixes_in,
            n_retained=session.n_retained,
            budget=session.budget,
        )

    def _op_close(self, message: dict) -> dict:
        session_id = message.get("session")
        record, tail = self.manager.close(session_id)
        stored = None
        if record is not None:
            stored = {
                "object_id": record.object_id,
                "n_raw_points": record.n_raw_points,
                "n_stored_points": record.n_stored_points,
                "stored_bytes": record.stored_bytes,
                "sync_error_bound_m": record.sync_error_bound_m,
            }
        return ok_response(
            "close", session_id, retained=render_fixes(tail), stored=stored
        )

    def _op_flush(self) -> dict:
        self.manager.persist()
        path = self.manager.store_path
        return ok_response(
            "flush",
            path=None if path is None else str(path),
            n_objects=len(self.manager.store),
        )

    # ------------------------------------------------------------------ #
    # Read path: QUERY + SUMMARIES
    # ------------------------------------------------------------------ #

    @staticmethod
    def _number(message: dict, field: str) -> float:
        """A required finite-number field, as a float."""
        value = message.get(field)
        if (
            isinstance(value, bool)
            or not isinstance(value, (int, float))
            or not math.isfinite(value)
        ):
            raise ServeError(
                f"'{field}' must be a finite number, got {value!r}",
                code="bad-request",
            )
        return float(value)

    @staticmethod
    def _parse_bbox(value: object) -> BBox:
        """A wire ``[min_x, min_y, max_x, max_y]`` array as a BBox."""
        if (
            not isinstance(value, list)
            or len(value) != 4
            or any(
                isinstance(part, bool) or not isinstance(part, (int, float))
                for part in value
            )
        ):
            raise ServeError(
                f"'bbox' must be [min_x, min_y, max_x, max_y] numbers, "
                f"got {value!r}",
                code="bad-request",
            )
        try:
            return BBox(*(float(part) for part in value))
        except ValueError as exc:
            raise ServeError(str(exc), code="bad-request") from None

    @staticmethod
    def _live_record(session: Session) -> SimpleNamespace:
        """A record-shaped shim: live sessions share the stored records'
        mode semantics through :func:`effective_query_box`."""
        return SimpleNamespace(
            sync_error_bound_m=session.compressor.sync_error_bound()
        )

    def _overlays(self) -> dict:
        """Live sessions' acked-so-far trajectories, keyed by id.

        The read path's query-after-ack overlay: wherever an id appears
        here, the snapshot answers instead of any stored record of the
        same id (the live session is the newer data). Sessions that
        never acked a fix are omitted — the stored record, if any, still
        answers for them.
        """
        out: dict = {}
        for session_id in self.manager.live_session_ids:
            session = self.manager.peek(session_id)
            snapshot = session.snapshot() if session is not None else None
            if snapshot is not None:
                out[session_id] = snapshot
        return out

    def _op_query(self, message: dict) -> dict:
        kind = message.get("query")
        if kind == "position":
            return self._query_position(message)
        if kind == "window":
            return self._query_window(message)
        if kind == "nearest":
            return self._query_nearest(message)
        raise ServeError(
            f"unknown query kind {kind!r}; valid kinds: position, window, "
            f"nearest",
            code="bad-request",
        )

    def _query_position(self, message: dict) -> dict:
        object_id = message.get("object")
        if not isinstance(object_id, str) or not object_id:
            raise ServeError(
                f"query position needs a non-empty string 'object', "
                f"got {object_id!r}",
                code="bad-request",
            )
        when = self._number(message, "t")
        session = self.manager.peek(object_id)
        if session is not None:
            snapshot = session.snapshot()
            if snapshot is not None and snapshot.covers_time(when):
                position = snapshot.position_at(when)
                # The engine never ran; count the query here so the
                # fleet-wide counters cover the live path too.
                self.metrics.counter("queries").inc()
                self.metrics.counter("queries_position").inc()
                return ok_response(
                    "query",
                    query="position",
                    source="live",
                    result={
                        "object": object_id,
                        "t": when,
                        "x": float(position[0]),
                        "y": float(position[1]),
                        "error_bound_m": session.compressor.sync_error_bound(),
                    },
                )
        try:
            answer = self.engine.position_at(object_id, when)
        except ObjectNotFoundError:
            raise ServeError(
                f"no stored object or covering live session {object_id!r}",
                code="not-found",
            ) from None
        except ValueError as exc:
            raise ServeError(str(exc), code="not-found") from None
        return ok_response(
            "query",
            query="position",
            source="stored",
            result={
                "object": answer.object_id,
                "t": answer.t,
                "x": answer.x,
                "y": answer.y,
                "error_bound_m": answer.error_bound_m,
            },
        )

    def _query_window(self, message: dict) -> dict:
        t0 = self._number(message, "t0")
        t1 = self._number(message, "t1")
        if t1 < t0:
            raise ServeError(
                f"empty time window [{t0}, {t1}]", code="bad-request"
            )
        mode = message.get("mode", "stored")
        if mode not in ("stored", "possibly", "definitely"):
            raise ServeError(f"unknown query mode {mode!r}", code="bad-request")
        box = self._parse_bbox(message["bbox"]) if "bbox" in message else None
        stored = self.engine.window(t0, t1, box, mode)
        overlays = self._overlays()
        live_hits = []
        for session_id, snapshot in overlays.items():
            if box is None:
                hit = snapshot.t[0] <= t1 and snapshot.t[-1] >= t0
            else:
                session = self.manager.peek(session_id)
                effective = (
                    None
                    if session is None
                    else effective_query_box(box, self._live_record(session), mode)
                )
                hit = effective is not None and window_hit(
                    snapshot, t0, t1, effective
                )
            if hit:
                live_hits.append(session_id)
        objects = sorted(
            set(live_hits) | {key for key in stored if key not in overlays}
        )
        return ok_response("query", query="window", objects=objects, n=len(objects))

    def _query_nearest(self, message: dict) -> dict:
        x = self._number(message, "x")
        y = self._number(message, "y")
        when = self._number(message, "t")
        k = message.get("k", 1)
        if isinstance(k, bool) or not isinstance(k, int) or k < 1:
            raise ServeError(
                f"'k' must be a positive integer, got {k!r}", code="bad-request"
            )
        overlays = self._overlays()
        # Ask for k extra stored answers per overlaid id: an overlay
        # may supersede a stored answer occupying one of the k slots.
        stored = self.engine.nearest(x, y, when, k=k + len(overlays))
        ranked = [
            (a.distance_m, a.object_id, a.x, a.y, a.error_bound_m, "stored")
            for a in stored
            if a.object_id not in overlays
        ]
        for session_id, snapshot in overlays.items():
            if not snapshot.covers_time(when):
                continue
            position = snapshot.position_at(when)
            distance = float(np.hypot(position[0] - x, position[1] - y))
            session = self.manager.peek(session_id)
            bound = None if session is None else session.compressor.sync_error_bound()
            ranked.append(
                (
                    distance,
                    session_id,
                    float(position[0]),
                    float(position[1]),
                    bound,
                    "live",
                )
            )
        ranked.sort(key=lambda entry: (entry[0], entry[1]))
        results = [
            {
                "object": object_id,
                "distance_m": distance,
                "x": px,
                "y": py,
                "error_bound_m": bound,
                "source": source,
            }
            for distance, object_id, px, py, bound, source in ranked[:k]
        ]
        return ok_response("query", query="nearest", results=results)

    def _op_summaries(self, message: dict) -> dict:
        object_id = message.get("object")
        if object_id is not None:
            if not isinstance(object_id, str) or not object_id:
                raise ServeError(
                    f"'object' must be a non-empty string, got {object_id!r}",
                    code="bad-request",
                )
            objects = {}
            if object_id in self.store:
                objects[object_id] = self.store.summary(object_id).to_wire()
            is_live = object_id in self.manager
            if not objects and not is_live:
                raise ServeError(
                    f"no stored object or live session {object_id!r}",
                    code="not-found",
                )
            return ok_response(
                "summaries",
                objects=objects,
                live_sessions=[object_id] if is_live else [],
            )
        config = self.store.summary_config
        return ok_response(
            "summaries",
            objects={
                key: self.store.summary(key).to_wire()
                for key in self.store.object_ids()
            },
            live_sessions=self.manager.live_session_ids,
            config={
                "partition_points": config.partition_points,
                "grid_m": config.grid_m,
                "time_grid_s": config.time_grid_s,
            },
        )

    def stats(self) -> dict:
        """The ``stats`` verb's payload: manager counters + server view."""
        payload = self.manager.stats()
        payload.update(
            protocol_version=PROTOCOL_VERSION,
            shard=self.shard,
            draining=self._draining,
            recovery=self.recovery,
            uptime_s=(
                None
                if self._started_at is None
                else max(0.0, self._clock() - self._started_at)
            ),
            connections_opened=self.metrics.counter("connections_opened").value,
            connections_closed=self.metrics.counter("connections_closed").value,
            requests_failed=self.metrics.counter("requests_failed").value,
            queries=self.metrics.counter("queries").value,
            query_decoded_records=self.metrics.counter(
                "query_decoded_records"
            ).value,
            query_decoded_bytes=self.metrics.counter("query_decoded_bytes").value,
            query_prune_ratio=self.metrics.gauge("query_prune_ratio").value,
            queue_depth=self.metrics.gauge("queue_depth").value,
            append_latency_ms=self._latency.to_dict(),
            metrics=self.metrics.to_dict(),
        )
        return payload
