"""Asyncio clients for the trajectory-ingestion service.

:class:`ServeClient` is a thin, typed wrapper over the NDJSON wire
protocol: requests go out one line at a time, each awaited response is
checked for ``ok`` and error responses are raised as
:class:`~repro.exceptions.ServeError` carrying the server's
machine-readable ``code`` (and, for mid-batch append failures, the
``retained`` prefix the server reported). Retained fixes come back as
:class:`~repro.types.Fix` values in decision order.

:class:`DurableServeClient` wraps the same verbs in a reconnect loop:
when the connection drops or times out it redials with exponential
backoff, ``resume``\\ s its sessions, and re-sends the in-flight request
under the same per-session sequence number — which the server
deduplicates, so a response lost to a crash is recovered instead of
re-applied. Point it at a WAL-enabled server and a tracker survives
server crashes with no data loss and no duplicates.

Usage::

    async with await ServeClient.connect("127.0.0.1", port) as client:
        await client.open("car-17", "opw-tr:epsilon=30")
        for fix in feed:
            retained = await client.append("car-17", [fix])
            ...
        summary = await client.close_session("car-17")
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, Iterable, Sequence

from repro.exceptions import ServeError
from repro.serve.protocol import MAX_LINE_BYTES, decode_line, encode_message
from repro.types import Fix

__all__ = ["ServeClient", "DurableServeClient"]

#: Error codes that mean "the connection is unusable, redial": they say
#: nothing about whether the server applied the request, which is why
#: re-sends carry sequence numbers.
RETRYABLE_CODES = frozenset({"connection-closed", "timeout"})


def _parse_retained(value: object) -> list[Fix]:
    if not isinstance(value, list):
        return []
    return [Fix(*triple) for triple in value]


class ServeClient:
    """One client connection to a :class:`~repro.serve.server.TrajectoryServer`.

    The protocol is strictly request/response per connection, so one
    client instance must not be shared between concurrently running
    coroutines; open one connection per concurrent session instead (the
    load generator in :mod:`repro.serve.bench` does exactly that).

    Args:
        timeout: per-request deadline in seconds (``None`` = wait
            forever). A timed-out request raises :class:`ServeError`
            with code ``timeout`` and marks the connection broken —
            the response may still arrive later, and consuming it as
            the answer to the *next* request would desynchronise the
            stream.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        timeout: float | None = None,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self.timeout = timeout
        self._broken = False

    @classmethod
    async def connect(
        cls, host: str, port: int, *, timeout: float | None = None
    ) -> "ServeClient":
        """Open a TCP connection to a running server.

        ``timeout`` bounds the connect itself and becomes the
        per-request deadline of the returned client.

        Raises:
            ServeError: code ``timeout`` when the connect exceeds it.
        """
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(host, port, limit=MAX_LINE_BYTES),
                timeout,
            )
        except asyncio.TimeoutError:
            raise ServeError(
                f"connect to {host}:{port} timed out after {timeout}s",
                code="timeout",
            ) from None
        return cls(reader, writer, timeout=timeout)

    @property
    def broken(self) -> bool:
        """True once the connection can no longer be trusted."""
        return self._broken

    async def __aenter__(self) -> "ServeClient":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.aclose()

    async def aclose(self) -> None:
        """Close the connection (open sessions stay live server-side)."""
        self._broken = True
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass

    async def request(self, message: dict) -> dict:
        """Send one raw protocol message and await its response.

        Raises:
            ServeError: an ``ok: false`` response (with the server's
                ``code`` and any reported ``retained`` prefix), a
                dropped connection (code ``connection-closed``), or a
                blown per-request deadline (code ``timeout``).
        """
        try:
            response = await asyncio.wait_for(
                self._round_trip(message), self.timeout
            )
        except asyncio.TimeoutError:
            self._broken = True
            raise ServeError(
                f"no response within {self.timeout}s", code="timeout"
            ) from None
        except (ConnectionResetError, BrokenPipeError):
            self._broken = True
            raise ServeError(
                "connection dropped mid-request", code="connection-closed"
            ) from None
        if not response.get("ok"):
            raise ServeError(
                str(response.get("error", "unspecified server error")),
                code=str(response.get("code", "internal")),
                retained=_parse_retained(response.get("retained")),
            )
        return response

    async def _round_trip(self, message: dict) -> dict:
        self._writer.write(encode_message(message))
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            self._broken = True
            raise ServeError(
                "server closed the connection", code="connection-closed"
            )
        return decode_line(line)

    # ------------------------------------------------------------------ #
    # Verbs
    # ------------------------------------------------------------------ #

    async def open(self, session: str, spec: str) -> dict:
        """Open a session compressing under a spec string."""
        return await self.request({"op": "open", "session": session, "spec": spec})

    async def append(
        self,
        session: str,
        fixes: Iterable[Fix | Sequence[float]],
        *,
        seq: int | None = None,
    ) -> list[Fix]:
        """Append fixes; returns the fixes the compressor decided to retain.

        Fixes go out in the protocol's flat batch form (one
        ``fixes_flat`` array of ``t, x, y`` runs), the cheapest encoding
        on both ends of the wire. ``seq`` optionally pins the batch's
        per-session sequence number (see ``docs/SERVING.md``); without
        it the server auto-assigns the next one.
        """
        response = await self.append_response(session, fixes, seq=seq)
        return [Fix(*triple) for triple in response["retained"]]

    async def append_events(
        self,
        session: str,
        fixes: Iterable[Fix | Sequence[float]],
        *,
        seq: int | None = None,
    ) -> tuple[list[Fix], list[Fix]]:
        """Append fixes; returns ``(retained, evicted)``.

        ``evicted`` lists previously retained fixes a budget compressor
        (``squish:budget=...``, ``sttrace:budget=...``) retracted —
        push-time evictions plus any pending renegotiation evictions.
        Consumers tracking the net retained stream should remove them by
        timestamp, tolerating already-removed entries (a recovery replay
        may re-deliver an eviction). Threshold compressors never
        populate it.
        """
        response = await self.append_response(session, fixes, seq=seq)
        return (
            [Fix(*triple) for triple in response["retained"]],
            [Fix(*triple) for triple in response.get("evicted", [])],
        )

    async def append_response(
        self,
        session: str,
        fixes: Iterable[Fix | Sequence[float]],
        *,
        seq: int | None = None,
    ) -> dict:
        """:meth:`append`, returning the full response dict.

        The response carries ``seq`` (the batch's sequence number) and
        ``duplicate: true`` when the server had already applied it —
        what the reconnect logic needs.
        """
        flat = [float(value) for fix in fixes for value in fix]
        message: dict = {"op": "append", "session": session, "fixes_flat": flat}
        if seq is not None:
            message["seq"] = seq
        return await self.request(message)

    async def resume(self, session: str) -> dict:
        """Where a session stands server-side: its last acked ``seq``.

        Raises:
            ServeError: ``unknown-session`` when the server holds no
                such session (open a fresh one).
        """
        return await self.request({"op": "resume", "session": session})

    async def close_session(self, session: str) -> dict:
        """Close a session; returns ``{"retained": [...], "stored": ...}``.

        ``retained`` holds the final fixes (as :class:`Fix`) the close
        decided; ``stored`` is the store's catalog summary, or ``None``
        for a session that never appended a fix.
        """
        response = await self.request({"op": "close", "session": session})
        return {
            "retained": [Fix(*triple) for triple in response["retained"]],
            "stored": response.get("stored"),
        }

    async def flush(self) -> dict:
        """Ask the server to re-persist its store file now."""
        return await self.request({"op": "flush"})

    async def stats(self) -> dict:
        """The server's observability snapshot (see ``docs/SERVING.md``)."""
        response = await self.request({"op": "stats"})
        return response["stats"]

    async def query_position(self, object_id: str, t: float) -> dict:
        """Interpolated position of ``object_id`` at time ``t``.

        Returns the response's ``result`` dict (``object``/``t``/``x``/
        ``y``/``error_bound_m``); live sessions answer before stored
        records (``source`` on the full response says which).

        Raises:
            ServeError: ``not-found`` for an unknown object or a time
                outside its interval.
        """
        response = await self.request(
            {"op": "query", "query": "position", "object": object_id, "t": t}
        )
        return response["result"]

    async def query_window(
        self,
        t0: float,
        t1: float,
        bbox: Sequence[float] | None = None,
        mode: str = "stored",
    ) -> list[str]:
        """Sorted object ids matching a time window (and optional box)."""
        message: dict = {"op": "query", "query": "window", "t0": t0, "t1": t1}
        if bbox is not None:
            message["bbox"] = [float(part) for part in bbox]
        if mode != "stored":
            message["mode"] = mode
        response = await self.request(message)
        return list(response["objects"])

    async def query_nearest(
        self, x: float, y: float, t: float, k: int = 1
    ) -> list[dict]:
        """The ``k`` objects nearest ``(x, y)`` at time ``t``, ranked."""
        response = await self.request(
            {"op": "query", "query": "nearest", "x": x, "y": y, "t": t, "k": k}
        )
        return list(response["results"])

    async def summaries(self, object_id: str | None = None) -> dict:
        """Partition summaries (all objects, or one) + live session ids."""
        message: dict = {"op": "summaries"}
        if object_id is not None:
            message["object"] = object_id
        response = await self.request(message)
        return {
            "objects": response["objects"],
            "live_sessions": response.get("live_sessions", []),
            "config": response.get("config"),
        }


class DurableServeClient:
    """A reconnecting client that survives server crashes without data loss.

    Wraps every verb in a retry loop. When a request fails with a
    connection-level error (dropped socket, timeout) the client redials
    with exponential backoff, ``resume``\\ s each of its sessions, and
    re-sends the failed request unchanged. Appends always carry an
    explicit per-session sequence number, so a re-send of a batch the
    server already applied comes back as a deduplicated replay of the
    original acknowledgement — never a double-apply.

    Against a WAL-enabled server this is exactly the tracker-side half
    of crash safety: the server promises that everything it acked
    survives a crash, and this client promises to re-deliver everything
    that was never acked.

    Args:
        host, port: the server to dial (and re-dial).
        timeout: per-request and per-connect deadline (seconds).
        max_retries: connection-level failures tolerated per request
            before giving up and raising the last error.
        backoff_base_s: first reconnect delay; doubles per consecutive
            failure up to ``backoff_max_s``.
        sleep: awaitable sleep, injectable so tests run instantly.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float | None = 5.0,
        max_retries: int = 5,
        backoff_base_s: float = 0.05,
        backoff_max_s: float = 2.0,
        sleep: Callable[[float], Awaitable[None]] = asyncio.sleep,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self.max_retries = int(max_retries)
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_max_s = float(backoff_max_s)
        self._sleep = sleep
        self._client: ServeClient | None = None
        #: Per-session reconnect state: spec + last acked sequence number.
        self._sessions: dict[str, dict] = {}
        #: Reconnects performed over this client's lifetime.
        self.reconnects = 0

    async def __aenter__(self) -> "DurableServeClient":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.aclose()

    async def aclose(self) -> None:
        """Close the underlying connection (sessions stay live server-side)."""
        if self._client is not None:
            await self._client.aclose()
            self._client = None

    # ------------------------------------------------------------------ #
    # Connection management
    # ------------------------------------------------------------------ #

    async def _ensure_connected(self) -> ServeClient:
        """The live connection, redialing (with backoff) if needed.

        A successful redial ``resume``\\ s every tracked session so the
        local sequence counters re-align with what the server actually
        acknowledged — a crashed server may be behind this client's
        optimistic view, never ahead of it.
        """
        if self._client is not None and not self._client.broken:
            return self._client
        delay = self.backoff_base_s
        last_error: ServeError | None = None
        for attempt in range(self.max_retries + 1):
            if attempt:
                await self._sleep(min(delay, self.backoff_max_s))
                delay *= 2
            try:
                client = await ServeClient.connect(
                    self.host, self.port, timeout=self.timeout
                )
            except (ServeError, OSError) as exc:
                last_error = (
                    exc
                    if isinstance(exc, ServeError)
                    else ServeError(str(exc), code="connection-closed")
                )
                continue
            if self._client is not None:
                self.reconnects += 1
            self._client = client
            await self._resync(client)
            return client
        raise ServeError(
            f"could not reach {self.host}:{self.port} after "
            f"{self.max_retries + 1} attempts: {last_error}",
            code=last_error.code if last_error is not None else "connection-closed",
        )

    async def _resync(self, client: ServeClient) -> None:
        """Re-align sequence counters with the server after a redial."""
        for session_id, state in self._sessions.items():
            try:
                response = await client.resume(session_id)
            except ServeError as exc:
                if exc.code == "unknown-session":
                    # The server holds nothing for this session (e.g. it
                    # runs without a WAL, or the session was flushed).
                    # Reopen so subsequent appends have a live window;
                    # sequence numbering restarts with the session.
                    await client.open(session_id, state["spec"])
                    state["seq"] = 0
                    continue
                raise
            state["seq"] = int(response.get("seq", state["seq"]))

    async def _with_retry(self, send: Callable[[ServeClient], Awaitable[dict]]) -> dict:
        """Run one request, redialing on connection-level failures.

        Backs off between attempts even when the redial itself succeeds:
        behind a sharded router the TCP dial always lands (the router is
        alive) while the owning worker is still mid-respawn, so without
        this pause every retry would burn in milliseconds and give up
        before the shard recovers.
        """
        last_error: ServeError | None = None
        delay = self.backoff_base_s
        for attempt in range(self.max_retries + 1):
            if attempt:
                await self._sleep(min(delay, self.backoff_max_s))
                delay *= 2
            try:
                client = await self._ensure_connected()
                return await send(client)
            except ServeError as exc:
                if exc.code not in RETRYABLE_CODES:
                    raise
                last_error = exc
        assert last_error is not None
        raise last_error

    # ------------------------------------------------------------------ #
    # Verbs
    # ------------------------------------------------------------------ #

    async def open(self, session: str, spec: str) -> dict:
        """Open (or re-adopt) a session compressing under ``spec``.

        A ``duplicate-session`` response is tolerated and resumed: it
        means an earlier open was acknowledged but the ack was lost, or
        the server recovered the session from its WAL.
        """
        self._sessions[session] = {"spec": spec, "seq": 0}
        try:
            return await self._with_retry(lambda c: c.open(session, spec))
        except ServeError as exc:
            if exc.code != "duplicate-session":
                self._sessions.pop(session, None)
                raise
            response = await self._with_retry(lambda c: c.resume(session))
            self._sessions[session]["seq"] = int(response.get("seq", 0))
            return response

    async def append(
        self, session: str, fixes: Iterable[Fix | Sequence[float]]
    ) -> list[Fix]:
        """Append fixes under the next sequence number; crash-safe.

        The batch is materialized once and re-sent verbatim under the
        same ``seq`` until some connection delivers a response — which
        the server deduplicates if a lost ack means it already applied
        the batch.
        """
        state = self._session_state(session)
        seq = state["seq"] + 1
        batch = [Fix(*map(float, fix)) for fix in fixes]
        response = await self._with_retry(
            lambda c: c.append_response(session, batch, seq=seq)
        )
        state["seq"] = seq
        return [Fix(*triple) for triple in response["retained"]]

    async def append_events(
        self, session: str, fixes: Iterable[Fix | Sequence[float]]
    ) -> tuple[list[Fix], list[Fix]]:
        """Crash-safe :meth:`append`, returning ``(retained, evicted)``.

        See :meth:`ServeClient.append_events` for the eviction contract;
        apply removals idempotently — a deduplicated replay after a
        reconnect re-delivers the original batch's evictions.
        """
        state = self._session_state(session)
        seq = state["seq"] + 1
        batch = [Fix(*map(float, fix)) for fix in fixes]
        response = await self._with_retry(
            lambda c: c.append_response(session, batch, seq=seq)
        )
        state["seq"] = seq
        return (
            [Fix(*triple) for triple in response["retained"]],
            [Fix(*triple) for triple in response.get("evicted", [])],
        )

    async def close_session(self, session: str) -> dict:
        """Close a session, tolerating an ack lost to a reconnect.

        If a retry finds the session already gone (``unknown-session``
        after at least one delivery attempt) *and* the server reports a
        healthy WAL, the earlier close was applied — on a durable server
        sessions only vanish by being closed or evicted-and-flushed, so
        the data is stored either way — and the lost response is
        reported as an empty tail with ``ack_lost: True``. Against a
        non-durable server the same symptom can mean the session died
        with a crash-restart, so the ambiguity is surfaced by re-raising
        instead of reporting a clean close.
        """
        self._session_state(session)
        attempts = 0

        async def send(client: ServeClient) -> dict:
            nonlocal attempts
            attempts += 1
            return await client.request({"op": "close", "session": session})

        try:
            response = await self._with_retry(send)
        except ServeError as exc:
            if (
                exc.code == "unknown-session"
                and attempts > 1
                and await self._server_is_durable()
            ):
                self._sessions.pop(session, None)
                return {"retained": [], "stored": None, "ack_lost": True}
            raise
        self._sessions.pop(session, None)
        return {
            "retained": [Fix(*triple) for triple in response["retained"]],
            "stored": response.get("stored"),
            "ack_lost": False,
        }

    async def _server_is_durable(self) -> bool:
        """Whether the server reports a healthy (non-failed) WAL.

        The lost-ack heuristics are only sound when acknowledged state
        survives server restarts; a server with no WAL — or a poisoned
        one, which discards dirty sessions — gives no such promise.
        """
        try:
            response = await self._with_retry(
                lambda c: c.request({"op": "stats"})
            )
        except ServeError:
            return False
        stats = response.get("stats")
        wal = stats.get("wal") if isinstance(stats, dict) else None
        return isinstance(wal, dict) and not wal.get("failed")

    async def flush(self) -> dict:
        """Ask the server to re-persist its store file now."""
        return await self._with_retry(lambda c: c.flush())

    async def stats(self) -> dict:
        """The server's observability snapshot."""
        response = await self._with_retry(
            lambda c: c.request({"op": "stats"})
        )
        return response["stats"]

    async def query_position(self, object_id: str, t: float) -> dict:
        """Reconnect-safe :meth:`ServeClient.query_position` (read-only)."""
        return await self._with_retry(lambda c: c.query_position(object_id, t))

    async def query_window(
        self,
        t0: float,
        t1: float,
        bbox: Sequence[float] | None = None,
        mode: str = "stored",
    ) -> list[str]:
        """Reconnect-safe :meth:`ServeClient.query_window` (read-only)."""
        return await self._with_retry(
            lambda c: c.query_window(t0, t1, bbox, mode)
        )

    async def query_nearest(
        self, x: float, y: float, t: float, k: int = 1
    ) -> list[dict]:
        """Reconnect-safe :meth:`ServeClient.query_nearest` (read-only)."""
        return await self._with_retry(lambda c: c.query_nearest(x, y, t, k))

    async def summaries(self, object_id: str | None = None) -> dict:
        """Reconnect-safe :meth:`ServeClient.summaries` (read-only)."""
        return await self._with_retry(lambda c: c.summaries(object_id))

    def _session_state(self, session: str) -> dict:
        state = self._sessions.get(session)
        if state is None:
            raise ServeError(
                f"session {session!r} was not opened by this client",
                code="unknown-session",
            )
        return state
