"""Asyncio client for the trajectory-ingestion service.

A thin, typed wrapper over the NDJSON wire protocol: requests go out one
line at a time, each awaited response is checked for ``ok`` and error
responses are raised as :class:`~repro.exceptions.ServeError` carrying
the server's machine-readable ``code``. Retained fixes come back as
:class:`~repro.types.Fix` values in decision order.

Usage::

    async with await ServeClient.connect("127.0.0.1", port) as client:
        await client.open("car-17", "opw-tr:epsilon=30")
        for fix in feed:
            retained = await client.append("car-17", [fix])
            ...
        summary = await client.close_session("car-17")
"""

from __future__ import annotations

import asyncio
from typing import Iterable, Sequence

from repro.exceptions import ServeError
from repro.serve.protocol import MAX_LINE_BYTES, decode_line, encode_message
from repro.types import Fix

__all__ = ["ServeClient"]


class ServeClient:
    """One client connection to a :class:`~repro.serve.server.TrajectoryServer`.

    The protocol is strictly request/response per connection, so one
    client instance must not be shared between concurrently running
    coroutines; open one connection per concurrent session instead (the
    load generator in :mod:`repro.serve.bench` does exactly that).
    """

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServeClient":
        """Open a TCP connection to a running server."""
        reader, writer = await asyncio.open_connection(
            host, port, limit=MAX_LINE_BYTES
        )
        return cls(reader, writer)

    async def __aenter__(self) -> "ServeClient":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.aclose()

    async def aclose(self) -> None:
        """Close the connection (open sessions stay live server-side)."""
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass

    async def request(self, message: dict) -> dict:
        """Send one raw protocol message and await its response.

        Raises:
            ServeError: an ``ok: false`` response (with the server's
                ``code``), or a dropped connection
                (code ``connection-closed``).
        """
        self._writer.write(encode_message(message))
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ServeError(
                "server closed the connection", code="connection-closed"
            )
        response = decode_line(line)
        if not response.get("ok"):
            raise ServeError(
                str(response.get("error", "unspecified server error")),
                code=str(response.get("code", "internal")),
            )
        return response

    # ------------------------------------------------------------------ #
    # Verbs
    # ------------------------------------------------------------------ #

    async def open(self, session: str, spec: str) -> dict:
        """Open a session compressing under a spec string."""
        return await self.request({"op": "open", "session": session, "spec": spec})

    async def append(
        self, session: str, fixes: Iterable[Fix | Sequence[float]]
    ) -> list[Fix]:
        """Append fixes; returns the fixes the compressor decided to retain.

        Fixes go out in the protocol's flat batch form (one
        ``fixes_flat`` array of ``t, x, y`` runs), the cheapest encoding
        on both ends of the wire.
        """
        flat = [float(value) for fix in fixes for value in fix]
        response = await self.request(
            {"op": "append", "session": session, "fixes_flat": flat}
        )
        return [Fix(*triple) for triple in response["retained"]]

    async def close_session(self, session: str) -> dict:
        """Close a session; returns ``{"retained": [...], "stored": ...}``.

        ``retained`` holds the final fixes (as :class:`Fix`) the close
        decided; ``stored`` is the store's catalog summary, or ``None``
        for a session that never appended a fix.
        """
        response = await self.request({"op": "close", "session": session})
        return {
            "retained": [Fix(*triple) for triple in response["retained"]],
            "stored": response.get("stored"),
        }

    async def flush(self) -> dict:
        """Ask the server to re-persist its store file now."""
        return await self.request({"op": "flush"})

    async def stats(self) -> dict:
        """The server's observability snapshot (see ``docs/SERVING.md``)."""
        response = await self.request({"op": "stats"})
        return response["stats"]
