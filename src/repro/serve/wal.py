"""Per-session write-ahead logging for the trajectory-ingestion service.

The serve tier's crash-safety substrate: every state-changing request
(``open``, ``append``, the post-flush truncation marker) is staged as
one CRC-prefixed JSON line — the same ``<crc32 hex8> <payload>`` line
format as the PR-2 checkpoint journal, via
:func:`repro.io_util.encode_crc_line` — into an append-only segment
file, and made durable by a **group commit** (one ``write`` + one
``fsync`` covering every record staged since the last commit) *before*
the response is acknowledged. Because the online compressors are
deterministic and streaming == batch is bit-identical, replaying the
surviving records through the registered
:class:`~repro.streaming.base.OnlineCompressor` factories reconstructs
every session's acknowledged state exactly.

Layout: one directory per server, segments named ``seg-<n>.wal`` and
written strictly in order. Records carry the session id, so recovery
demultiplexes the shared log back into per-session streams:

* ``{"k": "o", "s": id, "spec": spec}`` — session opened;
* ``{"k": "a", "s": id, "q": seq, "f": "<base64>"}`` — one
  acknowledged append batch with its monotonic per-session sequence
  number and the flat ``(t, x, y)`` array packed as little-endian
  IEEE-754 doubles (bit-exact, and ~8x cheaper to encode than JSON
  float text; the scan also accepts the older plain-list form);
* ``{"k": "r", "s": id, "b": budget}`` — the session's point budget was
  renegotiated (degraded admission). Ordered with the appends: a
  replayed renegotiation evicts exactly the points the live one did
  only if it runs at the same position in the session's history;
* ``{"k": "f", "s": id}`` — the session was durably flushed into the
  store; its earlier records are dead. A segment is deleted only when
  every session recorded in it has such a marker — truncation strictly
  *after* a durable store flush.

A crash can only damage bytes past the last fsync, i.e. records that
were never acknowledged, so recovery drops everything from the first
damaged line onward (counting what it dropped) and keeps the intact
prefix — and the writer physically truncates the damaged bytes out of
the segment before accepting new appends, so a later restart can never
rediscover old damage and discard records acknowledged since. fsync
failure is **sticky**: durability of everything staged
since the last successful commit is unknown, so the writer poisons
itself, the server refuses further appends with ``wal-failure``, and a
restart recovers the last-known-durable state — the PostgreSQL
fsync-panic stance, scaled to one process.
"""

from __future__ import annotations

import asyncio
import json
import os
import struct
from base64 import b64decode, b64encode
from dataclasses import dataclass, field
from itertools import chain
from pathlib import Path
from typing import Iterable, Sequence

from repro.exceptions import WalError
from repro.io_util import decode_crc_line, encode_crc_line, fsync_directory
from repro.serve.faults import FaultInjector
from repro.types import Fix

__all__ = [
    "DEFAULT_SEGMENT_BYTES",
    "SEGMENT_PREFIX",
    "SEGMENT_SUFFIX",
    "RecoveredSession",
    "WalScan",
    "WalWriter",
    "scan_wal",
]

#: Rotate the active segment once it grows past this many bytes.
DEFAULT_SEGMENT_BYTES = 4 * 1024 * 1024

SEGMENT_PREFIX = "seg-"
SEGMENT_SUFFIX = ".wal"


def _segment_path(directory: Path, index: int) -> Path:
    return directory / f"{SEGMENT_PREFIX}{index:08d}{SEGMENT_SUFFIX}"


def _segment_index(path: Path) -> "int | None":
    name = path.name
    if not (name.startswith(SEGMENT_PREFIX) and name.endswith(SEGMENT_SUFFIX)):
        return None
    try:
        return int(name[len(SEGMENT_PREFIX) : -len(SEGMENT_SUFFIX)])
    except ValueError:
        return None


@dataclass
class RecoveredSession:
    """One session's replayable state as reassembled from the log.

    ``ops`` preserves the commit order of every state-changing record:
    ``("a", seq, fixes)`` for an acknowledged append batch,
    ``("r", budget)`` for a budget renegotiation. Replaying them in
    order through the deterministic compressors reconstructs the
    session bit-identically — a renegotiation's evictions depend on
    which appends preceded it, so the interleaving matters.
    """

    session_id: str
    spec: str
    #: State-changing records in commit order (see class docstring).
    ops: "list[tuple]" = field(default_factory=list)
    #: True when a flush marker followed — nothing left to recover.
    flushed: bool = False

    @property
    def appends(self) -> "list[tuple[int, list[Fix]]]":
        """Acknowledged append batches in commit order: ``(seq, fixes)``."""
        return [(op[1], op[2]) for op in self.ops if op[0] == "a"]

    @property
    def last_seq(self) -> int:
        appends = self.appends
        return appends[-1][0] if appends else 0

    @property
    def n_fixes(self) -> int:
        return sum(len(fixes) for _, fixes in self.appends)


@dataclass
class WalScan:
    """Everything a startup scan learned from the surviving segments."""

    sessions: "dict[str, RecoveredSession]" = field(default_factory=dict)
    segment_indices: "list[int]" = field(default_factory=list)
    #: Per segment index: session ids with live (unflushed) records.
    live_by_segment: "dict[int, set[str]]" = field(default_factory=dict)
    records: int = 0
    #: Lines discarded from the first damaged line onward (torn tail).
    dropped_lines: int = 0
    #: Index of the segment holding the first damaged line (None = no
    #: damage), and the byte offset of its intact prefix — where the
    #: writer must physically truncate so the damage cannot be
    #: rediscovered on a *later* restart and eat records acknowledged
    #: since (see :meth:`WalWriter._repair_torn_tail`).
    damaged_segment: "int | None" = None
    damaged_offset: int = 0

    @property
    def live_sessions(self) -> "dict[str, RecoveredSession]":
        """Sessions that still need recovery (no flush marker)."""
        return {
            sid: rec for sid, rec in self.sessions.items() if not rec.flushed
        }


def _parse_record(payload: str) -> "dict | None":
    try:
        record = json.loads(payload)
    except json.JSONDecodeError:
        return None
    return record if isinstance(record, dict) else None


def _fixes_from_flat(flat: Sequence[float]) -> "list[Fix]":
    strided = iter(flat)
    return list(map(Fix._make, zip(strided, strided, strided)))


def _pack_fixes(fixes: Iterable[Fix]) -> str:
    flat = list(chain.from_iterable(fixes))  # Fix is a (t, x, y) tuple
    return b64encode(struct.pack(f"<{len(flat)}d", *flat)).decode("ascii")


def _unpack_fixes(payload: object) -> "list[Fix] | None":
    """Decode an append record's fix payload (packed or legacy list)."""
    if isinstance(payload, list):
        return _fixes_from_flat(payload)
    if not isinstance(payload, str):
        return None
    try:
        raw = b64decode(payload.encode("ascii"), validate=True)
        flat = struct.unpack(f"<{len(raw) // 8}d", raw)
    except (ValueError, struct.error):
        return None
    return _fixes_from_flat(flat) if len(flat) % 3 == 0 else None


def scan_wal(directory: "str | Path") -> WalScan:
    """Read every surviving segment into per-session replay streams.

    Damage handling follows the append-only contract: a crash can only
    tear bytes that were never acknowledged, so scanning stops at the
    first damaged or unparsable line and everything from there onward
    (including later segments — they postdate the damage) is discarded
    and counted in :attr:`WalScan.dropped_lines`. The intact prefix is
    always recovered; the scan never refuses. The first damaged line's
    location is reported via :attr:`WalScan.damaged_segment` /
    :attr:`WalScan.damaged_offset` so the writer can cut it out of the
    file before accepting new appends.
    """
    directory = Path(directory)
    scan = WalScan()
    if not directory.is_dir():
        return scan
    segments = sorted(
        (index, path)
        for path in directory.iterdir()
        if (index := _segment_index(path)) is not None
    )
    scan.segment_indices = [index for index, _ in segments]
    damaged = False

    def mark_damage(index: int, offset: int) -> None:
        nonlocal damaged
        damaged = True
        scan.damaged_segment = index
        scan.damaged_offset = offset
        scan.dropped_lines += 1

    for index, path in segments:
        live = scan.live_by_segment.setdefault(index, set())
        raw_lines = path.read_bytes().split(b"\n")
        if raw_lines and raw_lines[-1] == b"":
            raw_lines.pop()
        offset = 0
        for raw in raw_lines:
            line_start, offset = offset, offset + len(raw) + 1
            if damaged:
                scan.dropped_lines += 1
                continue
            try:
                line = raw.decode("utf-8")
            except UnicodeDecodeError:
                # A torn tail can end in arbitrary bytes; garbage that
                # is not even text is damage, not a scan crash.
                mark_damage(index, line_start)
                continue
            payload = decode_crc_line(line)
            record = None if payload is None else _parse_record(payload)
            if record is None:
                mark_damage(index, line_start)
                continue
            kind = record.get("k")
            sid = record.get("s")
            if not isinstance(sid, str):
                mark_damage(index, line_start)
                continue
            if kind == "o":
                scan.records += 1
                spec = record.get("spec")
                existing = scan.sessions.get(sid)
                if existing is None or existing.flushed:
                    scan.sessions[sid] = RecoveredSession(sid, str(spec))
                live.add(sid)
            elif kind == "a":
                seq = record.get("q")
                fixes = _unpack_fixes(record.get("f"))
                if not isinstance(seq, int) or fixes is None:
                    # The CRC is intact but the payload is unusable:
                    # that is corruption, not a torn write — silently
                    # skipping it would drop an acknowledged batch
                    # mid-stream while still applying later ones.
                    mark_damage(index, line_start)
                    continue
                scan.records += 1
                session = scan.sessions.get(sid)
                if session is None or session.flushed:
                    # An append with no live open record: the open was
                    # in a segment already truncated away; nothing to
                    # attach it to.
                    continue
                session.ops.append(("a", seq, fixes))
                live.add(sid)
            elif kind == "r":
                budget = record.get("b")
                if not isinstance(budget, int):
                    mark_damage(index, line_start)
                    continue
                scan.records += 1
                session = scan.sessions.get(sid)
                if session is None or session.flushed:
                    continue
                session.ops.append(("r", budget))
                live.add(sid)
            elif kind == "f":
                scan.records += 1
                session = scan.sessions.get(sid)
                if session is not None:
                    session.flushed = True
                for members in scan.live_by_segment.values():
                    members.discard(sid)
            else:
                scan.records += 1
    for index in list(scan.live_by_segment):
        if not scan.live_by_segment[index]:
            del scan.live_by_segment[index]
    return scan


class WalWriter:
    """Group-committed append-only log over rotating segments.

    Staging (:meth:`stage_open` / :meth:`stage_append` /
    :meth:`stage_flushed`) is cheap and synchronous — records buffer in
    memory. :meth:`commit` makes everything staged so far durable with
    one write + one fsync; concurrent committers coalesce onto a single
    flush (group commit), which is what keeps WAL-on throughput within
    a constant of WAL-off under concurrency. Construction scans the
    directory, exposes the surviving sessions as :attr:`recovered`,
    garbage-collects fully-flushed segments, and starts a fresh segment
    strictly after the survivors.

    Args:
        directory: the WAL directory (created if absent).
        segment_bytes: rotate the active segment past this size.
        durable: fsync on commit; ``False`` keeps the format (tests).
        faults: optional :class:`FaultInjector` for the chaos harness.
    """

    def __init__(
        self,
        directory: "str | Path",
        *,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        durable: bool = True,
        faults: "FaultInjector | None" = None,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.segment_bytes = int(segment_bytes)
        self.durable = durable
        self.faults = faults
        self.recovered = scan_wal(self.directory)
        self._repair_torn_tail()
        self._live: "dict[int, set[str]]" = {
            index: set(members)
            for index, members in self.recovered.live_by_segment.items()
        }
        # Segments every session has flushed out of are already dead —
        # as are segments that postdate a torn tail (the scan discarded
        # their records, so their bytes must not survive either).
        for index in self.recovered.segment_indices:
            if index not in self._live:
                self._unlink_segment(index)
        last = max(self.recovered.segment_indices, default=0)
        self._segment_index = last + 1
        self._segment_written = 0
        self._handle: "object | None" = None  # BinaryIO of active segment
        self._pending: "list[tuple[str, str, dict]]" = []
        self._staged_records = 0
        self._committed_records = 0
        self._commits = 0
        self._commit_failures = 0
        self._dirty: "set[str]" = set()
        self._failed: "BaseException | None" = None
        self._lock = asyncio.Lock()

    def _repair_torn_tail(self) -> None:
        """Physically cut the first damaged line out of its segment.

        The scan already *ignores* everything from the first damaged
        line onward, but the bytes are still on disk. Left in place,
        the damage would be rediscovered by the scan of the *next*
        restart — and because that writer acknowledges new appends into
        later segments, the discard-everything-after-damage rule would
        then throw away acknowledged records. Truncating the segment to
        its intact prefix before accepting any new append keeps the
        rule sound across any number of restarts. (Segments wholly past
        the damage carry no live sessions after the scan and are
        unlinked by the constructor's dead-segment sweep.)
        """
        index = self.recovered.damaged_segment
        if index is None:
            return
        path = _segment_path(self.directory, index)
        try:
            fd = os.open(path, os.O_RDWR)
        except OSError:
            return
        try:
            os.ftruncate(fd, self.recovered.damaged_offset)
            if self.durable:
                os.fsync(fd)
        finally:
            os.close(fd)

    # ------------------------------------------------------------------ #
    # Staging
    # ------------------------------------------------------------------ #

    @property
    def failed(self) -> "BaseException | None":
        """The sticky commit failure, when one has happened."""
        return self._failed

    @property
    def pending_records(self) -> int:
        """Records staged but not yet durable."""
        return self._staged_records - self._committed_records

    def dirty_sessions(self) -> "set[str]":
        """Sessions with records staged since the last durable commit.

        After a commit failure these sessions' in-memory state may be
        ahead of the log; the server discards them so that what it
        serves never silently diverges from what a restart would
        recover.
        """
        return set(self._dirty)

    def _check_failed(self) -> None:
        if self._failed is not None:
            raise WalError(f"write-ahead log is failed: {self._failed}")

    def _stage(self, kind: str, session_id: str, record: dict) -> None:
        # Serialisation is deferred to commit time so it runs in the
        # commit's worker thread, off the event loop (the request hot
        # path only appends a tuple here).
        self._check_failed()
        self._pending.append((kind, session_id, record))
        self._staged_records += 1
        self._dirty.add(session_id)

    def stage_open(self, session_id: str, spec: str) -> None:
        """Stage a session-open record (its compressor spec included)."""
        self._stage("o", session_id, {"k": "o", "s": session_id, "spec": spec})

    def stage_append(
        self, session_id: str, seq: int, fixes: Iterable[Fix]
    ) -> None:
        """Stage one append batch under its per-session sequence number."""
        self._stage(
            "a",
            session_id,
            {"k": "a", "s": session_id, "q": seq, "f": _pack_fixes(fixes)},
        )

    def stage_renegotiate(self, session_id: str, budget: int) -> None:
        """Stage a budget renegotiation (degraded admission)."""
        self._stage(
            "r", session_id, {"k": "r", "s": session_id, "b": int(budget)}
        )

    def stage_flushed(self, session_id: str) -> None:
        """Stage the truncation marker: the session reached the store."""
        self._stage("f", session_id, {"k": "f", "s": session_id})

    # ------------------------------------------------------------------ #
    # Commit
    # ------------------------------------------------------------------ #

    async def commit(self) -> None:
        """Make everything staged so far durable (group commit).

        Concurrent callers coalesce: whoever takes the lock first
        flushes every record staged up to that instant (the write and
        fsync run in a worker thread so the event loop keeps serving),
        and followers whose records it covered return without another
        fsync.

        Raises:
            WalError: the write or fsync failed — now and on every
                later call (sticky; see the module docstring).
        """
        self._check_failed()
        target = self._staged_records
        if self._committed_records >= target:
            return
        async with self._lock:
            # Re-check after the wait: the lock holder we parked behind
            # may have poisoned the log. Proceeding would reopen the
            # closed handle and write records for sessions the server
            # just discarded — records a restart would then replay even
            # though their clients were told the commit failed.
            self._check_failed()
            if self._committed_records >= target:
                return
            group, staged = self._take_group()
            loop = asyncio.get_running_loop()
            try:
                written = await loop.run_in_executor(
                    None, self._encode_and_write, group
                )
            except BaseException as exc:
                raise self._poison(exc) from exc
            self._after_commit(group, staged, written)

    def commit_sync(self) -> None:
        """Blocking :meth:`commit` for synchronous callers (CLI, tests).

        Must not run concurrently with :meth:`commit` — it bypasses the
        commit lock (the server only calls it after the event loop's
        connection tasks are torn down).
        """
        self._check_failed()
        if self._committed_records >= self._staged_records:
            return
        group, staged = self._take_group()
        try:
            written = self._encode_and_write(group)
        except BaseException as exc:
            raise self._poison(exc) from exc
        self._after_commit(group, staged, written)

    def _take_group(self) -> "tuple[list[tuple[str, str, dict]], int]":
        group, self._pending = self._pending, []
        return group, self._staged_records

    def _poison(self, exc: BaseException) -> WalError:
        self._commit_failures += 1
        self._failed = exc
        self._close_handle()
        return WalError(
            f"write-ahead log commit failed ({type(exc).__name__}: {exc}); "
            f"refusing further writes until restart recovery"
        )

    def _encode_and_write(self, group: "list[tuple[str, str, dict]]") -> int:
        """Serialise + append + flush + fsync one group; returns bytes.

        Runs in the commit's worker thread for async callers, so the
        JSON/CRC encoding of the group overlaps with the event loop
        serving other requests.
        """
        encoded = "".join(
            encode_crc_line(
                json.dumps(record, separators=(",", ":"), sort_keys=True)
            )
            for _, _, record in group
        )
        data = encoded.encode("utf-8")
        self._write_bytes(data)
        return len(data)

    def _write_bytes(self, data: bytes) -> None:
        """Append + flush + fsync one group into the active segment."""
        if self.faults is not None:
            self.faults.fire("wal.write")
        if self._handle is None:
            path = _segment_path(self.directory, self._segment_index)
            self._handle = open(path, "ab")
            if self.durable:
                fsync_directory(self.directory)
        handle = self._handle
        handle.write(data)  # type: ignore[attr-defined]
        handle.flush()  # type: ignore[attr-defined]
        if self.faults is not None:
            self.faults.fire("wal.fsync")
        if self.durable:
            os.fsync(handle.fileno())  # type: ignore[attr-defined]
        if self.faults is not None:
            self.faults.fire("wal.commit")

    def _after_commit(
        self, group: "list[tuple[str, str, dict]]", staged: int, written: int
    ) -> None:
        """Durable-group bookkeeping: liveness, truncation, rotation."""
        live = self._live.setdefault(self._segment_index, set())
        flushed: "list[str]" = []
        for kind, sid, _ in group:
            if kind == "f":
                flushed.append(sid)
            else:
                live.add(sid)
        for sid in flushed:
            for members in self._live.values():
                members.discard(sid)
        self._segment_written += written
        self._committed_records = staged
        self._commits += 1
        # Sessions with records staged *while* this group's write was in
        # flight (they sit in ``_pending``) are not durable yet and must
        # stay dirty — a set-wide clear here would let the server keep
        # serving their in-memory state even if the next commit fails.
        self._dirty = {sid for _, sid, _ in self._pending}
        # Truncate: drop whole segments once nothing in them is live.
        for index in [i for i, m in self._live.items() if not m]:
            if index != self._segment_index:
                del self._live[index]
                self._unlink_segment(index)
        if self._segment_written >= self.segment_bytes:
            self._close_handle()
            if not self._live.get(self._segment_index):
                self._live.pop(self._segment_index, None)
                self._unlink_segment(self._segment_index)
            self._segment_index += 1
            self._segment_written = 0

    def _unlink_segment(self, index: int) -> None:
        try:
            _segment_path(self.directory, index).unlink()
        except OSError:
            return
        if self.durable:
            fsync_directory(self.directory)

    def _close_handle(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()  # type: ignore[attr-defined]
            except OSError:
                pass
            self._handle = None

    def close(self) -> None:
        """Close the active segment handle (safe to call repeatedly)."""
        self._close_handle()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def stats(self) -> dict:
        """JSON-ready snapshot for the ``stats`` verb."""
        return {
            "directory": str(self.directory),
            "failed": self._failed is not None,
            "segments": sorted(self._live) or [self._segment_index],
            "active_segment": self._segment_index,
            "staged_records": self._staged_records,
            "committed_records": self._committed_records,
            "pending_records": self.pending_records,
            "commits": self._commits,
            "commit_failures": self._commit_failures,
            "recovered_sessions": len(self.recovered.live_sessions),
            "recovered_records": self.recovered.records,
            "recovery_dropped_lines": self.recovered.dropped_lines,
        }
