"""Wire protocol of the trajectory-ingestion service.

Newline-delimited JSON over a byte stream: each message is one JSON
object on one ``\\n``-terminated line, UTF-8 encoded. Requests carry an
``op`` (one of :data:`OPS`) plus op-specific fields; responses echo the
``op`` (and ``session`` where applicable) and carry ``ok``. Error
responses set ``ok`` to false plus a machine-readable ``code`` from
:data:`ERROR_CODES` and a human-readable ``error``.

The full request/response catalogue, with examples, is in
``docs/SERVING.md``. Fixes travel as ``[t, x, y]`` triples of JSON
numbers — or, for high-throughput appends, as one flat
``[t0, x0, y0, t1, x1, y1, ...]`` array under ``fixes_flat``, which
decodes several times faster than a list of triples. Shortest
round-trip float serialization makes the wire exact either way, which
is what lets a served session reproduce the batch algorithm's output
bit for bit.

Serialization rides ``orjson`` when it is installed (several times
faster than the stdlib on append-sized payloads) and falls back to the
stdlib ``json`` module transparently — the wire bytes are equivalent
JSON in both cases.
"""

from __future__ import annotations

import json
import math
from typing import Iterable, Sequence

try:  # optional accelerator; the stdlib path is always available
    import orjson as _orjson
except ImportError:  # pragma: no cover - depends on the environment
    _orjson = None  # type: ignore[assignment]

from repro.exceptions import ServeError
from repro.types import Fix

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_LINE_BYTES",
    "OPS",
    "ERROR_CODES",
    "encode_message",
    "decode_line",
    "ok_response",
    "error_response",
    "parse_fix",
    "parse_fixes",
    "parse_flat_fixes",
    "render_fixes",
]

#: Version announced in ``stats`` responses; bump on wire changes.
#: v2 added per-session append sequence numbers, the ``resume`` verb,
#: and the ``wal-failure`` / ``bad-seq`` error codes.
#: v3 added the read path: the ``query`` verb (position/window/nearest
#: over stored + live data), the ``summaries`` verb, and the
#: ``not-found`` error code.
PROTOCOL_VERSION = 3

#: Upper bound on one protocol line (requests *and* responses). Bounds
#: per-connection buffering; a batched append must stay under it.
MAX_LINE_BYTES = 1_048_576

#: The request verbs the server understands.
OPS = ("open", "append", "resume", "close", "flush", "stats", "query", "summaries")

#: Machine-readable error codes carried by ``ok: false`` responses.
ERROR_CODES = (
    "bad-json",        # the line was not a JSON object
    "bad-request",     # missing/ill-typed fields, unknown op, oversized line
    "bad-spec",        # compressor spec unparsable or not streamable
    "bad-fix",         # a fix was not [t, x, y] with finite numbers
    "bad-seq",         # append sequence number left a gap; resume first
    "rejected",        # admission control: session limit reached
    "duplicate-session",
    "unknown-session",
    "out-of-order",    # fix timestamp did not advance the session clock
    "not-found",       # query: unknown object, or time outside its interval
    "storage",         # the store refused the flush (e.g. id collision)
    "wal-failure",     # the write-ahead log could not commit durably
    "unavailable",     # sharded tier: the owning worker is down; retry later
    "timeout",         # client-side only: no response within the deadline
    "internal",
)


def encode_message(message: dict) -> bytes:
    """Serialize one protocol message to its wire line (with newline).

    ``allow_nan=False`` keeps the wire format interoperable JSON: a
    non-finite float in a message is a programming error, surfaced here.
    The orjson fast path serializes non-finite floats as ``null``, so any
    payload containing ``null`` is re-encoded through the stdlib, which
    raises on NaN/inf and writes identical bytes for a legitimate None.
    """
    if _orjson is not None:
        try:
            payload = _orjson.dumps(message)
        except TypeError:
            pass  # e.g. tuples; the stdlib encoder handles them
        else:
            if b"null" not in payload:
                return payload + b"\n"
    return (
        json.dumps(message, separators=(",", ":"), allow_nan=False) + "\n"
    ).encode("utf-8")


def decode_line(line: bytes) -> dict:
    """Parse one wire line into a message dict.

    Raises:
        ServeError: (code ``bad-json`` / ``bad-request``) for non-JSON
            bytes or a JSON value that is not an object.
    """
    try:
        # orjson.JSONDecodeError subclasses json.JSONDecodeError, so the
        # except clause covers both decoders.
        message = _orjson.loads(line) if _orjson is not None else json.loads(line)
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServeError(f"undecodable protocol line: {exc}", code="bad-json") from None
    if not isinstance(message, dict):
        raise ServeError(
            f"protocol messages are JSON objects, got {type(message).__name__}",
            code="bad-request",
        )
    return message


def ok_response(op: str, session: str | None = None, **fields: object) -> dict:
    """A successful response for ``op`` (echoing ``session`` if given)."""
    response: dict = {"ok": True, "op": op}
    if session is not None:
        response["session"] = session
    response.update(fields)
    return response


def error_response(
    op: str | None,
    code: str,
    message: str,
    session: str | None = None,
    **fields: object,
) -> dict:
    """An ``ok: false`` response with a :data:`ERROR_CODES` code."""
    response: dict = {"ok": False, "op": op, "code": code, "error": message}
    if session is not None:
        response["session"] = session
    response.update(fields)
    return response


def parse_fix(value: object) -> Fix:
    """Validate one wire fix (``[t, x, y]``, finite numbers) into a Fix.

    Raises:
        ServeError: (code ``bad-fix``) for wrong shape, wrong types or
            non-finite values.
    """
    if (
        not isinstance(value, Sequence)
        or isinstance(value, (str, bytes))
        or len(value) != 3
    ):
        raise ServeError(f"a fix is a [t, x, y] triple, got {value!r}", code="bad-fix")
    try:
        t, x, y = (float(part) for part in value)
    except (TypeError, ValueError):
        raise ServeError(
            f"fix components must be numbers, got {value!r}", code="bad-fix"
        ) from None
    if not (math.isfinite(t) and math.isfinite(x) and math.isfinite(y)):
        raise ServeError(f"non-finite fix {value!r}", code="bad-fix")
    return Fix(t, x, y)


def parse_fixes(values: object) -> list[Fix]:
    """Validate a wire list of ``[t, x, y]`` triples into Fixes.

    The append hot path: a single comprehension handles the well-formed
    case; anything irregular falls back to per-item :func:`parse_fix`
    so the error message names the offending fix.

    Raises:
        ServeError: (``bad-request``) when ``values`` is not a list,
            (``bad-fix``) for a malformed or non-finite fix.
    """
    if not isinstance(values, list):
        raise ServeError(
            f"'fixes' must be a list of [t, x, y] triples, "
            f"got {type(values).__name__}",
            code="bad-request",
        )
    # The all-lists guard keeps oddities (a 3-char numeric string would
    # unpack) on the slow path, where parse_fix rejects them precisely.
    if not all(type(value) is list for value in values):
        return [parse_fix(value) for value in values]
    try:
        fixes = [Fix(float(t), float(x), float(y)) for t, x, y in values]
    except (TypeError, ValueError):
        return [parse_fix(value) for value in values]
    # A single running sum detects NaN/inf anywhere in the batch at
    # C speed; only then is the per-fix scan (with its precise error)
    # worth paying. Overflow of legitimately finite values also lands
    # here and is cleared by the rescan.
    total = 0.0
    for fix in fixes:
        total += fix[0] + fix[1] + fix[2]
    if not math.isfinite(total):
        return [parse_fix(value) for value in values]
    return fixes


def parse_flat_fixes(values: object) -> list[Fix]:
    """Validate a flat ``[t0, x0, y0, t1, ...]`` wire array into Fixes.

    The fastest batch form: one JSON array of plain numbers decodes in a
    fraction of the time a list of triples takes, and the triples are
    rebuilt here with ``Fix._make`` over a strided zip.

    Raises:
        ServeError: (``bad-fix``) when the array is not a list, its
            length is not a multiple of 3, or any component is not a
            finite number.
    """
    if not isinstance(values, list):
        raise ServeError(
            f"'fixes_flat' must be a flat list of numbers, "
            f"got {type(values).__name__}",
            code="bad-fix",
        )
    if len(values) % 3:
        raise ServeError(
            f"'fixes_flat' length must be a multiple of 3, got {len(values)}",
            code="bad-fix",
        )
    try:
        total = sum(values)
    except TypeError:
        raise ServeError(
            "fix components must be numbers", code="bad-fix"
        ) from None
    if not isinstance(total, (int, float)) or not math.isfinite(total):
        # NaN/inf somewhere — or overflow of legitimate values; rescan
        # to tell the two apart and name the culprit.
        for value in values:
            if not isinstance(value, (int, float)) or not math.isfinite(value):
                raise ServeError(f"non-finite fix component {value!r}", code="bad-fix")
    strided = iter(values)
    return list(map(Fix._make, zip(strided, strided, strided)))


def render_fixes(fixes: Iterable[Fix]) -> list[list[float]]:
    """Render fixes as wire triples (the inverse of :func:`parse_fix`)."""
    return [[fix.t, fix.x, fix.y] for fix in fixes]
