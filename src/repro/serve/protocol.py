"""Wire protocol of the trajectory-ingestion service.

Newline-delimited JSON over a byte stream: each message is one JSON
object on one ``\\n``-terminated line, UTF-8 encoded. Requests carry an
``op`` (one of :data:`OPS`) plus op-specific fields; responses echo the
``op`` (and ``session`` where applicable) and carry ``ok``. Error
responses set ``ok`` to false plus a machine-readable ``code`` from
:data:`ERROR_CODES` and a human-readable ``error``.

The full request/response catalogue, with examples, is in
``docs/SERVING.md``. Fixes travel as ``[t, x, y]`` triples of JSON
numbers; Python's ``repr``-based float serialization makes the round
trip exact, which is what lets a served session reproduce the batch
algorithm's output bit for bit.
"""

from __future__ import annotations

import json
import math
from typing import Iterable, Sequence

from repro.exceptions import ServeError
from repro.types import Fix

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_LINE_BYTES",
    "OPS",
    "ERROR_CODES",
    "encode_message",
    "decode_line",
    "ok_response",
    "error_response",
    "parse_fix",
    "render_fixes",
]

#: Version announced in ``stats`` responses; bump on wire changes.
PROTOCOL_VERSION = 1

#: Upper bound on one protocol line (requests *and* responses). Bounds
#: per-connection buffering; a batched append must stay under it.
MAX_LINE_BYTES = 1_048_576

#: The request verbs the server understands.
OPS = ("open", "append", "close", "flush", "stats")

#: Machine-readable error codes carried by ``ok: false`` responses.
ERROR_CODES = (
    "bad-json",        # the line was not a JSON object
    "bad-request",     # missing/ill-typed fields, unknown op, oversized line
    "bad-spec",        # compressor spec unparsable or not streamable
    "bad-fix",         # a fix was not [t, x, y] with finite numbers
    "rejected",        # admission control: session limit reached
    "duplicate-session",
    "unknown-session",
    "out-of-order",    # fix timestamp did not advance the session clock
    "storage",         # the store refused the flush (e.g. id collision)
    "internal",
)


def encode_message(message: dict) -> bytes:
    """Serialize one protocol message to its wire line (with newline).

    ``allow_nan=False`` keeps the wire format interoperable JSON: a
    non-finite float in a message is a programming error, surfaced here.
    """
    return (
        json.dumps(message, separators=(",", ":"), allow_nan=False) + "\n"
    ).encode("utf-8")


def decode_line(line: bytes) -> dict:
    """Parse one wire line into a message dict.

    Raises:
        ServeError: (code ``bad-json`` / ``bad-request``) for non-JSON
            bytes or a JSON value that is not an object.
    """
    try:
        message = json.loads(line)
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServeError(f"undecodable protocol line: {exc}", code="bad-json") from None
    if not isinstance(message, dict):
        raise ServeError(
            f"protocol messages are JSON objects, got {type(message).__name__}",
            code="bad-request",
        )
    return message


def ok_response(op: str, session: str | None = None, **fields: object) -> dict:
    """A successful response for ``op`` (echoing ``session`` if given)."""
    response: dict = {"ok": True, "op": op}
    if session is not None:
        response["session"] = session
    response.update(fields)
    return response


def error_response(
    op: str | None,
    code: str,
    message: str,
    session: str | None = None,
    **fields: object,
) -> dict:
    """An ``ok: false`` response with a :data:`ERROR_CODES` code."""
    response: dict = {"ok": False, "op": op, "code": code, "error": message}
    if session is not None:
        response["session"] = session
    response.update(fields)
    return response


def parse_fix(value: object) -> Fix:
    """Validate one wire fix (``[t, x, y]``, finite numbers) into a Fix.

    Raises:
        ServeError: (code ``bad-fix``) for wrong shape, wrong types or
            non-finite values.
    """
    if (
        not isinstance(value, Sequence)
        or isinstance(value, (str, bytes))
        or len(value) != 3
    ):
        raise ServeError(f"a fix is a [t, x, y] triple, got {value!r}", code="bad-fix")
    try:
        t, x, y = (float(part) for part in value)
    except (TypeError, ValueError):
        raise ServeError(
            f"fix components must be numbers, got {value!r}", code="bad-fix"
        ) from None
    if not (math.isfinite(t) and math.isfinite(x) and math.isfinite(y)):
        raise ServeError(f"non-finite fix {value!r}", code="bad-fix")
    return Fix(t, x, y)


def render_fixes(fixes: Iterable[Fix]) -> list[list[float]]:
    """Render fixes as wire triples (the inverse of :func:`parse_fix`)."""
    return [[fix.t, fix.x, fix.y] for fix in fixes]
