"""Concurrent load generator for the ingestion service.

Starts an in-process :class:`~repro.serve.server.TrajectoryServer` on an
ephemeral loopback port, opens ``sessions`` concurrent client
connections (one session each), streams a deterministic synthetic
random-walk trajectory through every session, and measures client-side
append round-trip latency. With the admission limit induced at exactly
``sessions``, a further ``rejects`` opens are attempted while the server
is full and must come back with code ``"rejected"``.

Correctness is asserted, not assumed: every session's retained stream
(appends + close tail) must exactly equal the batch compressor's
selection on the same input — same points, same order, nothing dropped.

Results land in ``BENCH_serve.json``::

    repro serve-bench --sessions 50 --fixes 200

or programmatically via :func:`run_bench`.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.registry import make_compressor
from repro.exceptions import ServeError, UnknownCompressorError
from repro.io_util import write_atomic_json
from repro.serve.client import ServeClient
from repro.serve.server import TrajectoryServer
from repro.trajectory.trajectory import Trajectory
from repro.types import Fix

__all__ = [
    "DEFAULT_OUTPUT",
    "DEFAULT_SHARDED_OUTPUT",
    "DEFAULT_SPEC",
    "make_workload",
    "run_bench",
    "run_sharded_bench",
    "session_stream",
]

DEFAULT_OUTPUT = Path(__file__).resolve().parents[3] / "BENCH_serve.json"
DEFAULT_SHARDED_OUTPUT = (
    Path(__file__).resolve().parents[3] / "BENCH_serve_sharded.json"
)
DEFAULT_SPEC = "opw-tr:epsilon=25"


def make_workload(
    sessions: int, fixes_per_session: int, seed: int = 7
) -> list[tuple[str, list[Fix]]]:
    """Deterministic per-session fix streams (bounded random walks).

    A plain numpy random walk (1 Hz, ~14 m/s steps) is cheap enough to
    generate thousands of sessions and irregular enough that the opening
    window breaks regularly, exercising the retained-fix streaming path.
    """
    rng = np.random.default_rng(seed)
    workload = []
    for i in range(sessions):
        steps = rng.normal(0.0, 10.0, size=(fixes_per_session, 2))
        xy = np.cumsum(steps, axis=0)
        t = np.arange(fixes_per_session, dtype=float)
        fixes = [Fix(float(t[j]), float(xy[j, 0]), float(xy[j, 1]))
                 for j in range(fixes_per_session)]
        workload.append((f"bench-{i:04d}", fixes))
    return workload


def _expected_retained(spec: str, fixes: list[Fix]) -> list[Fix]:
    """The oracle selection on the same input.

    Threshold specs have a batch twin (the online form is proven
    batch-identical), so the batch compressor is the oracle. Budget
    specs (``squish``/``sttrace``) exist only online; their eviction
    order is a deterministic pure function of the pushed series, so a
    local single-pass replay *is* the oracle the served stream must
    match bit-for-bit.
    """
    try:
        traj = Trajectory.from_points([(f.t, f.x, f.y) for f in fixes])
        indices = make_compressor(spec).compress(traj).indices
        return [fixes[i] for i in indices]
    except UnknownCompressorError:
        return _online_replay(spec, fixes)


def _online_replay(spec: str, fixes: list[Fix]) -> list[Fix]:
    """Net retained stream of a fresh online compressor over ``fixes``."""
    from repro.streaming.base import partition_events
    from repro.streaming.registry import make_online_compressor

    compressor = make_online_compressor(spec)
    retained: list[Fix] = []
    evicted_times: set[float] = set()
    for fix in fixes:
        kept, evicted = partition_events(compressor.push(fix))
        retained.extend(kept)
        evicted_times.update(point.t for point in evicted)
    kept, evicted = partition_events(compressor.finish())
    retained.extend(kept)
    evicted_times.update(point.t for point in evicted)
    return [point for point in retained if point.t not in evicted_times]


async def _attempt_rejected_open(host: str, port: int, object_id: str) -> bool:
    """True when an open is refused with the structured ``rejected`` code."""
    async with await ServeClient.connect(host, port) as client:
        try:
            await client.open(object_id, DEFAULT_SPEC)
        except ServeError as exc:
            return exc.code == "rejected"
    return False


async def _bench(
    sessions: int,
    fixes_per_session: int,
    rejects: int,
    spec: str,
    batch: int,
    seed: int,
    wal_dir: "Path | None",
) -> dict:
    workload = make_workload(sessions, fixes_per_session, seed)
    server = TrajectoryServer(
        port=0,
        max_sessions=sessions,      # induced limit: extras must be rejected
        idle_timeout_s=3600.0,      # nothing may be evicted mid-bench
        sweep_interval_s=3600.0,
        wal_dir=wal_dir,
    )
    await server.start()
    try:
        latencies_ms: list[float] = []
        # Fill the server to its admission limit first...
        open_clients = []
        for object_id, _ in workload:
            client = await ServeClient.connect(server.host, server.port)
            await client.open(object_id, spec)
            open_clients.append(client)
        for client in open_clients:
            await client.aclose()
        # ...so the induced-limit rejections are deterministic.
        rejected = 0
        for k in range(rejects):
            if await _attempt_rejected_open(
                server.host, server.port, f"reject-{k:03d}"
            ):
                rejected += 1
        # Now stream all sessions concurrently (sessions are already
        # open server-side; each task reconnects and keeps appending).
        # One failed session must not poison the run silently: failures
        # are collected, the report is still produced (marked failed),
        # and CI always has something to upload.
        started = time.perf_counter()
        outcomes = await asyncio.gather(
            *(
                _drive_append_and_close(
                    server.host, server.port, object_id, fixes, batch, latencies_ms
                )
                for object_id, fixes in workload
            ),
            return_exceptions=True,
        )
        elapsed = time.perf_counter() - started

        failures: list[str] = []
        retained_streams: list[list[Fix]] = []
        session_p99s: list[float] = []
        for (object_id, fixes), outcome in zip(workload, outcomes):
            if isinstance(outcome, BaseException):
                failures.append(f"{object_id}: {type(outcome).__name__}: {outcome}")
                continue
            retained, own_latencies = outcome
            retained_streams.append(retained)
            p99 = _percentile(sorted(own_latencies), 99.0)
            if p99 is not None:
                session_p99s.append(p99)
            # Equivalence: nothing dropped, nothing reordered,
            # batch-identical against the batch algorithm's selection.
            expected = _expected_retained(spec, fixes)
            if retained != expected:
                failures.append(
                    f"{object_id}: served retained stream diverged from the "
                    f"batch result ({len(retained)} vs {len(expected)} points)"
                )

        stats = server.stats()
        ordered = sorted(latencies_ms)
        total_fixes = sessions * fixes_per_session
        report = {
            "config": {
                "spec": spec,
                "sessions": sessions,
                "fixes_per_session": fixes_per_session,
                "append_batch": batch,
                "induced_max_sessions": sessions,
                "attempted_rejects": rejects,
                "seed": seed,
            },
            "results": {
                "p50_append_ms": _percentile(ordered, 50.0),
                "p99_append_ms": _percentile(ordered, 99.0),
                "max_append_ms": ordered[-1] if ordered else None,
                "appends": len(ordered),
                "fixes_total": total_fixes,
                "elapsed_s": elapsed,
                "fixes_per_sec": total_fixes / elapsed if elapsed > 0 else None,
                "rejected_sessions": rejected,
                "retained_total": sum(len(r) for r in retained_streams),
                "equivalence": "failed" if failures else "batch-identical",
                # Distribution of *per-session* p99s — an aggregate p99
                # hides a single slow session; this does not.
                "session_p99_ms": _distribution(session_p99s),
                # Budget-compressor accounting (all zero on threshold
                # specs): retractions of previously-acked points and
                # admission-control renegotiations.
                "fixes_evicted": stats.get("fixes_evicted", 0),
                "budget_renegotiations": stats.get("budget_renegotiations", 0),
                "sessions_renegotiated": stats.get("sessions_renegotiated", 0),
                "sessions_admitted_degraded": stats.get(
                    "sessions_admitted_degraded", 0
                ),
                "fixes_evicted_by_algorithm": stats.get(
                    "fixes_evicted_by_algorithm", {}
                ),
            },
            "server_stats": stats,
        }
        if wal_dir is not None:
            # Only present on WAL runs: the perf gate compares configs
            # for exact equality, so WAL-off reports must stay
            # byte-compatible with pre-WAL baselines.
            report["config"]["wal"] = True
        if failures:
            report["failed"] = True
            report["failures"] = failures
        return report
    finally:
        await server.stop()


async def _drive_append_and_close(
    host: str,
    port: int,
    object_id: str,
    fixes: list[Fix],
    batch: int,
    latencies_ms: list[float],
) -> tuple[list[Fix], list[float]]:
    """Append + close for an already-open session, on a new connection.

    Returns the retained stream *and* this session's own append
    latencies — the shared ``latencies_ms`` list only aggregates, and an
    aggregate cannot answer per-session (hence per-shard) questions.
    """
    retained: list[Fix] = []
    evicted_times: set[float] = set()
    own_latencies: list[float] = []
    async with await ServeClient.connect(host, port) as client:
        for start in range(0, len(fixes), batch):
            chunk = fixes[start : start + batch]
            began = time.perf_counter()
            kept, evicted = await client.append_events(object_id, chunk)
            own_latencies.append((time.perf_counter() - began) * 1e3)
            retained.extend(kept)
            # Budget compressors retract previously-acked points; removal
            # by timestamp is idempotent (at-least-once delivery).
            evicted_times.update(point.t for point in evicted)
        latencies_ms.extend(own_latencies)
        summary = await client.close_session(object_id)
        retained.extend(summary["retained"])
        assert summary["stored"] is not None, f"{object_id}: nothing stored"
    if evicted_times:
        retained = [p for p in retained if p.t not in evicted_times]
    return retained, own_latencies


def _percentile(ordered: list[float], q: float) -> float | None:
    """Nearest-rank percentile of an already-sorted sample."""
    if not ordered:
        return None
    rank = max(0, min(len(ordered) - 1, round(q / 100.0 * len(ordered)) - 1))
    return ordered[rank]


def _distribution(values: list[float]) -> dict:
    """p50/p99/max summary of a sample (None-filled when empty)."""
    ordered = sorted(values)
    return {
        "p50": _percentile(ordered, 50.0),
        "p99": _percentile(ordered, 99.0),
        "max": ordered[-1] if ordered else None,
        "n": len(ordered),
    }


def run_bench(
    sessions: int = 50,
    fixes_per_session: int = 200,
    rejects: int = 8,
    spec: str = DEFAULT_SPEC,
    batch: int = 1,
    seed: int = 7,
    output: Path | str | None = DEFAULT_OUTPUT,
    wal: bool = False,
) -> dict:
    """Run the load benchmark; returns (and optionally writes) the report.

    Args:
        sessions: concurrent sessions (also the induced admission limit).
        fixes_per_session: stream length per session.
        rejects: extra opens attempted while the server is full; each
            must come back with the structured ``rejected`` error.
        spec: online compressor spec for every session.
        batch: fixes per append request (1 = per-fix latency).
        seed: workload RNG seed.
        output: where to write the JSON report (atomically); ``None``
            skips the write.
        wal: run the server with a write-ahead log (in a temporary
            directory, deleted afterwards) — measures the fsync-per-group
            durability overhead against the WAL-off numbers.

    Raises:
        ServeError: a session failed or its retained stream diverged
            from the batch result. The (partial) report is written
            first, with ``"failed": true`` and the per-session reasons
            under ``"failures"`` — a failing CI run still uploads a
            non-empty artifact.
    """
    if sessions < 1 or fixes_per_session < 2:
        raise ValueError("need at least 1 session and 2 fixes per session")
    if wal:
        with tempfile.TemporaryDirectory(prefix="repro-serve-wal-") as tmp:
            report = asyncio.run(
                _bench(
                    sessions, fixes_per_session, rejects, spec, batch, seed,
                    Path(tmp) / "wal",
                )
            )
    else:
        report = asyncio.run(
            _bench(sessions, fixes_per_session, rejects, spec, batch, seed, None)
        )
    if output is not None:
        write_atomic_json(Path(output), report)
    if report.get("failed"):
        failures = report.get("failures", [])
        raise ServeError(
            f"serve-bench failed ({len(failures)} session(s)): "
            + "; ".join(failures[:3])
            + ("..." if len(failures) > 3 else ""),
            code="internal",
        )
    return report


# ---------------------------------------------------------------------- #
# Sharded bench: driver subprocesses against a `serve --workers N` fleet
# ---------------------------------------------------------------------- #

def session_stream(index: int, fixes_per_session: int, seed: int) -> list[Fix]:
    """Session ``index``'s deterministic fix stream, O(1) in ``index``.

    Unlike :func:`make_workload` (one sequential RNG — generating
    session *i* means generating everything before it), each session
    here gets an independently seeded generator, so a driver subprocess
    can materialize exactly its slice of a 10k-session workload.
    """
    rng = np.random.default_rng([seed, index])
    steps = rng.normal(0.0, 10.0, size=(fixes_per_session, 2))
    xy = np.cumsum(steps, axis=0)
    t = np.arange(fixes_per_session, dtype=float)
    return [
        Fix(float(t[j]), float(xy[j, 0]), float(xy[j, 1]))
        for j in range(fixes_per_session)
    ]


def _sharded_session_id(index: int) -> str:
    return f"shard-bench-{index:05d}"


async def _driver_run(
    host: str,
    port: int,
    start: int,
    count: int,
    fixes_per_session: int,
    spec: str,
    batch: int,
    seed: int,
    concurrency: int,
) -> dict:
    """One driver's share of the load: open all, then stream all.

    Opens come first so that *every* session in this driver's slice is
    live server-side before streaming begins — the fleet really holds
    ``sessions`` concurrent sessions, while TCP connections stay bounded
    by ``concurrency``. Wall-clock timestamps (not perf counters) frame
    the measurement so the parent can union the windows across drivers.
    """
    indices = list(range(start, start + count))
    streams = {i: session_stream(i, fixes_per_session, seed) for i in indices}
    gate = asyncio.Semaphore(concurrency)
    failures: list[str] = []

    async def _open(index: int) -> None:
        object_id = _sharded_session_id(index)
        async with gate:
            try:
                async with await ServeClient.connect(
                    host, port, timeout=60.0
                ) as client:
                    await client.open(object_id, spec)
            except (ServeError, OSError) as exc:
                failures.append(f"{object_id}: open: {exc}")

    async def _stream(index: int) -> "tuple[int, list[Fix], list[float]] | None":
        object_id = _sharded_session_id(index)
        async with gate:
            try:
                retained, latencies = await _drive_append_and_close(
                    host, port, object_id, streams[index], batch, []
                )
            except (ServeError, OSError, AssertionError) as exc:
                failures.append(f"{object_id}: {type(exc).__name__}: {exc}")
                return None
            return index, retained, latencies

    t_open = time.time()
    await asyncio.gather(*(_open(i) for i in indices))
    if failures:
        return {"failures": failures, "sessions": {}}
    t_stream = time.time()
    outcomes = await asyncio.gather(*(_stream(i) for i in indices))
    t_done = time.time()

    sessions: dict[str, dict] = {}
    for outcome in outcomes:
        if outcome is None:
            continue
        index, retained, latencies = outcome
        expected = _expected_retained(spec, streams[index])
        if retained != expected:
            failures.append(
                f"{_sharded_session_id(index)}: served retained stream "
                f"diverged from the batch result "
                f"({len(retained)} vs {len(expected)} points)"
            )
        sessions[_sharded_session_id(index)] = {
            "latencies_ms": latencies,
            "retained": len(retained),
        }
    return {
        "sessions": sessions,
        "failures": failures,
        "t_open": t_open,
        "t_stream": t_stream,
        "t_done": t_done,
    }


def _driver_main(argv: "list[str] | None" = None) -> int:
    """Entry point of one driver subprocess (``python -m repro.serve.bench``)."""
    import argparse

    parser = argparse.ArgumentParser(prog="repro.serve.bench driver")
    parser.add_argument("--host", required=True)
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--start", type=int, required=True)
    parser.add_argument("--count", type=int, required=True)
    parser.add_argument("--fixes", type=int, required=True)
    parser.add_argument("--spec", required=True)
    parser.add_argument("--batch", type=int, required=True)
    parser.add_argument("--seed", type=int, required=True)
    parser.add_argument("--concurrency", type=int, required=True)
    parser.add_argument("--output", required=True)
    args = parser.parse_args(argv)
    result = asyncio.run(
        _driver_run(
            args.host,
            args.port,
            args.start,
            args.count,
            args.fixes,
            args.spec,
            args.batch,
            args.seed,
            args.concurrency,
        )
    )
    Path(args.output).write_text(json.dumps(result))
    return 1 if result["failures"] else 0


def _spawn_fleet(
    workers: int,
    tmp: Path,
    spec: str,
    max_sessions: int,
    tag: str,
) -> "tuple[subprocess.Popen, str, int]":
    """Start ``repro serve --workers N`` and wait for its port banner."""
    command = [
        sys.executable, "-m", "repro", "serve",
        "--port", "0",
        "--workers", str(workers),
        "--max-sessions", str(max_sessions),
        "--idle-timeout", "3600",
        "--sweep-interval", "3600",
        "--wal", str(tmp / f"wal-{tag}"),
        "--store", str(tmp / f"fleet-{tag}.rsto"),
        "--algorithm", spec,
        "--shed-inflight", "1000000",
    ]
    process = subprocess.Popen(
        command,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={**os.environ, "PYTHONPATH": os.pathsep.join(sys.path)},
    )
    assert process.stdout is not None
    deadline = time.time() + 120.0
    while True:
        line = process.stdout.readline()
        if not line:
            raise ServeError(
                f"fleet ({tag}) exited during startup "
                f"(code {process.poll()})",
                code="internal",
            )
        if line.startswith("serving on "):
            address = line.split()[2]
            host, port_text = address.rsplit(":", 1)
            return process, host, int(port_text)
        if time.time() > deadline:
            process.kill()
            raise ServeError(f"fleet ({tag}) never reported its port", code="internal")


def _run_drivers(
    host: str,
    port: int,
    sessions: int,
    fixes_per_session: int,
    spec: str,
    batch: int,
    seed: int,
    drivers: int,
    concurrency: int,
    tmp: Path,
    tag: str,
) -> dict:
    """Fan the workload over driver subprocesses; merge their results.

    Client-side work (fix encoding, response parsing, equivalence
    checking) is itself CPU-hungry; running it in one process would
    measure the *client*, not the fleet. Drivers are real processes so
    the load generator scales with the tier under test.
    """
    per_driver = [sessions // drivers] * drivers
    for i in range(sessions % drivers):
        per_driver[i] += 1
    procs: list[subprocess.Popen] = []
    outputs: list[Path] = []
    start = 0
    for d, count in enumerate(per_driver):
        if count == 0:
            continue
        out = tmp / f"driver-{tag}-{d}.json"
        outputs.append(out)
        procs.append(
            subprocess.Popen(
                [
                    sys.executable, "-m", "repro.serve.bench",
                    "--host", host, "--port", str(port),
                    "--start", str(start), "--count", str(count),
                    "--fixes", str(fixes_per_session),
                    "--spec", spec, "--batch", str(batch),
                    "--seed", str(seed),
                    "--concurrency", str(concurrency),
                    "--output", str(out),
                ],
                env={**os.environ, "PYTHONPATH": os.pathsep.join(sys.path)},
            )
        )
        start += count
    for proc in procs:
        proc.wait()
    merged: dict = {"sessions": {}, "failures": []}
    windows: list[tuple[float, float]] = []
    for out in outputs:
        if not out.exists():
            merged["failures"].append(f"{out.name}: driver wrote no result")
            continue
        result = json.loads(out.read_text())
        merged["sessions"].update(result.get("sessions", {}))
        merged["failures"].extend(result.get("failures", []))
        if "t_stream" in result:
            windows.append((result["t_stream"], result["t_done"]))
    if windows:
        # The union of the drivers' streaming windows: throughput is
        # fixes over the span every driver was (potentially) streaming.
        merged["elapsed_s"] = max(w[1] for w in windows) - min(w[0] for w in windows)
    return merged


def _measure_fleet(
    workers: int,
    sessions: int,
    fixes_per_session: int,
    spec: str,
    batch: int,
    seed: int,
    drivers: int,
    concurrency: int,
    tmp: Path,
    tag: str,
) -> dict:
    """One full measurement: spawn fleet, drive load, drain, account."""
    process, host, port = _spawn_fleet(workers, tmp, spec, sessions, tag)
    try:
        merged = _run_drivers(
            host, port, sessions, fixes_per_session, spec, batch, seed,
            drivers, concurrency, tmp, tag,
        )

        async def _stats() -> dict:
            async with await ServeClient.connect(host, port, timeout=60.0) as client:
                return await client.stats()

        try:
            stats = asyncio.run(_stats())
        except (ServeError, OSError) as exc:
            stats = {"error": f"stats unavailable: {exc}"}
        process.send_signal(signal.SIGTERM)
        try:
            returncode = process.wait(timeout=120.0)
        except subprocess.TimeoutExpired:
            process.kill()
            returncode = process.wait()
    finally:
        if process.poll() is None:
            process.kill()
            process.wait()
    store_path = tmp / f"fleet-{tag}.rsto"
    merged_objects = None
    if store_path.exists():
        from repro.storage.store import TrajectoryStore

        merged_objects = len(TrajectoryStore.load(store_path))
    per_session = merged["sessions"]
    all_latencies = sorted(
        latency
        for payload in per_session.values()
        for latency in payload["latencies_ms"]
    )
    elapsed = merged.get("elapsed_s")
    fixes_total = len(per_session) * fixes_per_session
    return {
        "sessions": per_session,
        "failures": merged["failures"],
        "elapsed_s": elapsed,
        "fixes_total": fixes_total,
        "fixes_per_sec": (
            fixes_total / elapsed if elapsed and elapsed > 0 else None
        ),
        "p50_append_ms": _percentile(all_latencies, 50.0),
        "p99_append_ms": _percentile(all_latencies, 99.0),
        "appends": len(all_latencies),
        "drain_exit_code": returncode,
        "merged_objects": merged_objects,
        "server_stats": stats,
    }


def _per_shard_view(
    per_session: dict, workers: int, fixes_per_session: int
) -> dict:
    """Pool each shard's raw latencies; real per-shard percentiles.

    Groups sessions with the same consistent-hash ring the router uses,
    so the shard attribution is exact, and computes percentiles over the
    pooled raw samples — not an average of per-session averages.
    """
    from repro.serve.pool import HashRing

    ring = HashRing(f"worker-{i}" for i in range(workers))
    grouped: dict[str, list[float]] = {f"worker-{i}": [] for i in range(workers)}
    counts: dict[str, int] = {f"worker-{i}": 0 for i in range(workers)}
    for object_id, payload in per_session.items():
        shard = ring.node_for(object_id)
        grouped[shard].extend(payload["latencies_ms"])
        counts[shard] += 1
    view = {}
    for shard, latencies in grouped.items():
        ordered = sorted(latencies)
        view[shard] = {
            "sessions": counts[shard],
            "fixes": counts[shard] * fixes_per_session,
            "appends": len(ordered),
            "p50_append_ms": _percentile(ordered, 50.0),
            "p99_append_ms": _percentile(ordered, 99.0),
        }
    return view


def run_sharded_bench(
    sessions: int = 10000,
    fixes_per_session: int = 50,
    spec: str = "operb:epsilon=25",
    batch: int = 25,
    workers: int = 4,
    drivers: "int | None" = None,
    concurrency: int = 64,
    seed: int = 7,
    output: "Path | str | None" = DEFAULT_SHARDED_OUTPUT,
    baseline: bool = True,
) -> dict:
    """Benchmark the sharded tier: N workers behind the hash router.

    Drives ``sessions`` live sessions (opened first, so they are all
    concurrent server-side; TCP connections stay bounded) from
    ``drivers`` subprocesses, records per-session latencies, reports
    real per-shard p50/p99 (pooled raw samples grouped by the router's
    own hash ring), drains the fleet with SIGTERM and verifies the
    partition merge. With ``baseline`` it then runs the *same* workload
    against ``--workers 1`` (a plain single-process durable server) and
    records ``speedup_vs_single_process`` — on a multi-core host this
    is where shared-nothing sharding pays; ``available_cpus`` is
    recorded so a 1-core container's ratio is read for what it is.

    Raises:
        ServeError: any session failed, diverged from the batch result,
            the drain exited non-zero, or the merged store lost objects.
            The report is written first (``"failed": true``).
    """
    if sessions < 1 or fixes_per_session < 2 or workers < 1:
        raise ValueError("need >=1 session, >=2 fixes/session, >=1 worker")
    cpus = os.cpu_count() or 1
    if drivers is None:
        drivers = max(2, min(8, cpus))
    with tempfile.TemporaryDirectory(prefix="repro-serve-sharded-") as tmp_name:
        tmp = Path(tmp_name)
        sharded = _measure_fleet(
            workers, sessions, fixes_per_session, spec, batch, seed,
            drivers, concurrency, tmp, "sharded",
        )
        single = None
        if baseline:
            single = _measure_fleet(
                1, sessions, fixes_per_session, spec, batch, seed,
                drivers, concurrency, tmp, "single",
            )
    failures = list(sharded["failures"])
    if sharded["drain_exit_code"] != 0:
        failures.append(
            f"fleet drain exited {sharded['drain_exit_code']} (want 0)"
        )
    if sharded["merged_objects"] != sessions:
        failures.append(
            f"merged store holds {sharded['merged_objects']} objects, "
            f"want {sessions}"
        )
    speedup = None
    if (
        single is not None
        and single["fixes_per_sec"]
        and sharded["fixes_per_sec"]
    ):
        speedup = sharded["fixes_per_sec"] / single["fixes_per_sec"]
    session_p99s = [
        p99
        for payload in sharded["sessions"].values()
        if (p99 := _percentile(sorted(payload["latencies_ms"]), 99.0)) is not None
    ]
    report = {
        "config": {
            "spec": spec,
            "sessions": sessions,
            "fixes_per_session": fixes_per_session,
            "append_batch": batch,
            "workers": workers,
            "drivers": drivers,
            "concurrency": concurrency,
            "seed": seed,
            "wal": True,
        },
        "environment": {"available_cpus": cpus},
        "results": {
            "p50_append_ms": sharded["p50_append_ms"],
            "p99_append_ms": sharded["p99_append_ms"],
            "appends": sharded["appends"],
            "fixes_total": sharded["fixes_total"],
            "elapsed_s": sharded["elapsed_s"],
            "fixes_per_sec": sharded["fixes_per_sec"],
            "session_p99_ms": _distribution(session_p99s),
            "per_shard": _per_shard_view(
                sharded["sessions"], workers, fixes_per_session
            ),
            "drain_exit_code": sharded["drain_exit_code"],
            "merged_objects": sharded["merged_objects"],
            "speedup_vs_single_process": speedup,
            "equivalence": "failed" if failures else "batch-identical",
        },
        "server_stats": sharded["server_stats"],
    }
    if single is not None:
        report["single_process"] = {
            "p50_append_ms": single["p50_append_ms"],
            "p99_append_ms": single["p99_append_ms"],
            "elapsed_s": single["elapsed_s"],
            "fixes_per_sec": single["fixes_per_sec"],
            "failures": single["failures"],
        }
    if failures:
        report["failed"] = True
        report["failures"] = failures
    if output is not None:
        write_atomic_json(Path(output), report)
    if failures:
        raise ServeError(
            f"serve-bench --workers failed ({len(failures)} problem(s)): "
            + "; ".join(failures[:3])
            + ("..." if len(failures) > 3 else ""),
            code="internal",
        )
    return report


if __name__ == "__main__":  # driver subprocess entry point
    sys.exit(_driver_main())
