"""Concurrent load generator for the ingestion service.

Starts an in-process :class:`~repro.serve.server.TrajectoryServer` on an
ephemeral loopback port, opens ``sessions`` concurrent client
connections (one session each), streams a deterministic synthetic
random-walk trajectory through every session, and measures client-side
append round-trip latency. With the admission limit induced at exactly
``sessions``, a further ``rejects`` opens are attempted while the server
is full and must come back with code ``"rejected"``.

Correctness is asserted, not assumed: every session's retained stream
(appends + close tail) must exactly equal the batch compressor's
selection on the same input — same points, same order, nothing dropped.

Results land in ``BENCH_serve.json``::

    repro serve-bench --sessions 50 --fixes 200

or programmatically via :func:`run_bench`.
"""

from __future__ import annotations

import asyncio
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.registry import make_compressor
from repro.exceptions import ServeError
from repro.io_util import write_atomic_json
from repro.serve.client import ServeClient
from repro.serve.server import TrajectoryServer
from repro.trajectory.trajectory import Trajectory
from repro.types import Fix

__all__ = ["DEFAULT_OUTPUT", "DEFAULT_SPEC", "make_workload", "run_bench"]

DEFAULT_OUTPUT = Path(__file__).resolve().parents[3] / "BENCH_serve.json"
DEFAULT_SPEC = "opw-tr:epsilon=25"


def make_workload(
    sessions: int, fixes_per_session: int, seed: int = 7
) -> list[tuple[str, list[Fix]]]:
    """Deterministic per-session fix streams (bounded random walks).

    A plain numpy random walk (1 Hz, ~14 m/s steps) is cheap enough to
    generate thousands of sessions and irregular enough that the opening
    window breaks regularly, exercising the retained-fix streaming path.
    """
    rng = np.random.default_rng(seed)
    workload = []
    for i in range(sessions):
        steps = rng.normal(0.0, 10.0, size=(fixes_per_session, 2))
        xy = np.cumsum(steps, axis=0)
        t = np.arange(fixes_per_session, dtype=float)
        fixes = [Fix(float(t[j]), float(xy[j, 0]), float(xy[j, 1]))
                 for j in range(fixes_per_session)]
        workload.append((f"bench-{i:04d}", fixes))
    return workload


def _expected_retained(spec: str, fixes: list[Fix]) -> list[Fix]:
    """The batch algorithm's selection on the same input."""
    traj = Trajectory.from_points([(f.t, f.x, f.y) for f in fixes])
    indices = make_compressor(spec).compress(traj).indices
    return [fixes[i] for i in indices]


async def _attempt_rejected_open(host: str, port: int, object_id: str) -> bool:
    """True when an open is refused with the structured ``rejected`` code."""
    async with await ServeClient.connect(host, port) as client:
        try:
            await client.open(object_id, DEFAULT_SPEC)
        except ServeError as exc:
            return exc.code == "rejected"
    return False


async def _bench(
    sessions: int,
    fixes_per_session: int,
    rejects: int,
    spec: str,
    batch: int,
    seed: int,
    wal_dir: "Path | None",
) -> dict:
    workload = make_workload(sessions, fixes_per_session, seed)
    server = TrajectoryServer(
        port=0,
        max_sessions=sessions,      # induced limit: extras must be rejected
        idle_timeout_s=3600.0,      # nothing may be evicted mid-bench
        sweep_interval_s=3600.0,
        wal_dir=wal_dir,
    )
    await server.start()
    try:
        latencies_ms: list[float] = []
        # Fill the server to its admission limit first...
        open_clients = []
        for object_id, _ in workload:
            client = await ServeClient.connect(server.host, server.port)
            await client.open(object_id, spec)
            open_clients.append(client)
        for client in open_clients:
            await client.aclose()
        # ...so the induced-limit rejections are deterministic.
        rejected = 0
        for k in range(rejects):
            if await _attempt_rejected_open(
                server.host, server.port, f"reject-{k:03d}"
            ):
                rejected += 1
        # Now stream all sessions concurrently (sessions are already
        # open server-side; each task reconnects and keeps appending).
        # One failed session must not poison the run silently: failures
        # are collected, the report is still produced (marked failed),
        # and CI always has something to upload.
        started = time.perf_counter()
        outcomes = await asyncio.gather(
            *(
                _drive_append_and_close(
                    server.host, server.port, object_id, fixes, batch, latencies_ms
                )
                for object_id, fixes in workload
            ),
            return_exceptions=True,
        )
        elapsed = time.perf_counter() - started

        failures: list[str] = []
        retained_streams: list[list[Fix]] = []
        for (object_id, fixes), outcome in zip(workload, outcomes):
            if isinstance(outcome, BaseException):
                failures.append(f"{object_id}: {type(outcome).__name__}: {outcome}")
                continue
            retained_streams.append(outcome)
            # Equivalence: nothing dropped, nothing reordered,
            # batch-identical against the batch algorithm's selection.
            expected = _expected_retained(spec, fixes)
            if outcome != expected:
                failures.append(
                    f"{object_id}: served retained stream diverged from the "
                    f"batch result ({len(outcome)} vs {len(expected)} points)"
                )

        stats = server.stats()
        ordered = sorted(latencies_ms)
        total_fixes = sessions * fixes_per_session
        report = {
            "config": {
                "spec": spec,
                "sessions": sessions,
                "fixes_per_session": fixes_per_session,
                "append_batch": batch,
                "induced_max_sessions": sessions,
                "attempted_rejects": rejects,
                "seed": seed,
            },
            "results": {
                "p50_append_ms": _percentile(ordered, 50.0),
                "p99_append_ms": _percentile(ordered, 99.0),
                "max_append_ms": ordered[-1] if ordered else None,
                "appends": len(ordered),
                "fixes_total": total_fixes,
                "elapsed_s": elapsed,
                "fixes_per_sec": total_fixes / elapsed if elapsed > 0 else None,
                "rejected_sessions": rejected,
                "retained_total": sum(len(r) for r in retained_streams),
                "equivalence": "failed" if failures else "batch-identical",
            },
            "server_stats": stats,
        }
        if wal_dir is not None:
            # Only present on WAL runs: the perf gate compares configs
            # for exact equality, so WAL-off reports must stay
            # byte-compatible with pre-WAL baselines.
            report["config"]["wal"] = True
        if failures:
            report["failed"] = True
            report["failures"] = failures
        return report
    finally:
        await server.stop()


async def _drive_append_and_close(
    host: str,
    port: int,
    object_id: str,
    fixes: list[Fix],
    batch: int,
    latencies_ms: list[float],
) -> list[Fix]:
    """Append + close for an already-open session, on a new connection."""
    retained: list[Fix] = []
    async with await ServeClient.connect(host, port) as client:
        for start in range(0, len(fixes), batch):
            chunk = fixes[start : start + batch]
            began = time.perf_counter()
            retained.extend(await client.append(object_id, chunk))
            latencies_ms.append((time.perf_counter() - began) * 1e3)
        summary = await client.close_session(object_id)
        retained.extend(summary["retained"])
        assert summary["stored"] is not None, f"{object_id}: nothing stored"
    return retained


def _percentile(ordered: list[float], q: float) -> float | None:
    """Nearest-rank percentile of an already-sorted sample."""
    if not ordered:
        return None
    rank = max(0, min(len(ordered) - 1, round(q / 100.0 * len(ordered)) - 1))
    return ordered[rank]


def run_bench(
    sessions: int = 50,
    fixes_per_session: int = 200,
    rejects: int = 8,
    spec: str = DEFAULT_SPEC,
    batch: int = 1,
    seed: int = 7,
    output: Path | str | None = DEFAULT_OUTPUT,
    wal: bool = False,
) -> dict:
    """Run the load benchmark; returns (and optionally writes) the report.

    Args:
        sessions: concurrent sessions (also the induced admission limit).
        fixes_per_session: stream length per session.
        rejects: extra opens attempted while the server is full; each
            must come back with the structured ``rejected`` error.
        spec: online compressor spec for every session.
        batch: fixes per append request (1 = per-fix latency).
        seed: workload RNG seed.
        output: where to write the JSON report (atomically); ``None``
            skips the write.
        wal: run the server with a write-ahead log (in a temporary
            directory, deleted afterwards) — measures the fsync-per-group
            durability overhead against the WAL-off numbers.

    Raises:
        ServeError: a session failed or its retained stream diverged
            from the batch result. The (partial) report is written
            first, with ``"failed": true`` and the per-session reasons
            under ``"failures"`` — a failing CI run still uploads a
            non-empty artifact.
    """
    if sessions < 1 or fixes_per_session < 2:
        raise ValueError("need at least 1 session and 2 fixes per session")
    if wal:
        with tempfile.TemporaryDirectory(prefix="repro-serve-wal-") as tmp:
            report = asyncio.run(
                _bench(
                    sessions, fixes_per_session, rejects, spec, batch, seed,
                    Path(tmp) / "wal",
                )
            )
    else:
        report = asyncio.run(
            _bench(sessions, fixes_per_session, rejects, spec, batch, seed, None)
        )
    if output is not None:
        write_atomic_json(Path(output), report)
    if report.get("failed"):
        failures = report.get("failures", [])
        raise ServeError(
            f"serve-bench failed ({len(failures)} session(s)): "
            + "; ".join(failures[:3])
            + ("..." if len(failures) > 3 else ""),
            code="internal",
        )
    return report
