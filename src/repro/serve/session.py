"""Server-side session state: per-object online compression + lifecycle.

A :class:`Session` owns one :class:`~repro.streaming.base
.OnlineCompressor` (any registered online algorithm — the opening-window
family or the one-pass OPERB/CISED compressors) and the retained points
it has decided so far; a :class:`SessionManager`
owns all live sessions and implements the service's resource policy:

* **admission control** — at most ``max_sessions`` live sessions; an
  ``open`` beyond the limit is rejected with a structured error (code
  ``"rejected"``) after one attempt to reclaim capacity from idle
  sessions;
* **idle LRU eviction** — sessions that have not appended for
  ``idle_timeout_s`` are evicted in least-recently-active order. An
  evicted session is *flushed, not dropped*: its compressed trajectory
  lands in the store exactly as a client ``close`` would land it, so a
  tracker that silently disappears loses no data;
* **durable flush** — every flush inserts into the
  :class:`~repro.storage.store.TrajectoryStore` and (when a
  ``store_path`` is configured) persists the store file atomically via
  the PR-2 durability path (tmp + fsync + rename, per-record CRCs).

The manager is synchronous and single-threaded by design: the asyncio
server calls it from one event loop, so no locking is needed. All
observability flows through a shared :class:`~repro.obs.Registry`.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from repro.exceptions import ReproError, ServeError, StorageError, StreamError
from repro.obs import Registry, span
from repro.serve.wal import WalWriter
from repro.storage.store import StoredRecord, TrajectoryStore
from repro.streaming.base import Eviction, OnlineCompressor, partition_events
from repro.streaming.registry import make_online_compressor
from repro.trajectory.builder import TrajectoryBuilder
from repro.trajectory.trajectory import Trajectory
from repro.types import Fix

__all__ = ["AppendOutcome", "Session", "SessionManager"]

#: Bound on the diagnostic failure lists kept for the ``stats`` verb.
MAX_RECORDED_FAILURES = 16


@dataclass
class AppendOutcome:
    """What one (possibly replayed) append batch did.

    ``duplicate`` marks an idempotent re-send: a batch whose sequence
    number the session has already applied. For the most recent batch
    the cached decisions are replayed verbatim (``retained``/``error``
    come from the original application); older duplicates return empty.

    ``evicted`` lists previously retained fixes a budget compressor
    retracted — push-time evictions plus any renegotiation evictions
    that had not yet been reported to the client. Threshold compressors
    never populate it.
    """

    seq: int
    retained: "list[Fix]" = field(default_factory=list)
    evicted: "list[Fix]" = field(default_factory=list)
    accepted: int = 0
    duplicate: bool = False
    error: "StreamError | None" = None


class Session:
    """One object's live ingestion state."""

    __slots__ = (
        "object_id",
        "spec",
        "algorithm",
        "compressor",
        "builder",
        "pending",
        "n_fixes_in",
        "n_retained",
        "n_evicted",
        "budget_renegotiations",
        "unreported_evictions",
        "opened_at",
        "last_active",
        "last_seq",
        "last_outcome",
        "recovered",
    )

    def __init__(
        self, object_id: str, spec: str, compressor: OnlineCompressor, now: float
    ) -> None:
        self.object_id = object_id
        self.spec = spec
        self.algorithm = compressor.algorithm
        self.compressor = compressor
        self.builder = TrajectoryBuilder(object_id)
        #: Acknowledged fixes the compressor has not yet decided on (the
        #: suffix pushed after the last retained fix). Kept so read
        #: queries can see every acked fix (:meth:`snapshot`); its size
        #: tracks the compressor's own working window.
        self.pending: list[Fix] = []
        self.n_fixes_in = 0
        self.n_retained = 0
        #: Previously retained fixes later retracted (budget compressors).
        self.n_evicted = 0
        #: Budget renegotiations applied to this session.
        self.budget_renegotiations = 0
        #: Renegotiation evictions the client has not been told about
        #: yet; drained into the next append outcome's ``evicted``.
        self.unreported_evictions: list[Fix] = []
        self.opened_at = now
        self.last_active = now
        #: Highest applied append sequence number (0 = none yet).
        self.last_seq = 0
        #: Cached :class:`AppendOutcome` of the batch at ``last_seq``,
        #: replayed verbatim when a client idempotently re-sends it.
        self.last_outcome: "AppendOutcome | None" = None
        #: True when this session was rebuilt from the WAL at startup.
        self.recovered = False

    def append(self, fix: Fix, now: float) -> list[Fix]:
        """Push one fix; returns the fixes its arrival decided as retained.

        Raises:
            StreamError: the fix's timestamp does not strictly advance
                the session clock (session state is unchanged).
        """
        kept, _, _, error = self.append_many([fix], now)
        if error is not None:
            raise error
        return kept

    def append_many(
        self, fixes: Sequence[Fix], now: float
    ) -> tuple[list[Fix], list[Fix], int, StreamError | None]:
        """Push a batch of fixes through the compressor in one tight loop.

        Bookkeeping (builder appends, counters, activity timestamp) is
        done once per batch instead of once per fix — the serve hot path.
        Budget compressors may interleave :class:`~repro.streaming.base
        .Eviction` retractions with retained fixes; retractions are
        applied to the builder here and returned separately.

        Returns:
            ``(retained, evicted, accepted, error)``: the fixes the
            batch decided to retain, the previously retained fixes it
            retracted, how many input fixes were accepted, and the
            :class:`StreamError` that stopped the batch mid-way (or
            ``None``). On an error the accepted prefix is already
            applied, mirroring per-fix appends; the session stays
            usable.
        """
        kept: list[Fix] = []
        evicted: list[Fix] = []
        push = self.compressor.push
        accepted = 0
        error: StreamError | None = None
        try:
            for fix in fixes:
                for event in push(fix):
                    if type(event) is Eviction:
                        evicted.append(event.fix)
                    else:
                        kept.append(event)
                accepted += 1
        except StreamError as exc:
            error = exc
        # Retains land first, then the retractions: an evicted fix is
        # always strictly older than the newest retained one, so the
        # appends never collide with a hole a removal just opened.
        for point in kept:
            self.builder.append_fix(point)
        for point in evicted:
            self.builder.remove_time(point.t)
        self.pending.extend(fixes[:accepted])
        if kept:
            last_kept_t = kept[-1].t
            self.pending = [f for f in self.pending if f.t > last_kept_t]
        self.n_fixes_in += accepted
        self.n_retained += len(kept)
        self.n_evicted += len(evicted)
        self.last_active = now
        return kept, evicted, accepted, error

    def finalize(self) -> tuple[Trajectory | None, list[Fix]]:
        """Close the compressor; returns (trajectory, tail retained fixes).

        The trajectory is ``None`` when the session never appended a fix.
        """
        tail, evicted = partition_events(self.compressor.finish())
        for point in tail:
            self.builder.append_fix(point)
        for point in evicted:
            self.builder.remove_time(point.t)
        self.pending.clear()
        self.n_retained += len(tail)
        self.n_evicted += len(evicted)
        if len(self.builder) == 0:
            return None, tail
        return self.builder.build(), tail

    @property
    def budget(self) -> int | None:
        """The compressor's point budget, or ``None`` (threshold spec)."""
        value = getattr(self.compressor, "budget", None)
        return int(value) if value is not None else None

    def renegotiate(self, budget: int) -> list[Fix]:
        """Tighten the compressor's point budget; returns the evictions.

        Only budget-capable compressors support this
        (:exc:`ServeError` code ``bad-request`` otherwise). The evicted
        fixes are removed from the builder and queued on
        :attr:`unreported_evictions` so the next append outcome carries
        them to the client.
        """
        renegotiate = getattr(self.compressor, "renegotiate", None)
        if renegotiate is None:
            raise ServeError(
                f"session {self.object_id!r} runs {self.spec!r}, which has "
                f"no point budget to renegotiate",
                code="bad-request",
            )
        _, evicted = partition_events(renegotiate(budget))
        for point in evicted:
            self.builder.remove_time(point.t)
        self.n_evicted += len(evicted)
        self.budget_renegotiations += 1
        self.unreported_evictions.extend(evicted)
        return evicted

    def snapshot(self) -> Trajectory | None:
        """Every acknowledged fix as a queryable trajectory (or ``None``).

        Retained fixes plus the still-undecided suffix: the trajectory a
        read query must see for query-after-ack consistency. The suffix
        is raw (exact) data, so the compressor's error bound remains a
        conservative bound for the whole snapshot. Non-destructive — the
        session keeps ingesting afterwards.
        """
        if len(self.builder) == 0:
            return None
        base = self.builder.build()
        if not self.pending:
            return base
        t = np.concatenate([base.t, [fix.t for fix in self.pending]])
        xy = np.vstack([base.xy, [[fix.x, fix.y] for fix in self.pending]])
        return Trajectory(t, xy, self.object_id, _validated=True)

    def summary(self, now: float) -> dict:
        """JSON-ready snapshot for diagnostics."""
        return {
            "session": self.object_id,
            "spec": self.spec,
            "algorithm": self.algorithm,
            "fixes_in": self.n_fixes_in,
            "retained": self.n_retained,
            "evicted": self.n_evicted,
            "budget": self.budget,
            "budget_renegotiations": self.budget_renegotiations,
            "state_size": self.compressor.state_size,
            "idle_s": max(0.0, now - self.last_active),
            "last_seq": self.last_seq,
            "recovered": self.recovered,
        }


class SessionManager:
    """Live-session registry with admission control and LRU eviction.

    Args:
        store: destination for flushed trajectories.
        max_sessions: admission limit on concurrently live sessions.
        idle_timeout_s: inactivity after which a session is evictable.
        store_path: when set, the store file is re-persisted atomically
            after every flush (close or eviction).
        durable: fsync on persist (the store's ``save`` durability knob).
        replace: allow a flush to overwrite an existing stored id.
        wal: optional :class:`~repro.serve.wal.WalWriter`; when present
            every open, append batch and budget renegotiation is staged
            into it *before* being applied, and a flush stages the
            truncation marker after the store accepted the trajectory.
            Call :meth:`recover` to replay its surviving sessions.
        degrade_budget_floor: enables *degraded admission*: when the
            session limit trips (and idle eviction reclaimed nothing), a
            new session is admitted anyway if at least one live
            budget-capable session could be renegotiated down — budgets
            are multiplied by ``degrade_budget_factor`` (never below
            this floor), trading per-object fidelity for capacity
            instead of rejecting trackers. ``None`` (default) keeps the
            hard-reject behaviour.
        degrade_budget_factor: multiplier applied to live budgets under
            admission pressure (0 < factor < 1; default 0.5).
        metrics: shared observability registry (one is created if absent).
        clock: monotonic time source, injectable for tests.
    """

    def __init__(
        self,
        store: TrajectoryStore,
        *,
        max_sessions: int = 1024,
        idle_timeout_s: float = 300.0,
        store_path: str | Path | None = None,
        durable: bool = True,
        replace: bool = False,
        wal: WalWriter | None = None,
        degrade_budget_floor: int | None = None,
        degrade_budget_factor: float = 0.5,
        metrics: Registry | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_sessions < 1:
            raise ValueError(f"max_sessions must be >= 1, got {max_sessions}")
        if idle_timeout_s <= 0:
            raise ValueError(f"idle_timeout_s must be positive, got {idle_timeout_s}")
        if degrade_budget_floor is not None and degrade_budget_floor < 2:
            raise ValueError(
                f"degrade_budget_floor must be >= 2, got {degrade_budget_floor}"
            )
        if not 0.0 < degrade_budget_factor < 1.0:
            raise ValueError(
                f"degrade_budget_factor must be in (0, 1), "
                f"got {degrade_budget_factor}"
            )
        self.store = store
        self.max_sessions = int(max_sessions)
        self.idle_timeout_s = float(idle_timeout_s)
        self.store_path = None if store_path is None else Path(store_path)
        self.durable = durable
        self.replace = replace
        self.wal = wal
        self.degrade_budget_floor = (
            None if degrade_budget_floor is None else int(degrade_budget_floor)
        )
        self.degrade_budget_factor = float(degrade_budget_factor)
        self.metrics = metrics if metrics is not None else Registry()
        self._clock = clock
        # Ordered least-recently-active first: append moves to the end,
        # so eviction scans from the front and stops at the first keeper.
        self._sessions: OrderedDict[str, Session] = OrderedDict()
        #: Bounded diagnostics for the ``stats`` verb: most recent
        #: flush failures swallowed by the idle sweep, and sessions the
        #: recovery replay could not rebuild.
        self.last_evict_failures: list[dict] = []
        self.last_recovery_failures: list[dict] = []

    def __len__(self) -> int:
        return len(self._sessions)

    def __contains__(self, session_id: str) -> bool:
        return session_id in self._sessions

    @property
    def live_session_ids(self) -> list[str]:
        """Ids of live sessions, sorted."""
        return sorted(self._sessions)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def open(self, session_id: object, spec: object) -> Session:
        """Admit one new session compressing under ``spec``.

        Raises:
            ServeError: bad arguments (``bad-request``), an id already
                live (``duplicate-session``), an unusable spec
                (``bad-spec``), or the admission limit (``rejected``).
        """
        if not isinstance(session_id, str) or not session_id:
            raise ServeError(
                f"open needs a non-empty string session id, got {session_id!r}",
                code="bad-request",
            )
        if not isinstance(spec, str) or not spec:
            raise ServeError(
                f"open needs a compressor spec string, got {spec!r}",
                code="bad-request",
            )
        if session_id in self._sessions:
            raise ServeError(
                f"session {session_id!r} is already open", code="duplicate-session"
            )
        if len(self._sessions) >= self.max_sessions:
            # Try to reclaim capacity from idle sessions before refusing.
            self.evict_idle()
        if len(self._sessions) >= self.max_sessions:
            # Degraded admission: shrink live point budgets instead of
            # rejecting, when the policy is enabled and anything shrank.
            if self.degrade_budget_floor is None or not self.degrade_budgets():
                self.metrics.counter("sessions_rejected").inc()
                raise ServeError(
                    f"session limit reached ({self.max_sessions} live); "
                    f"retry later",
                    code="rejected",
                )
            self.metrics.counter("sessions_admitted_degraded").inc()
        try:
            compressor = make_online_compressor(spec)
        except (ReproError, ValueError, KeyError) as exc:
            raise ServeError(str(exc), code="bad-spec") from exc
        if self.wal is not None:
            # Staged before the session exists: recovery must know the
            # spec of every session it may be asked to replay. A failed
            # WAL refuses the open (WalError carries code "wal-failure").
            self.wal.stage_open(session_id, spec)
        session = Session(session_id, spec, compressor, self._clock())
        self._sessions[session_id] = session
        self.metrics.counter("sessions_opened").inc()
        self.metrics.counter(f"sessions_opened.{session.algorithm}").inc()
        return session

    def get(self, session_id: object) -> Session:
        """The live session for ``session_id``.

        Raises:
            ServeError: (``unknown-session``) when it is not live.
        """
        session = (
            self._sessions.get(session_id) if isinstance(session_id, str) else None
        )
        if session is None:
            raise ServeError(
                f"no open session {session_id!r}", code="unknown-session"
            )
        return session

    def peek(self, session_id: object) -> Session | None:
        """The live session for ``session_id``, or ``None`` (no error).

        The read path's lookup: queries overlay live sessions when one
        exists and fall back to stored records when one does not.
        """
        return (
            self._sessions.get(session_id) if isinstance(session_id, str) else None
        )

    def renegotiate_session(self, session_id: object, budget: int) -> list[Fix]:
        """Tighten one session's point budget; returns the evictions.

        WAL-logged *before* being applied (log-before-apply, like
        appends), so recovery replays the renegotiation at the same
        point of the session's history and the rebuilt compressor state
        is bit-identical. The evicted fixes are also queued on the
        session and ride the next append acknowledgement to the client.

        Raises:
            ServeError: ``unknown-session``, ``bad-request`` for a
                session without a budget, or ``wal-failure``.
        """
        session = self.get(session_id)
        if self.wal is not None:
            self.wal.stage_renegotiate(session.object_id, int(budget))
        evicted = session.renegotiate(int(budget))
        counter = self.metrics.counter
        counter("budget_renegotiations").inc()
        counter("fixes_evicted").inc(len(evicted))
        counter(f"fixes_evicted.{session.algorithm}").inc(len(evicted))
        return evicted

    def degrade_budgets(self) -> int:
        """Shrink every live budget-capable session's budget one notch.

        The admission-pressure valve: multiplies each live budget by
        :attr:`degrade_budget_factor`, clamped to
        :attr:`degrade_budget_floor`. Sessions already at the floor (or
        without a budget) are left alone.

        Returns:
            How many sessions were renegotiated.
        """
        floor = self.degrade_budget_floor
        if floor is None:
            return 0
        renegotiated = 0
        for session in list(self._sessions.values()):
            budget = session.budget
            if budget is None or budget <= floor:
                continue
            target = max(floor, int(budget * self.degrade_budget_factor))
            if target >= budget:
                target = budget - 1
            self.renegotiate_session(session.object_id, target)
            renegotiated += 1
        if renegotiated:
            self.metrics.counter("sessions_renegotiated").inc(renegotiated)
        return renegotiated

    def append(self, session_id: object, fix: Fix) -> list[Fix]:
        """Push one fix into a session; returns the newly retained fixes.

        Raises:
            ServeError: ``unknown-session`` or ``out-of-order``.
        """
        return self.append_many(session_id, [fix])

    def append_many(self, session_id: object, fixes: Sequence[Fix]) -> list[Fix]:
        """Push a batch of fixes into a session; returns the retained ones.

        Equivalent to appending each fix in order, but with per-batch
        bookkeeping (one clock read, one LRU touch, counters incremented
        by batch totals) — the difference between ~35k and >100k fixes/s
        through the service.

        Raises:
            ServeError: ``unknown-session``, or ``out-of-order`` when a
                fix mid-batch fails to advance the session clock. The
                accepted prefix is already applied (the session stays
                usable) and the fixes it retained are attached to the
                error as ``retained``, so callers can report them.
        """
        outcome = self.append_batch(session_id, fixes)
        if outcome.error is not None:
            raise ServeError(
                str(outcome.error), code="out-of-order", retained=outcome.retained
            ) from outcome.error
        return outcome.retained

    def append_batch(
        self, session_id: object, fixes: Sequence[Fix], *, seq: int | None = None
    ) -> AppendOutcome:
        """Apply one sequenced append batch; the WAL-aware core path.

        ``seq`` is the batch's per-session monotonic sequence number
        (``None`` auto-assigns the next one, which is what sequence-
        unaware clients get). The contract that makes reconnects safe:

        * ``seq == last_seq + 1`` — the next batch: staged into the WAL
          (when one is configured) *before* being applied, so a crash
          after acknowledgement can always replay it;
        * ``seq == last_seq`` — an idempotent re-send of the most recent
          batch (a client that never saw its ack): nothing is re-applied
          and the cached decisions are returned verbatim;
        * ``seq < last_seq`` — an older duplicate: nothing is applied,
          an empty outcome marked ``duplicate`` is returned;
        * ``seq > last_seq + 1`` — a gap: rejected with code
          ``bad-seq`` (the client must RESUME and re-send).

        Raises:
            ServeError: ``unknown-session``, ``bad-seq``, or
                ``wal-failure`` when the configured WAL has failed.
        """
        session = self.get(session_id)
        if seq is None:
            seq = session.last_seq + 1
        if seq <= session.last_seq:
            self.metrics.counter("appends_duplicate").inc()
            if seq == session.last_seq and session.last_outcome is not None:
                cached = session.last_outcome
                return AppendOutcome(
                    seq=seq,
                    retained=list(cached.retained),
                    evicted=list(cached.evicted),
                    accepted=cached.accepted,
                    duplicate=True,
                    error=cached.error,
                )
            return AppendOutcome(seq=seq, duplicate=True)
        if seq > session.last_seq + 1:
            raise ServeError(
                f"append sequence gap for session {session.object_id!r}: "
                f"got seq {seq}, expected {session.last_seq + 1} "
                f"(resume and re-send)",
                code="bad-seq",
            )
        if self.wal is not None:
            # Log-before-apply: once this batch is acknowledged it is in
            # the WAL; replay applies it through the same deterministic
            # code path, mid-batch rejections included.
            self.wal.stage_append(session.object_id, seq, fixes)
        kept, evicted, accepted, error = session.append_many(fixes, self._clock())
        n_push_evicted = len(evicted)
        if session.unreported_evictions:
            # Renegotiation evictions the client has not seen yet ride
            # this acknowledgement (at-least-once: a recovery replay may
            # re-queue ones an unacked response already carried; the
            # client-side removal is idempotent).
            evicted = session.unreported_evictions + evicted
            session.unreported_evictions = []
        self._sessions.move_to_end(session.object_id)
        counter = self.metrics.counter
        counter("fixes_in").inc(accepted)
        counter("fixes_retained").inc(len(kept))
        counter(f"fixes_in.{session.algorithm}").inc(accepted)
        if n_push_evicted:
            # Renegotiation evictions were counted when they happened.
            counter("fixes_evicted").inc(n_push_evicted)
            counter(f"fixes_evicted.{session.algorithm}").inc(n_push_evicted)
        outcome = AppendOutcome(
            seq=seq, retained=kept, evicted=evicted, accepted=accepted, error=error
        )
        session.last_seq = seq
        session.last_outcome = outcome
        return outcome

    def close(self, session_id: object) -> tuple[StoredRecord | None, list[Fix]]:
        """End a session: finish the window and flush it into the store.

        Returns:
            ``(stored_record, tail)`` — the store's catalog entry (None
            for a session that never appended) and the final retained
            fixes the close decided.

        Raises:
            ServeError: ``unknown-session``, or ``storage`` when the
                store refuses the insert (the session is gone either
                way — its window cannot be reopened).
        """
        session = self.get(session_id)
        del self._sessions[session.object_id]
        record, tail = self._flush(session)
        return record, tail

    def evict_idle(self, now: float | None = None) -> list[str]:
        """Evict (flush + end) every session idle for ``idle_timeout_s``.

        Scans in least-recently-active order and stops at the first
        non-idle session. A flush failure during eviction is counted
        (``evict_flush_failures``) and recorded — exception repr plus
        session id land in the bounded :attr:`last_evict_failures` list
        the ``stats`` verb exposes — but does not stop the sweep: the
        session is discarded regardless, because keeping a dead window
        live would pin the capacity the sweep exists to reclaim.

        Returns:
            The evicted session ids, oldest first.
        """
        now = self._clock() if now is None else now
        evicted: list[str] = []
        for session_id, session in list(self._sessions.items()):
            if now - session.last_active < self.idle_timeout_s:
                break
            del self._sessions[session_id]
            self.metrics.counter("sessions_evicted").inc()
            try:
                self._flush(session)
            except ServeError as exc:
                self.metrics.counter("evict_flush_failures").inc()
                self._record_failure(
                    self.last_evict_failures, session_id, exc
                )
            evicted.append(session_id)
        return evicted

    def discard(self, session_id: object) -> None:
        """Drop a live session without flushing it (no store insert).

        Used when the WAL fails mid-commit: the session's in-memory
        state may be ahead of what is durable, so it must not be acked,
        flushed, or resumed — recovery after restart rebuilds the
        durable prefix instead. Unknown ids are ignored.
        """
        if isinstance(session_id, str) and self._sessions.pop(session_id, None):
            self.metrics.counter("sessions_discarded").inc()

    def flush_all(self) -> list[str]:
        """Flush and end every live session (graceful drain).

        Failures are recorded like eviction failures (the drain must
        visit every session, not stop at the first broken one).

        Returns:
            Ids of the sessions that flushed cleanly.
        """
        flushed: list[str] = []
        for session_id, session in list(self._sessions.items()):
            del self._sessions[session_id]
            try:
                self._flush(session)
            except ServeError as exc:
                self.metrics.counter("drain_flush_failures").inc()
                self._record_failure(
                    self.last_evict_failures, session_id, exc
                )
            else:
                flushed.append(session_id)
        return flushed

    def recover(self) -> dict:
        """Replay the WAL's surviving sessions into live state.

        Call once at startup, before serving. Every unflushed session in
        the WAL is rebuilt by replaying its logged append batches
        through a fresh compressor — streaming compression is
        deterministic, so the rebuilt state (retained points included)
        is byte-identical to the pre-crash acknowledged state. Recovered
        sessions are marked ``recovered`` and keep their sequence
        numbers, so a reconnecting client can RESUME and continue.

        A session whose spec no longer parses (or whose replay fails) is
        recorded in :attr:`last_recovery_failures` and skipped; one bad
        session never blocks the rest.

        Returns:
            ``{"sessions": n, "fixes": n, "failed": n, "dropped_lines": n}``.
        """
        if self.wal is None:
            return {"sessions": 0, "fixes": 0, "failed": 0, "dropped_lines": 0}
        recovered_sessions = 0
        recovered_fixes = 0
        failed = 0
        now = self._clock()
        for rec in self.wal.recovered.live_sessions.values():
            try:
                compressor = make_online_compressor(rec.spec)
                session = Session(rec.session_id, rec.spec, compressor, now)
                for op in rec.ops:
                    if op[0] == "r":
                        # Budget renegotiation: replayed at the same
                        # point of the history, so the deterministic
                        # eviction core re-evicts the same points and
                        # the rebuilt state is bit-identical.
                        session.renegotiate(op[1])
                        continue
                    _, seq, fixes = op
                    # Replay applies acknowledged batches through the
                    # exact code path that applied them originally;
                    # mid-batch StreamErrors are re-decided identically
                    # and deliberately not re-raised.
                    kept, evicted, accepted, error = session.append_many(
                        fixes, now
                    )
                    session.last_seq = seq
                    session.last_outcome = AppendOutcome(
                        seq=seq,
                        retained=kept,
                        evicted=evicted,
                        accepted=accepted,
                        error=error,
                    )
                    recovered_fixes += accepted
            except (ReproError, ValueError, KeyError) as exc:
                failed += 1
                self.metrics.counter("sessions_recovery_failed").inc()
                self._record_failure(
                    self.last_recovery_failures, rec.session_id, exc
                )
                continue
            session.recovered = True
            self._sessions[rec.session_id] = session
            recovered_sessions += 1
            self.metrics.counter("sessions_recovered").inc()
        return {
            "sessions": recovered_sessions,
            "fixes": recovered_fixes,
            "failed": failed,
            "dropped_lines": self.wal.recovered.dropped_lines,
        }

    @staticmethod
    def _record_failure(bucket: list[dict], session_id: str, exc: Exception) -> None:
        """Append a bounded diagnostic record (session id + error repr)."""
        bucket.append({"session": session_id, "error": repr(exc)})
        if len(bucket) > MAX_RECORDED_FAILURES:
            del bucket[: len(bucket) - MAX_RECORDED_FAILURES]

    # ------------------------------------------------------------------ #
    # Flush & stats
    # ------------------------------------------------------------------ #

    def _flush(self, session: Session) -> tuple[StoredRecord | None, list[Fix]]:
        """Finalize a session and land it in the store (+ store file)."""
        trajectory, tail = session.finalize()
        if trajectory is None:
            if self.wal is not None and not self.wal.failed:
                # Even an empty session must leave a truncation marker,
                # or its open record would pin WAL segments forever.
                self.wal.stage_flushed(session.object_id)
            return None, tail
        with span("serve.flush", session=session.object_id), \
                self.metrics.timer("flush_s").time(), \
                self.metrics.timer(f"flush_s.{session.algorithm}").time():
            try:
                record = self.store.insert(
                    trajectory,
                    object_id=session.object_id,
                    compressor=None,  # points were already chosen online
                    # A recovered session may have flushed just before the
                    # crash reached its WAL truncation marker; replay is
                    # deterministic, so overwriting is the safe outcome.
                    replace=self.replace or session.recovered,
                    raw_point_count=session.n_fixes_in,
                    sync_error_bound_m=session.compressor.sync_error_bound(),
                )
            except StorageError as exc:
                raise ServeError(str(exc), code="storage") from exc
            self.metrics.counter("sessions_flushed").inc()
            self.metrics.counter("fixes_flushed").inc(record.n_stored_points)
            self.metrics.counter("flushed_bytes").inc(record.stored_bytes)
            self.persist()
        if self.wal is not None and not self.wal.failed:
            # Truncation marker: only after the store durably holds the
            # trajectory may the WAL forget this session. The marker is
            # staged here and rides the next group commit; a crash in
            # between merely re-flushes on recovery (replace-safe above).
            self.wal.stage_flushed(session.object_id)
        return record, tail

    def persist(self) -> None:
        """Atomically re-persist the store file, when one is configured."""
        if self.store_path is not None:
            self.store.save(self.store_path, durable=self.durable)

    def stats(self) -> dict:
        """JSON-ready counters answering the ``stats`` verb.

        Reports live occupancy plus every lifecycle counter (opened,
        rejected, evicted, recovered, flushed), fix throughput, the
        bounded failure diagnostics, and — when a WAL is configured —
        its commit/segment counters.
        """
        counter = self.metrics.counter
        exported = self.metrics.to_dict()["counters"] if self.metrics.enabled else {}
        by_algorithm = {
            name.split(".", 1)[1]: value
            for name, value in exported.items()
            if name.startswith("fixes_in.")
        }
        evicted_by_algorithm = {
            name.split(".", 1)[1]: value
            for name, value in exported.items()
            if name.startswith("fixes_evicted.")
        }
        stats = {
            "live_sessions": len(self._sessions),
            "max_sessions": self.max_sessions,
            "idle_timeout_s": self.idle_timeout_s,
            "stored_objects": len(self.store),
            "sessions_opened": counter("sessions_opened").value,
            "sessions_rejected": counter("sessions_rejected").value,
            "sessions_evicted": counter("sessions_evicted").value,
            "sessions_flushed": counter("sessions_flushed").value,
            "sessions_recovered": counter("sessions_recovered").value,
            "sessions_discarded": counter("sessions_discarded").value,
            "sessions_renegotiated": counter("sessions_renegotiated").value,
            "sessions_admitted_degraded": counter(
                "sessions_admitted_degraded"
            ).value,
            "budget_renegotiations": counter("budget_renegotiations").value,
            "fixes_in": counter("fixes_in").value,
            "fixes_retained": counter("fixes_retained").value,
            "fixes_evicted": counter("fixes_evicted").value,
            "fixes_flushed": counter("fixes_flushed").value,
            "fixes_in_by_algorithm": by_algorithm,
            "fixes_evicted_by_algorithm": evicted_by_algorithm,
            "last_evict_failures": list(self.last_evict_failures),
            "last_recovery_failures": list(self.last_recovery_failures),
        }
        if self.wal is not None:
            stats["wal"] = self.wal.stats()
        return stats
