"""Shared-nothing worker pool for the sharded serve tier.

Two pieces, both deliberately small:

:class:`HashRing` is a classic consistent-hash ring (virtual nodes,
stable hash — BLAKE2, not Python's seeded ``hash()``) mapping object ids
onto worker names. Its load-bearing property, proven by the Hypothesis
suite in ``tests/serve/test_pool.py``: adding or removing one worker
only remaps the keys that land on that worker's arc — every other
object id keeps its shard, which is what lets a respawned worker
recover *its* WAL while the rest of the fleet keeps serving untouched.

:class:`WorkerPool` owns N ``repro serve`` **processes** — real
processes, not tasks, because the single-process server is CPU-bound on
one core and shared-nothing sharding is how the paper's O(1)-state
online algorithms scale horizontally. Each worker is a full PR-7
durable server with its *own* WAL directory (``<wal>/worker-<i>/``) and
its *own* store partition (``<store>.worker-<i>``): no shared mutable
state anywhere, so there is nothing to lock and nothing to corrupt
across shard boundaries. The pool spawns workers on ephemeral ports
(parsing the ``serving on host:port`` banner), watches each process,
and respawns a worker that dies — the respawned process replays its WAL
*before* binding its socket (that is just :meth:`TrajectoryServer.start`
semantics), so by the time :meth:`WorkerPool.acquire` re-admits the
hash range, every previously acknowledged batch is live again.
"""

from __future__ import annotations

import asyncio
import contextlib
import hashlib
import os
import signal
import sys
from bisect import bisect_right
from collections import deque
from pathlib import Path
from typing import Iterable

from repro.exceptions import ServeError
from repro.obs import Registry

__all__ = ["HashRing", "WorkerHandle", "WorkerPool", "partition_path"]

#: Virtual nodes per worker: enough that a 4-worker ring splits load
#: within a few percent of even, cheap enough that rebuilds don't matter.
DEFAULT_REPLICAS = 64


def _ring_hash(key: str) -> int:
    """A stable 64-bit position on the ring.

    BLAKE2b rather than ``hash()``: Python string hashing is salted per
    process (PYTHONHASHSEED), and the whole point of the ring is that the
    router, the bench harness and a test can all compute the same
    object-id → worker mapping independently.
    """
    return int.from_bytes(
        hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest(), "big"
    )


class HashRing:
    """Consistent hashing of object ids onto named workers.

    Args:
        nodes: initial worker names.
        replicas: virtual nodes per worker (spreads each worker's arcs
            around the ring so load stays even).
    """

    def __init__(self, nodes: Iterable[str] = (), *, replicas: int = DEFAULT_REPLICAS) -> None:
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.replicas = int(replicas)
        self._nodes: set[str] = set()
        #: Sorted ``(position, node)`` pairs; the pair ordering breaks
        #: the (astronomically unlikely) position tie deterministically.
        self._points: list[tuple[int, str]] = []
        for node in nodes:
            self.add(node)

    @property
    def nodes(self) -> frozenset[str]:
        """The live worker names."""
        return frozenset(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def add(self, node: str) -> None:
        """Add a worker (idempotent is an error: duplicate names refuse)."""
        if not node:
            raise ValueError("worker name must be non-empty")
        if node in self._nodes:
            raise ValueError(f"worker {node!r} is already on the ring")
        self._nodes.add(node)
        for replica in range(self.replicas):
            self._points.append((_ring_hash(f"{node}#{replica}"), node))
        self._points.sort()

    def remove(self, node: str) -> None:
        """Remove a worker; its arcs fall to the next nodes clockwise."""
        if node not in self._nodes:
            raise ValueError(f"worker {node!r} is not on the ring")
        self._nodes.discard(node)
        self._points = [point for point in self._points if point[1] != node]

    def node_for(self, key: str) -> str:
        """The worker owning ``key`` — first node clockwise of its hash.

        Raises:
            ServeError: (code ``unavailable``) on an empty ring.
        """
        if not self._points:
            raise ServeError("no workers on the ring", code="unavailable")
        position = _ring_hash(key)
        index = bisect_right(self._points, (position, "￿"))
        if index == len(self._points):
            index = 0  # wrap: the arc past the last point belongs to the first
        return self._points[index][1]


def partition_path(store_path: "Path | str", name: str) -> Path:
    """Where worker ``name``'s store partition lives.

    ``fleet.rsto`` + ``worker-2`` → ``fleet.rsto.worker-2`` — next to
    the merged file a drain produces, so the per-shard partitions remain
    the source of truth across restarts and the merged file is the
    export artifact.
    """
    store_path = Path(store_path)
    return store_path.with_name(f"{store_path.name}.{name}")


class WorkerHandle:
    """One worker process slot (survives respawns; the process doesn't)."""

    __slots__ = (
        "name",
        "index",
        "wal_dir",
        "store_path",
        "port",
        "process",
        "ready",
        "restarts",
        "recent_output",
    )

    def __init__(
        self,
        name: str,
        index: int,
        wal_dir: "Path | None",
        store_path: "Path | None",
    ) -> None:
        self.name = name
        self.index = index
        self.wal_dir = wal_dir
        self.store_path = store_path
        self.port: int | None = None
        self.process: asyncio.subprocess.Process | None = None
        #: Set while the worker is serving; cleared the moment its
        #: process dies, so routing to this shard parks until respawn.
        self.ready = asyncio.Event()
        self.restarts = 0
        #: Tail of the worker's stdout/stderr, for crash diagnostics.
        self.recent_output: deque[str] = deque(maxlen=50)

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.returncode is None


class WorkerPool:
    """Spawn, watch, respawn and drain the shard worker processes.

    Args:
        workers: process count (also the shard count).
        host: loopback address the workers bind (ephemeral ports).
        wal_dir: base WAL directory; worker ``i`` journals under
            ``<wal_dir>/worker-<i>/``. ``None`` runs workers without a
            WAL (a killed worker then loses its live sessions — exactly
            the single-process trade-off, per shard).
        store_path: the *merged* store file path; each worker persists
            its partition at :func:`partition_path`. ``None`` = no
            persistence.
        default_spec: forwarded as the workers' ``--algorithm``.
        max_sessions: admission limit **per worker**.
        idle_timeout_s / sweep_interval_s / queue_size / replace:
            forwarded verbatim to every worker.
        replicas: virtual nodes per worker on the ring.
        spawn_timeout_s: how long a worker may take to report its port
            (WAL replay happens inside this window).
        max_restarts: respawns allowed per worker before its shard is
            declared unavailable (a crash-looping binary should fail
            loudly, not flap forever).
        metrics: shared registry (worker deaths/respawns are counted
            here under ``worker_deaths`` / ``worker_respawns``).
    """

    def __init__(
        self,
        workers: int,
        *,
        host: str = "127.0.0.1",
        wal_dir: "Path | str | None" = None,
        store_path: "Path | str | None" = None,
        default_spec: "str | None" = None,
        max_sessions: int = 1024,
        degrade_budget_floor: "int | None" = None,
        degrade_budget_factor: float = 0.5,
        idle_timeout_s: float = 300.0,
        sweep_interval_s: float = 5.0,
        queue_size: int = 64,
        replace: bool = False,
        replicas: int = DEFAULT_REPLICAS,
        spawn_timeout_s: float = 30.0,
        max_restarts: int = 5,
        metrics: "Registry | None" = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.host = host
        self.wal_base = None if wal_dir is None else Path(wal_dir)
        self.store_path = None if store_path is None else Path(store_path)
        self.default_spec = default_spec
        self.max_sessions = int(max_sessions)
        self.degrade_budget_floor = (
            None if degrade_budget_floor is None else int(degrade_budget_floor)
        )
        self.degrade_budget_factor = float(degrade_budget_factor)
        self.idle_timeout_s = float(idle_timeout_s)
        self.sweep_interval_s = float(sweep_interval_s)
        self.queue_size = int(queue_size)
        self.replace = replace
        self.spawn_timeout_s = float(spawn_timeout_s)
        self.max_restarts = int(max_restarts)
        self.metrics = metrics if metrics is not None else Registry()
        self.handles: list[WorkerHandle] = []
        for index in range(workers):
            name = f"worker-{index}"
            self.handles.append(
                WorkerHandle(
                    name,
                    index,
                    None if self.wal_base is None else self.wal_base / name,
                    None
                    if self.store_path is None
                    else partition_path(self.store_path, name),
                )
            )
        self.ring = HashRing((h.name for h in self.handles), replicas=replicas)
        self._by_name = {handle.name: handle for handle in self.handles}
        self._monitors: list[asyncio.Task] = []
        self._pumps: dict[str, asyncio.Task] = {}
        self._stopping = False

    @property
    def worker_names(self) -> list[str]:
        return [handle.name for handle in self.handles]

    def handle_for(self, object_id: str) -> WorkerHandle:
        """The handle whose shard owns ``object_id`` (no readiness wait)."""
        return self._by_name[self.ring.node_for(object_id)]

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    async def start(self) -> "WorkerPool":
        """Spawn every worker (concurrently) and start the monitors."""
        self._stopping = False
        await asyncio.gather(*(self._spawn(handle) for handle in self.handles))
        for handle in self.handles:
            self._monitors.append(asyncio.create_task(self._monitor(handle)))
        return self

    async def _spawn(self, handle: WorkerHandle) -> None:
        """Start one worker process and wait for its ``serving on`` banner.

        The banner appears only after the worker's WAL replay completed
        and its socket is bound, so ``ready`` being set *is* the
        "recovered before re-admitted" guarantee.
        """
        command = [
            sys.executable, "-m", "repro", "serve",
            "--host", self.host,
            "--port", "0",
            "--shard", handle.name,
            "--max-sessions", str(self.max_sessions),
            "--idle-timeout", str(self.idle_timeout_s),
            "--sweep-interval", str(self.sweep_interval_s),
            "--queue-size", str(self.queue_size),
        ]
        if handle.store_path is not None:
            command += ["--store", str(handle.store_path)]
        if handle.wal_dir is not None:
            handle.wal_dir.mkdir(parents=True, exist_ok=True)
            command += ["--wal", str(handle.wal_dir)]
        if self.default_spec is not None:
            command += ["--algorithm", self.default_spec]
        if self.degrade_budget_floor is not None:
            command += [
                "--degrade-floor", str(self.degrade_budget_floor),
                "--degrade-factor", str(self.degrade_budget_factor),
            ]
        if self.replace:
            command += ["--replace"]
        process = await asyncio.create_subprocess_exec(
            *command,
            stdout=asyncio.subprocess.PIPE,
            stderr=asyncio.subprocess.STDOUT,
            env={**os.environ, "PYTHONPATH": os.pathsep.join(sys.path)},
        )
        handle.process = process
        assert process.stdout is not None
        try:
            await asyncio.wait_for(
                self._await_banner(handle, process), self.spawn_timeout_s
            )
        except asyncio.TimeoutError:
            process.kill()
            raise ServeError(
                f"{handle.name} never reported its port within "
                f"{self.spawn_timeout_s:g}s; last output: "
                f"{list(handle.recent_output)[-3:]}",
                code="unavailable",
            ) from None
        old_pump = self._pumps.pop(handle.name, None)
        if old_pump is not None:
            old_pump.cancel()
        self._pumps[handle.name] = asyncio.create_task(
            self._pump_output(handle, process)
        )
        handle.ready.set()

    async def _await_banner(
        self, handle: WorkerHandle, process: asyncio.subprocess.Process
    ) -> None:
        assert process.stdout is not None
        while True:
            raw = await process.stdout.readline()
            if not raw:
                raise ServeError(
                    f"{handle.name} exited during startup "
                    f"(code {process.returncode}); output: "
                    f"{list(handle.recent_output)[-5:]}",
                    code="unavailable",
                )
            line = raw.decode("utf-8", "replace").rstrip()
            handle.recent_output.append(line)
            if line.startswith("serving on "):
                handle.port = int(line.split()[2].rsplit(":", 1)[1])
                return

    async def _pump_output(
        self, handle: WorkerHandle, process: asyncio.subprocess.Process
    ) -> None:
        """Keep draining a live worker's stdout so its pipe never fills."""
        assert process.stdout is not None
        with contextlib.suppress(Exception):
            while True:
                raw = await process.stdout.readline()
                if not raw:
                    return
                handle.recent_output.append(
                    raw.decode("utf-8", "replace").rstrip()
                )

    async def _monitor(self, handle: WorkerHandle) -> None:
        """Watch one slot forever: detect death, recover, re-admit."""
        while not self._stopping:
            process = handle.process
            if process is None:
                return
            await process.wait()
            if self._stopping:
                return
            # Unexpected death. Hold the shard (ready stays cleared) so
            # the router parks requests instead of failing them, then
            # respawn over the same WAL directory — replay happens in
            # the child before its banner, i.e. before re-admission.
            handle.ready.clear()
            self.metrics.counter("worker_deaths").inc()
            self.metrics.counter(f"worker_deaths.{handle.name}").inc()
            if handle.restarts >= self.max_restarts:
                self.metrics.counter("worker_abandoned").inc()
                return
            handle.restarts += 1
            try:
                await self._spawn(handle)
            except ServeError:
                self.metrics.counter("worker_respawn_failures").inc()
                continue  # the failed child dies immediately; retry
            self.metrics.counter("worker_respawns").inc()

    async def acquire(
        self, name: str, *, timeout_s: float = 10.0
    ) -> WorkerHandle:
        """The ready handle for shard ``name``, waiting out a respawn.

        Raises:
            ServeError: (code ``unavailable``) when the shard does not
                come back within ``timeout_s`` — crash loop, abandoned
                worker, or a respawn slower than the caller can wait.
        """
        handle = self._by_name.get(name)
        if handle is None:
            raise ServeError(f"unknown shard {name!r}", code="unavailable")
        try:
            await asyncio.wait_for(handle.ready.wait(), timeout_s)
        except asyncio.TimeoutError:
            raise ServeError(
                f"shard {name} is unavailable (worker down, not yet "
                f"recovered after {timeout_s:g}s)",
                code="unavailable",
            ) from None
        return handle

    def kill(self, name: str, *, sig: int = signal.SIGKILL) -> None:
        """Send ``sig`` to a worker process (the chaos harness's lever)."""
        handle = self._by_name[name]
        if handle.process is not None and handle.process.returncode is None:
            handle.process.send_signal(sig)

    async def drain(self) -> dict:
        """Graceful fleet shutdown: SIGTERM every worker, await exit 0.

        Each worker runs its own PR-7 drain (flush every live session,
        persist its partition store, truncate its WAL) before exiting.

        Returns:
            ``{"exit_codes": {name: code}}``.
        """
        self._stopping = True
        exit_codes: dict[str, "int | None"] = {}
        for handle in self.handles:
            if handle.alive:
                assert handle.process is not None
                handle.process.terminate()
        for handle in self.handles:
            process = handle.process
            if process is None:
                exit_codes[handle.name] = None
                continue
            try:
                await asyncio.wait_for(process.wait(), self.spawn_timeout_s)
            except asyncio.TimeoutError:
                process.kill()
                await process.wait()
            exit_codes[handle.name] = process.returncode
            handle.ready.clear()
        await self._reap_tasks()
        return {"exit_codes": exit_codes}

    async def stop(self) -> None:
        """Tear the fleet down without waiting for graceful drains."""
        self._stopping = True
        for handle in self.handles:
            if handle.alive:
                assert handle.process is not None
                handle.process.kill()
        for handle in self.handles:
            if handle.process is not None:
                with contextlib.suppress(ProcessLookupError):
                    await handle.process.wait()
            handle.ready.clear()
        await self._reap_tasks()

    async def _reap_tasks(self) -> None:
        for task in (*self._monitors, *self._pumps.values()):
            task.cancel()
        for task in (*self._monitors, *self._pumps.values()):
            with contextlib.suppress(asyncio.CancelledError, Exception):
                await task
        self._monitors.clear()
        self._pumps.clear()

    def stats(self) -> dict:
        """JSON-ready fleet view for the router's merged ``stats``."""
        return {
            "workers": len(self.handles),
            "ring_replicas": self.ring.replicas,
            "worker_deaths": self.metrics.counter("worker_deaths").value,
            "worker_respawns": self.metrics.counter("worker_respawns").value,
            "shards": {
                handle.name: {
                    "port": handle.port,
                    "alive": handle.alive,
                    "ready": handle.ready.is_set(),
                    "restarts": handle.restarts,
                    "wal_dir": None if handle.wal_dir is None else str(handle.wal_dir),
                    "store_path": (
                        None if handle.store_path is None else str(handle.store_path)
                    ),
                }
                for handle in self.handles
            },
        }
