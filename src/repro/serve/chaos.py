"""Deterministic fault-injection harness for the crash-safe serve tier.

Each scenario makes one specific thing go wrong — an fsync that starts
failing, a WAL tail torn mid-record, a client that dies between frames,
a server SIGKILLed at a seeded-random offset — and then proves the
durability contract the hard way:

    **the acknowledged prefix of every session is recovered
    byte-identical to an uninterrupted run.**

"Byte-identical" is checked at the float level: the recovered session
is closed and its stored trajectory's ``t``/``x``/``y`` values must
equal, exactly, what the same online compressor produces over the same
raw prefix in one uninterrupted pass. Because streaming compression is
deterministic, any divergence — a lost batch, a double-applied batch, a
reordering — shows up as a failed comparison, not a heuristic.

Recovery is allowed to restore slightly *more* than was acknowledged
(a batch can be durable before its ack is written — the classic WAL
window), so each scenario asserts the recovered raw count ``k`` lies in
``[acked, sent]`` and compares against the reference prefix of exactly
``k`` fixes.

Run everything via ``repro serve-chaos`` (the ``sigkill`` and
``worker-kill`` scenarios spawn real server subprocesses and take
seconds; skip them with ``--fast``), or through pytest:
``pytest -m chaos``.
"""

from __future__ import annotations

import asyncio
import os
import random
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.exceptions import ReproError, ServeError
from repro.serve.client import DurableServeClient, ServeClient
from repro.serve.faults import Fault, FaultInjector
from repro.serve.pool import WorkerPool
from repro.serve.protocol import encode_message
from repro.serve.router import ServeRouter
from repro.serve.server import TrajectoryServer
from repro.serve.wal import scan_wal
from repro.storage.store import TrajectoryStore
from repro.streaming.registry import make_online_compressor
from repro.types import Fix

__all__ = [
    "SCENARIOS",
    "ScenarioResult",
    "free_port",
    "pick_shard_sessions",
    "run_chaos",
    "run_scenario",
    "spawn_server",
]

#: Scenario registry, in the order ``repro serve-chaos`` runs them.
SCENARIOS = ("fsync-fail", "torn-tail", "disconnect", "sigkill", "worker-kill")

#: Compressor under test; opening-window with a mid-size tolerance so
#: batches regularly both retain and discard points.
SPEC = "opw-tr:epsilon=25"


@dataclass
class ScenarioResult:
    """One scenario's verdict plus the numbers behind it."""

    name: str
    passed: bool
    detail: dict = field(default_factory=dict)


def make_fixes(n: int, seed: int) -> list[Fix]:
    """A deterministic bounded random walk of ``n`` fixes (1 Hz)."""
    rng = random.Random(seed)
    fixes, x, y = [], 0.0, 0.0
    for i in range(n):
        x += rng.uniform(-14.0, 14.0)
        y += rng.uniform(-14.0, 14.0)
        fixes.append(Fix(float(i), x, y))
    return fixes


def reference_selection(spec: str, fixes: list[Fix]) -> list[Fix]:
    """The uninterrupted run: one pass, push everything, finish."""
    compressor = make_online_compressor(spec)
    retained: list[Fix] = []
    for fix in fixes:
        retained.extend(compressor.push(fix))
    retained.extend(compressor.finish())
    return retained


def _stored_points(store: TrajectoryStore, object_id: str) -> list[Fix]:
    trajectory = store.get(object_id)
    return [
        Fix(float(t), float(x), float(y))
        for t, x, y in zip(trajectory.t, trajectory.x, trajectory.y)
    ]


def _store_round_trip(selection: list[Fix]) -> list[Fix]:
    """A selection as the store would hold it (deterministic quantization).

    The store's delta codec quantizes coordinates, so "byte-identical"
    is asserted at the stored level: the reference selection goes
    through the same encode/decode as the recovered one, and equal
    inputs produce equal bytes. Any lost, doubled or reordered point
    still diverges.
    """
    from repro.trajectory.trajectory import Trajectory

    trajectory = Trajectory.from_points([(f.t, f.x, f.y) for f in selection])
    store = TrajectoryStore()
    store.insert(trajectory, object_id="reference")
    return _stored_points(store, "reference")


def _assert_prefix_identical(
    *,
    spec: str,
    fixes: list[Fix],
    recovered_raw: int,
    acked_raw: int,
    sent_raw: int,
    stored: list[Fix],
    detail: dict,
) -> None:
    """The harness's core assertion (see the module docstring).

    Raises:
        AssertionError: the durability contract was violated.
    """
    detail.update(
        acked_raw=acked_raw, sent_raw=sent_raw, recovered_raw=recovered_raw
    )
    assert acked_raw <= recovered_raw <= sent_raw, (
        f"recovered {recovered_raw} raw fixes, outside the legal window "
        f"[acked={acked_raw}, sent={sent_raw}]"
    )
    expected = _store_round_trip(reference_selection(spec, fixes[:recovered_raw]))
    detail.update(stored_points=len(stored), expected_points=len(expected))
    assert stored == expected, (
        f"stored selection diverged from the uninterrupted reference over "
        f"the recovered prefix ({len(stored)} vs {len(expected)} points)"
    )


# --------------------------------------------------------------------- #
# In-process scenarios
# --------------------------------------------------------------------- #


async def _scenario_fsync_fail(base: Path, seed: int, n_fixes: int) -> dict:
    """The disk breaks mid-run: fsync fails on the K-th group commit.

    The server must refuse the failing append (and everything after it)
    instead of acking writes of unknown durability, and a restart must
    recover exactly the state of the last *successful* commit or later.
    """
    rng = random.Random(seed)
    fixes = make_fixes(n_fixes, seed)
    batch = 10
    fail_at = rng.randint(3, max(3, n_fixes // batch - 2))
    wal_dir, store_path = base / "wal", base / "chaos.rsto"
    faults = FaultInjector().set(
        "wal.fsync", Fault(at=fail_at, error=OSError("injected fsync failure"),
                           once=False)
    )
    server = TrajectoryServer(
        port=0, wal_dir=wal_dir, store_path=store_path, faults=faults
    )
    await server.start()
    acked = 0
    failure_code = None
    try:
        async with await ServeClient.connect(server.host, server.port) as client:
            await client.open("chaos", SPEC)
            for start in range(0, n_fixes, batch):
                chunk = fixes[start : start + batch]
                try:
                    await client.append("chaos", chunk, seq=start // batch + 1)
                except ServeError as exc:
                    failure_code = exc.code
                    break
                acked += len(chunk)
            assert failure_code == "wal-failure", (
                f"expected the broken disk to surface as wal-failure, "
                f"got {failure_code!r}"
            )
            # The dirty session was discarded: the server must not keep
            # serving state it cannot promise to recover.
            try:
                await client.append("chaos", [fixes[-1]])
                raise AssertionError("append after WAL failure was accepted")
            except ServeError as exc:
                assert exc.code in ("unknown-session", "wal-failure"), exc.code
    finally:
        server.abort()

    # Restart over the same WAL directory: replay, close, compare.
    restarted = TrajectoryServer(port=0, wal_dir=wal_dir, store_path=store_path)
    await restarted.start()
    try:
        assert restarted.recovery is not None
        assert restarted.recovery["sessions"] == 1, restarted.recovery
        session = restarted.manager.get("chaos")
        recovered_raw = session.n_fixes_in
        restarted.manager.close("chaos")
        detail: dict = {"fail_at_commit": fail_at, "failure_code": failure_code}
        _assert_prefix_identical(
            spec=SPEC,
            fixes=fixes,
            recovered_raw=recovered_raw,
            acked_raw=acked,
            sent_raw=acked + batch,  # the failing batch may be on disk
            stored=_stored_points(restarted.store, "chaos"),
            detail=detail,
        )
        return detail
    finally:
        await restarted.stop()


async def _scenario_torn_tail(base: Path, seed: int, n_fixes: int) -> dict:
    """A crash tears the last WAL record mid-write — then a second crash.

    Recovery must drop the damaged tail (it was never acknowledged —
    fsync orders the lines), count what it dropped, and restore every
    intact record. The scenario then keeps streaming into the recovered
    session and crashes *again*: the second restart proves the damage
    was physically truncated out of the old segment at the first
    recovery — otherwise its scan would rediscover the torn line and
    discard every batch acknowledged since (acknowledged-data loss).
    """
    fixes = make_fixes(n_fixes, seed)
    batch = 10
    first_batches = max(1, (n_fixes // batch) // 2)
    split = first_batches * batch
    wal_dir, store_path = base / "wal", base / "chaos.rsto"
    server = TrajectoryServer(port=0, wal_dir=wal_dir, store_path=store_path)
    await server.start()
    acked = 0
    try:
        async with await ServeClient.connect(server.host, server.port) as client:
            await client.open("chaos", SPEC)
            for start in range(0, split, batch):
                await client.append(
                    "chaos", fixes[start : start + batch],
                    seq=start // batch + 1,
                )
                acked += batch
    finally:
        server.abort()

    # Tear the tail: a half-written record (valid CRC prefix length but
    # truncated payload) followed by garbage the crash never ordered.
    segments = sorted(wal_dir.glob("seg-*.wal"))
    assert segments, "no WAL segment survived the run"
    with segments[-1].open("ab") as handle:
        handle.write(b'00000000 {"k":"a","s":"chaos","q":99')
    dropped_expected = 1

    restarted = TrajectoryServer(port=0, wal_dir=wal_dir, store_path=store_path)
    await restarted.start()
    try:
        assert restarted.recovery is not None
        detail: dict = {"dropped_lines": restarted.recovery["dropped_lines"]}
        assert restarted.recovery["dropped_lines"] >= dropped_expected, (
            f"torn tail was not counted: {restarted.recovery}"
        )
        assert restarted.manager.get("chaos").n_fixes_in == acked
        # Keep streaming into the recovered session, every batch acked
        # (and therefore WAL-durable) before the next goes out.
        async with await ServeClient.connect(
            restarted.host, restarted.port
        ) as client:
            resumed = await client.resume("chaos")
            assert resumed["seq"] == first_batches, resumed
            for start in range(split, n_fixes, batch):
                await client.append(
                    "chaos", fixes[start : start + batch],
                    seq=start // batch + 1,
                )
                acked += min(batch, n_fixes - start)
    finally:
        restarted.abort()

    # Second crash-restart over the same directory: everything acked in
    # both lives must come back, and no stale damage may be re-counted.
    second = TrajectoryServer(port=0, wal_dir=wal_dir, store_path=store_path)
    await second.start()
    try:
        assert second.recovery is not None
        detail["dropped_lines_second_restart"] = second.recovery["dropped_lines"]
        assert second.recovery["dropped_lines"] == 0, (
            f"first recovery left the torn tail on disk: {second.recovery}"
        )
        session = second.manager.get("chaos")
        recovered_raw = session.n_fixes_in
        second.manager.close("chaos")
        _assert_prefix_identical(
            spec=SPEC,
            fixes=fixes,
            recovered_raw=recovered_raw,
            acked_raw=acked,
            sent_raw=acked,
            stored=_stored_points(second.store, "chaos"),
            detail=detail,
        )
        return detail
    finally:
        await second.stop()


async def _scenario_disconnect(base: Path, seed: int, n_fixes: int) -> dict:
    """The client dies between frames; its ack is lost on the floor.

    The reconnecting client must learn the truth via ``resume`` and
    re-send the unacknowledged batch under the same sequence number —
    the server deduplicates, and the final store holds every fix exactly
    once.
    """
    fixes = make_fixes(n_fixes, seed)
    batch = 10
    wal_dir, store_path = base / "wal", base / "chaos.rsto"
    server = TrajectoryServer(port=0, wal_dir=wal_dir, store_path=store_path)
    await server.start()
    try:
        async with await ServeClient.connect(server.host, server.port) as client:
            await client.open("chaos", SPEC)
            await client.append("chaos", fixes[:batch], seq=1)

        # Fire one append frame and slam the connection shut without
        # reading the response — the server applies it, nobody hears.
        reader, writer = await asyncio.open_connection(server.host, server.port)
        flat = [v for fix in fixes[batch : 2 * batch] for v in fix]
        writer.write(encode_message(
            {"op": "append", "session": "chaos", "seq": 2, "fixes_flat": flat}
        ))
        await writer.drain()
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
        # Wait (bounded) until the server has processed the orphan frame.
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if server.manager.get("chaos").last_seq >= 2:
                break
            await asyncio.sleep(0.01)
        assert server.manager.get("chaos").last_seq == 2, "orphan frame lost"

        duplicates = 0
        async with await ServeClient.connect(server.host, server.port) as client:
            resumed = await client.resume("chaos")
            assert resumed["seq"] == 2, resumed
            # A correct client re-sends the batch it never got acked;
            # the server replays the cached acknowledgement instead of
            # applying it twice.
            response = await client.append_response(
                "chaos", fixes[batch : 2 * batch], seq=2
            )
            duplicates += bool(response.get("duplicate"))
            assert response.get("duplicate") is True, response
            for k in range(2, (n_fixes + batch - 1) // batch):
                await client.append(
                    "chaos",
                    fixes[k * batch : (k + 1) * batch],
                    seq=k + 1,
                )
            await client.close_session("chaos")

        detail: dict = {"duplicates_replayed": duplicates}
        _assert_prefix_identical(
            spec=SPEC,
            fixes=fixes,
            recovered_raw=n_fixes,
            acked_raw=n_fixes,
            sent_raw=n_fixes,
            stored=_stored_points(server.store, "chaos"),
            detail=detail,
        )
        return detail
    finally:
        await server.stop()


# --------------------------------------------------------------------- #
# Subprocess scenario: SIGKILL at a seeded-random acknowledgement
# --------------------------------------------------------------------- #


def free_port() -> int:
    """An ephemeral TCP port, bound-and-released (small reuse race OK)."""
    import socket

    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def spawn_server(port: int, wal_dir: Path, store_path: Path) -> subprocess.Popen:
    """A real ``repro serve`` subprocess, returned once it reports ready.

    Shared by the ``sigkill`` scenario and the test harness: blocks until
    the child prints its ``serving on`` banner (which only happens after
    WAL replay and socket bind), so the caller may connect immediately.
    """
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", str(port),
            "--wal", str(wal_dir),
            "--store", str(store_path),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={**os.environ, "PYTHONPATH": os.pathsep.join(sys.path)},
    )
    assert process.stdout is not None
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            raise ReproError(
                f"server subprocess exited during startup "
                f"(code {process.poll()})"
            )
        if "serving on" in line:
            return process
    process.kill()
    raise ReproError("server subprocess never reported 'serving on'")


async def _scenario_sigkill(base: Path, seed: int, n_fixes: int) -> dict:
    """SIGKILL the real server process at a seeded-random ack offset.

    The full stack, no shortcuts: a subprocess running ``repro serve``
    with a WAL, killed with the one signal nothing can handle, restarted
    over the same directory, resumed by the reconnecting client. The
    final store must match the uninterrupted reference over **all**
    fixes — nothing lost, nothing doubled.
    """
    rng = random.Random(seed)
    fixes = make_fixes(n_fixes, seed)
    batch = 10
    n_batches = (n_fixes + batch - 1) // batch
    kill_after = rng.randint(1, n_batches - 1)
    port = free_port()
    wal_dir, store_path = base / "wal", base / "chaos.rsto"

    server = spawn_server(port, wal_dir, store_path)
    restarted: subprocess.Popen | None = None
    try:
        client = DurableServeClient(
            "127.0.0.1", port, timeout=10.0, max_retries=8,
            backoff_base_s=0.1, backoff_max_s=1.0,
        )
        async with client:
            await client.open("chaos", SPEC)
            killed = False
            for k in range(n_batches):
                if k == kill_after and not killed:
                    server.kill()          # SIGKILL: no handlers, no flush
                    server.wait(timeout=30.0)
                    restarted = spawn_server(port, wal_dir, store_path)
                    killed = True
                await client.append("chaos", fixes[k * batch : (k + 1) * batch])
            await client.close_session("chaos")
            reconnects = client.reconnects

        store = TrajectoryStore.load(store_path)
        detail: dict = {
            "kill_after_batch": kill_after,
            "reconnects": reconnects,
        }
        _assert_prefix_identical(
            spec=SPEC,
            fixes=fixes,
            recovered_raw=n_fixes,
            acked_raw=n_fixes,
            sent_raw=n_fixes,
            stored=_stored_points(store, "chaos"),
            detail=detail,
        )
        # The drained close also truncated the WAL: nothing live remains.
        leftover = scan_wal(wal_dir)
        assert not leftover.live_sessions, (
            f"WAL still holds live sessions after a flushed close: "
            f"{sorted(leftover.live_sessions)}"
        )
        return detail
    finally:
        for process in (server, restarted):
            if process is not None and process.poll() is None:
                process.kill()
                process.wait(timeout=30.0)


# --------------------------------------------------------------------- #
# Sharded-fleet scenario: SIGKILL one worker under a live router
# --------------------------------------------------------------------- #


def pick_shard_sessions(pool: WorkerPool, per_shard: int) -> dict[str, str]:
    """Session ids covering every shard: ``{session_id: owning_worker}``.

    Scans deterministic candidate ids (the ring hash is process-stable)
    until each worker owns ``per_shard`` of them, so the kill provably
    disrupts some sessions while others ride on untouched shards.
    """
    wanted = {name: per_shard for name in pool.worker_names}
    chosen: dict[str, str] = {}
    for i in range(10_000):
        sid = f"obj-{i}"
        owner = pool.ring.node_for(sid)
        if wanted.get(owner, 0) > 0:
            wanted[owner] -= 1
            chosen[sid] = owner
        if not any(wanted.values()):
            return chosen
    raise ReproError("ring never covered every shard (broken hash?)")


async def _scenario_worker_kill(base: Path, seed: int, n_fixes: int) -> dict:
    """SIGKILL one shard's worker while clients stream through the router.

    The full sharded stack: a :class:`ServeRouter` over two real
    ``repro serve`` worker subprocesses, sessions pinned to both shards
    by the consistent-hash ring, a :class:`DurableServeClient` streaming
    them interleaved. Mid-stream, the worker owning half the sessions is
    SIGKILLed. The pool monitor must respawn it over its own WAL
    directory (replay *before* the banner, so the router re-admits the
    hash range only once recovery is done), the client must resume
    through the router, and sessions on the surviving shard must never
    notice. The drain endgame merges both partitions; every session's
    stored stream must be byte-identical to an uninterrupted run.
    """
    rng = random.Random(seed)
    batch = 10
    n_batches = (n_fixes + batch - 1) // batch
    kill_before = rng.randint(1, n_batches - 1)
    wal_dir, store_path = base / "wal", base / "fleet.rsto"

    pool = WorkerPool(
        2,
        wal_dir=wal_dir,
        store_path=store_path,
        idle_timeout_s=3600.0,
        sweep_interval_s=3600.0,
    )
    router = ServeRouter(pool, store_path=store_path)
    await router.start()
    owners = pick_shard_sessions(pool, per_shard=2)
    sessions = {
        sid: make_fixes(n_fixes, seed + i) for i, sid in enumerate(owners)
    }
    victim = next(iter(owners.values()))
    try:
        client = DurableServeClient(
            router.host, router.port, timeout=10.0, max_retries=8,
            backoff_base_s=0.1, backoff_max_s=1.0,
        )
        async with client:
            for sid in sessions:
                await client.open(sid, SPEC)
            killed = False
            for k in range(n_batches):
                if k == kill_before and not killed:
                    pool.kill(victim)  # SIGKILL; the monitor owns recovery
                    killed = True
                for sid, fixes in sessions.items():
                    await client.append(sid, fixes[k * batch : (k + 1) * batch])
            for sid in sessions:
                await client.close_session(sid)
            reconnects = client.reconnects

        drained = await router.drain()
        exit_codes = drained["workers"]
        assert all(code == 0 for code in exit_codes.values()), (
            f"drain left non-zero worker exits: {exit_codes}"
        )
        merged = drained["merged"]
        assert merged is not None and merged["n_objects"] == len(sessions), (
            f"merge lost objects: {merged}"
        )

        store = TrajectoryStore.load(store_path)
        detail: dict = {
            "victim": victim,
            "kill_before_batch": kill_before,
            "owners": owners,
            "reconnects": reconnects,
            "respawns": pool.metrics.counter("worker_respawns").value,
            "worker_exit_codes": exit_codes,
            "merged_objects": merged["n_objects"],
            "sessions": {},
        }
        assert detail["respawns"] >= 1, "the killed worker was never respawned"
        for sid, fixes in sessions.items():
            per_session: dict = {"owner": owners[sid]}
            _assert_prefix_identical(
                spec=SPEC,
                fixes=fixes,
                recovered_raw=n_fixes,
                acked_raw=n_fixes,
                sent_raw=n_fixes,
                stored=_stored_points(store, sid),
                detail=per_session,
            )
            detail["sessions"][sid] = per_session
        # Every session closed flushed-and-acked, so no shard's WAL may
        # still hold live state after the drain.
        for handle in pool.handles:
            assert handle.wal_dir is not None
            leftover = scan_wal(handle.wal_dir)
            assert not leftover.live_sessions, (
                f"{handle.name} WAL still live after drain: "
                f"{sorted(leftover.live_sessions)}"
            )
        return detail
    finally:
        await router.stop()


# --------------------------------------------------------------------- #
# Runner
# --------------------------------------------------------------------- #

_RUNNERS = {
    "fsync-fail": _scenario_fsync_fail,
    "torn-tail": _scenario_torn_tail,
    "disconnect": _scenario_disconnect,
    "sigkill": _scenario_sigkill,
    "worker-kill": _scenario_worker_kill,
}


def run_scenario(name: str, *, seed: int = 7, n_fixes: int = 120) -> ScenarioResult:
    """Run one scenario in a throwaway directory; never raises.

    Returns:
        A :class:`ScenarioResult`; assertion failures and unexpected
        errors land in ``detail["error"]`` with ``passed`` false.
    """
    runner = _RUNNERS.get(name)
    if runner is None:
        raise ValueError(
            f"unknown chaos scenario {name!r}; known: {', '.join(SCENARIOS)}"
        )
    with tempfile.TemporaryDirectory(prefix=f"repro-chaos-{name}-") as tmp:
        try:
            detail = asyncio.run(runner(Path(tmp), seed, n_fixes))
        except (AssertionError, ReproError, OSError) as exc:
            return ScenarioResult(
                name, False, {"error": f"{type(exc).__name__}: {exc}"}
            )
    return ScenarioResult(name, True, detail)


def run_chaos(
    scenarios: "tuple[str, ...] | list[str] | None" = None,
    *,
    seed: int = 7,
    n_fixes: int = 120,
) -> dict:
    """Run the selected scenarios (default: all) and summarize.

    Returns:
        ``{"passed": bool, "seed": ..., "scenarios": [per-scenario dicts]}``.
    """
    names = tuple(scenarios) if scenarios else SCENARIOS
    results = [run_scenario(name, seed=seed, n_fixes=n_fixes) for name in names]
    return {
        "passed": all(r.passed for r in results),
        "seed": seed,
        "n_fixes": n_fixes,
        "scenarios": [
            {"name": r.name, "passed": r.passed, **r.detail} for r in results
        ],
    }
