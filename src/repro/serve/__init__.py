"""Trajectory-ingestion service: online compression behind a socket.

The serving layer the ROADMAP's north star asks for: trackers connect
over TCP, speak a newline-delimited JSON protocol
(:mod:`repro.serve.protocol`), and stream fixes into per-object online
compressors; retained points stream back the moment the opening window
decides them, and closed sessions are flushed atomically into a
:class:`~repro.storage.store.TrajectoryStore`. See ``docs/SERVING.md``
for the protocol spec and operational semantics, and
:mod:`repro.serve.bench` for the load generator behind
``repro serve-bench``.
"""

from repro.serve.client import ServeClient
from repro.serve.protocol import MAX_LINE_BYTES, PROTOCOL_VERSION
from repro.serve.server import TrajectoryServer
from repro.serve.session import Session, SessionManager

__all__ = [
    "MAX_LINE_BYTES",
    "PROTOCOL_VERSION",
    "ServeClient",
    "Session",
    "SessionManager",
    "TrajectoryServer",
]
