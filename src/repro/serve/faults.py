"""Deterministic fault injection for the serve tier's durability paths.

The chaos harness (:mod:`repro.serve.chaos`) needs to make specific,
repeatable things go wrong — an fsync that fails on exactly the third
commit, a process that dies the instant a record hits the page cache.
Production code never pays for this: the hot paths hold an optional
:class:`FaultInjector` and call :meth:`FaultInjector.fire` at named
points only when one was injected.

Fault points currently wired in:

* ``wal.write`` — fired before the WAL writer appends staged bytes to
  the active segment;
* ``wal.fsync`` — fired before the WAL writer fsyncs a group commit;
* ``wal.commit`` — fired after a group commit becomes durable (the
  window between durability and acknowledgement; a ``kill`` here proves
  recovery restores state the client was never told about).

Each named point carries a :class:`Fault` that triggers on its Nth
firing (1-based), either raising an injected exception or killing the
process with ``SIGKILL`` — the two failure modes a crash-safe server
must survive.
"""

from __future__ import annotations

import os
import signal
from dataclasses import dataclass, field

__all__ = ["Fault", "FaultInjector"]


@dataclass
class Fault:
    """One scripted failure: trigger on the ``at``-th firing of a point.

    Args:
        at: 1-based firing count that triggers the fault (every earlier
            firing passes through untouched).
        error: exception instance to raise at the trigger; when ``None``
            the process is killed with ``SIGKILL`` instead — an honest
            crash, no cleanup handlers, no flushes.
        once: trigger only once (default); ``False`` keeps raising on
            every firing from ``at`` onwards (a disk that stays broken).
    """

    at: int = 1
    error: "BaseException | None" = None
    once: bool = True
    fired: int = field(default=0, init=False)
    triggered: int = field(default=0, init=False)

    def fire(self) -> None:
        """Count a firing; raise ``error`` (or SIGKILL) once armed."""
        self.fired += 1
        armed = self.fired == self.at or (not self.once and self.fired >= self.at)
        if not armed:
            return
        self.triggered += 1
        if self.error is None:  # pragma: no cover - the process dies here
            os.kill(os.getpid(), signal.SIGKILL)
        raise self.error


class FaultInjector:
    """A registry of named fault points, injectable into durability code.

    Usage::

        faults = FaultInjector()
        faults.set("wal.fsync", Fault(at=3, error=OSError("disk on fire")))
        ...
        faults.fire("wal.fsync")   # third call raises

    Points with no configured fault are free (one dict lookup).
    """

    def __init__(self) -> None:
        self._faults: dict[str, Fault] = {}

    def set(self, point: str, fault: Fault) -> "FaultInjector":
        """Arm ``fault`` at ``point``; returns self for chaining."""
        self._faults[point] = fault
        return self

    def get(self, point: str) -> "Fault | None":
        """Return the fault armed at ``point``, if any."""
        return self._faults.get(point)

    def fire(self, point: str) -> None:
        """Fire a named point: trigger its fault when one is armed."""
        fault = self._faults.get(point)
        if fault is not None:
            fault.fire()

    def summary(self) -> dict:
        """JSON-ready snapshot of every armed point (for diagnostics)."""
        return {
            point: {"at": f.at, "fired": f.fired, "triggered": f.triggered}
            for point, f in sorted(self._faults.items())
        }
