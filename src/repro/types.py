"""Shared lightweight value types.

The library's heavyweight data model lives in
:class:`repro.trajectory.Trajectory`; this module holds the small,
dependency-free value objects that flow between subsystems: a single
time-stamped position (:class:`Fix`) and a couple of type aliases.
"""

from __future__ import annotations

import math
from typing import NamedTuple

__all__ = ["Fix", "Seconds", "Meters", "MetersPerSecond"]

#: A point in time, in seconds (any epoch; only differences matter).
Seconds = float

#: A planar distance in metres.
Meters = float

#: A speed in metres per second.
MetersPerSecond = float


class Fix(NamedTuple):
    """A single time-stamped position ``(t, x, y)``.

    ``t`` is in seconds, ``x``/``y`` in metres in a local planar frame
    (see :mod:`repro.geometry.projection` for converting lon/lat input).
    The paper models a moving object data stream as a sequence of
    ``<t, x, y>`` records (Sect. 1); :class:`Fix` is that record.
    """

    t: Seconds
    x: Meters
    y: Meters

    def distance_to(self, other: "Fix") -> Meters:
        """Euclidean distance between the positions of two fixes."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def speed_to(self, other: "Fix") -> MetersPerSecond:
        """Derived speed travelling from this fix to ``other``.

        Mirrors the paper's derived (not measured) speed
        ``dist(s[i+1], s[i]) / (s[i+1].t - s[i].t)`` used by the SPT
        algorithm (Sect. 3.3).

        Raises:
            ZeroDivisionError: if both fixes carry the same timestamp.
        """
        dt = other.t - self.t
        return self.distance_to(other) / dt
