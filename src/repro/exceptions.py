"""Exception hierarchy for the :mod:`repro` package.

All errors raised by this library derive from :class:`ReproError`, so a
caller can catch every library-specific failure with one ``except`` clause
while still letting programming errors (``TypeError`` from misuse of the
Python API, etc.) propagate unchanged.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "TrajectoryError",
    "EmptyTrajectoryError",
    "TimestampOrderError",
    "CompressionError",
    "ThresholdError",
    "CompressorSpecError",
    "UnknownCompressorError",
    "PipelineError",
    "CheckpointError",
    "StorageError",
    "ObjectNotFoundError",
    "CodecError",
    "CorruptRecordError",
    "StreamError",
    "ServeError",
    "WalError",
    "DataGenError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class TrajectoryError(ReproError, ValueError):
    """A trajectory is structurally invalid (shape, dtype, content)."""


class EmptyTrajectoryError(TrajectoryError):
    """An operation required a non-empty trajectory but received none."""


class TimestampOrderError(TrajectoryError):
    """Timestamps are not strictly increasing."""


class CompressionError(ReproError):
    """A compression algorithm could not run on the given input."""


class ThresholdError(CompressionError, ValueError):
    """A threshold parameter is out of its valid domain."""


class CompressorSpecError(ReproError, ValueError):
    """A compressor spec string could not be parsed."""


class UnknownCompressorError(CompressorSpecError, KeyError):
    """A compressor name is not in the registry.

    Subclasses :class:`KeyError` because the failed operation is a
    registry lookup (and historical callers catch ``KeyError``); the
    message always lists the registered names.
    """

    def __str__(self) -> str:
        # KeyError.__str__ would repr-quote the message; report it plain.
        return Exception.__str__(self)


class PipelineError(ReproError):
    """The batch pipeline could not complete a run."""


class CheckpointError(PipelineError):
    """A run checkpoint is unusable: mismatched manifest or corrupt journal."""


class StorageError(ReproError):
    """The trajectory store could not complete an operation."""


class ObjectNotFoundError(StorageError, KeyError):
    """The requested object id is not present in the store."""


class CodecError(StorageError):
    """Encoded trajectory bytes are malformed or unsupported."""


class CorruptRecordError(CodecError):
    """A stored record failed its checksum: bytes were altered after write."""


class StreamError(ReproError):
    """A point stream violated its protocol (e.g. time went backwards)."""


class ServeError(ReproError):
    """The ingestion service refused a request or the wire protocol broke.

    Carries a machine-readable ``code`` (e.g. ``"rejected"``,
    ``"unknown-session"``, ``"bad-spec"``) that travels verbatim in the
    service's error responses, so clients can branch on the kind of
    failure without parsing English. ``retained`` carries the fixes a
    partially-applied batch append decided before the error, so a
    mid-batch failure never silently drops decisions the client is owed.
    """

    def __init__(
        self, message: str, code: str = "internal", *, retained: list | None = None
    ) -> None:
        super().__init__(message)
        self.code = code
        self.retained: list = retained if retained is not None else []


class WalError(ServeError):
    """The serve tier's write-ahead log could not commit durably.

    Raised when a WAL write or fsync fails. Durability of everything
    staged since the last successful commit is unknown at that point, so
    the failure is *sticky*: the writer refuses further work until the
    process restarts and recovery replays the surviving segments
    (mirroring the fsync-failure stance of production databases). The
    wire code is ``"wal-failure"``.
    """

    def __init__(self, message: str, code: str = "wal-failure") -> None:
        super().__init__(message, code=code)


class DataGenError(ReproError):
    """The synthetic workload generator received unsatisfiable parameters."""
