"""Streaming ingestion: live fixes -> online compression -> the store.

Glues the two online halves of the system together: a
:class:`StreamIngestor` accepts interleaved fixes from many objects,
pushes each through a per-object online compressor (any
:class:`~repro.streaming.base.OnlineCompressor`;
:class:`~repro.streaming.online.StreamingOPW` by default), buffers the
retained fixes, and flushes finished objects into a
:class:`~repro.storage.store.TrajectoryStore` — the full
tracker-to-database pipeline, with only the open windows and retained
points ever held in memory.
"""

from __future__ import annotations

import functools
from typing import Callable

from repro.exceptions import StorageError, StreamError
from repro.pipeline.executor import FailurePolicy, ItemFailure, execute
from repro.obs import Registry
from repro.storage.store import StoredRecord, TrajectoryStore
from repro.streaming.base import OnlineCompressor, partition_events
from repro.streaming.online import StreamingOPW
from repro.trajectory.builder import TrajectoryBuilder
from repro.types import Fix

__all__ = ["StreamIngestor"]


def _default_compressor_factory() -> StreamingOPW:
    return StreamingOPW(epsilon=50.0, criterion="synchronized")


class StreamIngestor:
    """Per-object online compression in front of a trajectory store.

    Args:
        store: destination store. Its own batch ``compressor`` is
            bypassed — points arriving here are already compressed.
        compressor_factory: builds a fresh online compressor per object;
            defaults to OPW-TR at 50 m.
        on_out_of_order: what to do with a fix whose timestamp is not
            strictly after the object's last accepted fix (trackers do
            deliver duplicates and reordered packets): ``"raise"``
            (default) raises :class:`~repro.exceptions.StreamError`;
            ``"skip"`` silently drops the fix, counting it in
            :meth:`dropped_count`. Either way the fix never corrupts the
            trajectory being built.

    Usage::

        ingestor = StreamIngestor(store)
        for object_id, fix in live_feed:
            ingestor.push(object_id, fix)
        ingestor.finish_all()
    """

    def __init__(
        self,
        store: TrajectoryStore,
        compressor_factory: Callable[[], OnlineCompressor] | None = None,
        on_out_of_order: str = "raise",
    ) -> None:
        if on_out_of_order not in ("raise", "skip"):
            raise StreamError(
                f"on_out_of_order must be 'raise' or 'skip', "
                f"got {on_out_of_order!r}"
            )
        self.store = store
        self._factory = compressor_factory or _default_compressor_factory
        self.on_out_of_order = on_out_of_order
        self._compressors: dict[str, OnlineCompressor] = {}
        self._builders: dict[str, TrajectoryBuilder] = {}
        self._raw_counts: dict[str, int] = {}
        self._last_times: dict[str, float] = {}
        self._dropped: dict[str, int] = {}
        #: Structured failures from the most recent :meth:`finish_all`.
        self.last_failures: list[ItemFailure] = []

    @property
    def active_objects(self) -> list[str]:
        """Ids currently being ingested (not yet flushed), sorted."""
        return sorted(self._builders)

    def raw_count(self, object_id: str) -> int:
        """Fixes received so far for one object (including discarded)."""
        return self._raw_counts.get(object_id, 0)

    @staticmethod
    def _held_fixes(compressor: OnlineCompressor | None) -> int:
        """Fixes a compressor holds between pushes (window / candidates).

        The opening-window family reports its open window; other online
        compressors are measured through the protocol's ``state_size``
        (three floats per held fix).
        """
        if compressor is None:
            return 0
        window = getattr(compressor, "window_size", None)
        return window if window is not None else compressor.state_size // 3

    def window_size(self, object_id: str) -> int:
        """Open-window occupancy of one object's online compressor.

        This is the device-side memory the compression itself needs; the
        retained points counted by :meth:`buffered_points` accumulate on
        the receiving side.
        """
        return self._held_fixes(self._compressors.get(object_id))

    def buffered_points(self, object_id: str) -> int:
        """Retained points waiting to be flushed for one object."""
        builder = self._builders.get(object_id)
        buffered = len(builder) if builder else 0
        return buffered + self._held_fixes(self._compressors.get(object_id))

    def dropped_count(self, object_id: str) -> int:
        """Out-of-order fixes dropped so far for one active object."""
        return self._dropped.get(object_id, 0)

    def push(self, object_id: str, fix: Fix) -> int:
        """Feed one fix; returns how many points were retained by it.

        Raises:
            StreamError: the fix's timestamp is not strictly after the
                object's last accepted fix (under the default
                ``on_out_of_order="raise"``; ``"skip"`` drops it
                instead).
        """
        if not object_id:
            raise StorageError("fixes need a non-empty object id")
        last = self._last_times.get(object_id)
        if last is not None and fix.t <= last:
            if self.on_out_of_order == "skip":
                self._dropped[object_id] = self._dropped.get(object_id, 0) + 1
                return 0
            raise StreamError(
                f"out-of-order fix for {object_id!r}: t={fix.t} is not after "
                f"the last accepted t={last} (use on_out_of_order='skip' to "
                f"drop such fixes)"
            )
        compressor = self._compressors.get(object_id)
        if compressor is None:
            compressor = self._factory()
            self._compressors[object_id] = compressor
            self._builders[object_id] = TrajectoryBuilder(object_id)
            self._raw_counts[object_id] = 0
        self._raw_counts[object_id] += 1
        self._last_times[object_id] = float(fix.t)
        kept, evicted = partition_events(compressor.push(fix))
        builder = self._builders[object_id]
        for point in kept:
            builder.append_fix(point)
        for point in evicted:
            builder.remove_time(point.t)
        return len(kept)

    def finish(self, object_id: str, replace: bool = False) -> StoredRecord:
        """Close one object's stream and flush it to the store.

        Raises:
            StorageError: unknown object id, or no retained points.
        """
        compressor = self._compressors.pop(object_id, None)
        builder = self._builders.pop(object_id, None)
        raw_count = self._raw_counts.pop(object_id, 0)
        self._last_times.pop(object_id, None)
        self._dropped.pop(object_id, None)
        if compressor is None or builder is None:
            raise StorageError(f"no active stream for object {object_id!r}")
        tail, evicted = partition_events(compressor.finish())
        for point in tail:
            builder.append_fix(point)
        for point in evicted:
            builder.remove_time(point.t)
        trajectory = builder.build()
        # Points were already chosen online; insert uncompressed but have
        # the store account the raw stream size so its stats stay honest.
        return self.store.insert(
            trajectory,
            object_id=object_id,
            compressor=None,
            replace=replace,
            raw_point_count=raw_count,
            sync_error_bound_m=compressor.sync_error_bound(),
        )

    def finish_all(
        self,
        replace: bool = False,
        *,
        on_error: "FailurePolicy | str" = "raise",
        metrics: Registry | None = None,
    ) -> list[StoredRecord]:
        """Flush every active object, in id order.

        Runs through the batch pipeline's fault-isolation layer: under
        ``on_error="skip"`` (or ``"retry(n)"``) an object whose flush
        fails — e.g. an id already stored without ``replace`` — is
        recorded in :attr:`last_failures` as a structured
        :class:`~repro.pipeline.executor.ItemFailure` while the other
        objects still land in the store. The default ``"raise"`` keeps
        the original behaviour of propagating the first error.

        Args:
            replace: overwrite records whose object id already exists.
            on_error: pipeline failure policy.
            metrics: optional registry to count flushed objects/points
                and failures into.

        Returns:
            The stored records of the successfully flushed objects.
        """
        items = [(object_id, object_id) for object_id in self.active_objects]
        outcomes = execute(
            functools.partial(self.finish, replace=replace),
            items,
            policy=FailurePolicy.parse(on_error),
        )
        self.last_failures = [o for o in outcomes if not o.ok]
        records = [o.value for o in outcomes if o.ok]
        if metrics is not None:
            metrics.counter("objects_flushed").inc(len(records))
            metrics.counter("objects_failed").inc(len(self.last_failures))
            for record in records:
                metrics.counter("points_flushed").inc(record.n_stored_points)
        return records
