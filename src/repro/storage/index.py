"""Grid spatial index over trajectory extents.

A uniform-grid inverted index: each stored trajectory registers the grid
cells its segments pass through; a rectangle query unions the cells it
overlaps and returns the candidate object ids. The store then verifies
candidates exactly against decoded geometry (grid hits are a superset).

A uniform grid beats a tree here because trajectory workloads are
insert-heavy, queries are rectangle-shaped, and city-scale extents at a
few-hundred-metre cell size stay small.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.geometry.bbox import BBox

__all__ = ["GridIndex"]

#: Cell-cover padding in metres. The exact intersection predicates that
#: candidates are verified against do rounded float arithmetic, so a
#: segment whose endpoint sits within rounding distance of a cell
#: boundary can "touch" the neighbouring cell. Padding the insert-time
#: cover by more than that rounding error keeps the index a strict
#: superset of the predicate's answer. 1e-6 m dwarfs double-precision
#: error at any realistic coordinate magnitude (eps * 1e9 m ≈ 2e-7).
_COVER_MARGIN_M = 1e-6


class GridIndex:
    """Uniform-grid inverted index from cells to object ids."""

    def __init__(self, cell_size_m: float = 500.0) -> None:
        if cell_size_m <= 0:
            raise ValueError(f"cell size must be positive, got {cell_size_m}")
        self.cell_size_m = float(cell_size_m)
        self._cells: dict[tuple[int, int], set[str]] = defaultdict(set)
        self._object_cells: dict[str, set[tuple[int, int]]] = {}

    def __len__(self) -> int:
        return len(self._object_cells)

    def __contains__(self, object_id: str) -> bool:
        return object_id in self._object_cells

    def _cell_of(self, x: float, y: float) -> tuple[int, int]:
        return (int(np.floor(x / self.cell_size_m)), int(np.floor(y / self.cell_size_m)))

    def _cells_of_segment(
        self, p0: np.ndarray, p1: np.ndarray
    ) -> set[tuple[int, int]]:
        """Conservative cell cover of one segment (its bbox's cells).

        For segments shorter than a few cells — the common case at GPS
        sampling rates — the bbox cover adds at most a constant factor
        over an exact supercover walk.
        """
        min_x, max_x = sorted((float(p0[0]), float(p1[0])))
        min_y, max_y = sorted((float(p0[1]), float(p1[1])))
        c0x, c0y = self._cell_of(min_x - _COVER_MARGIN_M, min_y - _COVER_MARGIN_M)
        c1x, c1y = self._cell_of(max_x + _COVER_MARGIN_M, max_y + _COVER_MARGIN_M)
        return {
            (cx, cy)
            for cx in range(c0x, c1x + 1)
            for cy in range(c0y, c1y + 1)
        }

    def insert(self, object_id: str, xy: np.ndarray) -> None:
        """Register a trajectory's sample polyline under ``object_id``.

        Re-inserting an id replaces its previous registration.
        """
        if object_id in self._object_cells:
            self.remove(object_id)
        xy = np.asarray(xy, dtype=float)
        cells: set[tuple[int, int]] = set()
        if xy.shape[0] == 1:
            cells |= self._cells_of_segment(xy[0], xy[0])
        else:
            for i in range(xy.shape[0] - 1):
                cells |= self._cells_of_segment(xy[i], xy[i + 1])
        for cell in cells:
            self._cells[cell].add(object_id)
        self._object_cells[object_id] = cells

    def remove(self, object_id: str) -> None:
        """Unregister an id; unknown ids are ignored."""
        cells = self._object_cells.pop(object_id, set())
        for cell in cells:
            bucket = self._cells.get(cell)
            if bucket is not None:
                bucket.discard(object_id)
                if not bucket:
                    del self._cells[cell]

    def candidates(self, box: BBox) -> set[str]:
        """Object ids possibly intersecting ``box`` (superset of truth)."""
        c0x, c0y = self._cell_of(box.min_x, box.min_y)
        c1x, c1y = self._cell_of(box.max_x, box.max_y)
        out: set[str] = set()
        for cx in range(c0x, c1x + 1):
            for cy in range(c0y, c1y + 1):
                bucket = self._cells.get((cx, cy))
                if bucket:
                    out |= bucket
        return out

    @property
    def n_cells(self) -> int:
        """Number of occupied grid cells."""
        return len(self._cells)
