"""Compressed moving-object storage: codec, spatial index, store.

The applied payoff of the paper's algorithms: a
:class:`TrajectoryStore` that point-compresses trajectories at ingest,
keeps them as delta/varint blobs, and serves reconstruction,
position-at-time, time-window and rectangle queries with storage
accounting.
"""

from repro.storage.codec import (
    decode_trajectory,
    decode_varint,
    encode_trajectory,
    encode_varint,
    raw_size_bytes,
    unzigzag,
    zigzag,
)
from repro.storage.index import GridIndex
from repro.storage.interval_index import IntervalIndex
from repro.storage.ingest import StreamIngestor
from repro.storage.store import StoreStats, StoredRecord, TrajectoryStore

__all__ = [
    "GridIndex",
    "IntervalIndex",
    "StoreStats",
    "StreamIngestor",
    "StoredRecord",
    "TrajectoryStore",
    "decode_trajectory",
    "decode_varint",
    "encode_trajectory",
    "encode_varint",
    "raw_size_bytes",
    "unzigzag",
    "zigzag",
]
