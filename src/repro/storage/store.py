"""A compressing trajectory store.

The database piece the paper's introduction asks for: ingest moving-object
trajectories, compress them on the way in (any
:class:`~repro.core.base.Compressor`), keep them as compact encoded blobs
(:mod:`repro.storage.codec`), and answer the queries a moving-object
application needs:

* reconstruction (:meth:`TrajectoryStore.get`) and position-at-time
  (:meth:`TrajectoryStore.position_at`) via the piecewise-linear model,
* time-window and spatial-rectangle queries
  (:meth:`TrajectoryStore.query_time_window`,
  :meth:`TrajectoryStore.query_bbox`), the latter backed by a grid index
  with exact verification,
* storage accounting (:meth:`TrajectoryStore.stats`) that quantifies the
  paper's motivating arithmetic,
* single-file persistence (:meth:`TrajectoryStore.save` /
  :meth:`TrajectoryStore.load`).

Durability: :meth:`~TrajectoryStore.save` writes atomically (tmp file +
fsync + rename), every record carries a CRC-32 over its catalog header
and blob (file version 3), and each blob additionally carries the
codec's own checksum — so a torn write or flipped bit surfaces as a
:class:`~repro.exceptions.CorruptRecordError` at load, never as silently
wrong coordinates. ``load(path, verify="skip")`` quarantines corrupt
records in :attr:`TrajectoryStore.load_failures` and keeps the healthy
ones.
"""

from __future__ import annotations

import math
import struct
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.base import Compressor
from repro.exceptions import (
    CorruptRecordError,
    ObjectNotFoundError,
    ReproError,
    StorageError,
)
from repro.geometry.bbox import BBox
from repro.geometry.clip import segment_intersects_bbox
from repro.io_util import crc32, write_atomic
from repro.obs import Registry, get_registry, span
from repro.query.summaries import (
    ObjectSummary,
    SummaryConfig,
    build_summary,
    encode_footer,
    parse_footer,
)
from repro.storage.codec import decode_trajectory, encode_trajectory, raw_size_bytes
from repro.storage.index import GridIndex
from repro.storage.interval_index import IntervalIndex
from repro.trajectory.trajectory import Trajectory

__all__ = [
    "StoredRecord",
    "StoreStats",
    "TrajectoryStore",
    "effective_query_box",
]

_FILE_MAGIC = b"RSTO"
#: Current store-file version: 4 = v3 + partition-summary footer.
_FILE_VERSION = 4
#: Oldest store-file version still loaded (2 = no record checksums,
#: 3 = per-record CRC-32 without a summary footer).
_MIN_FILE_VERSION = 2


@dataclass(frozen=True, slots=True)
class StoredRecord:
    """Catalog entry for one stored trajectory.

    ``sync_error_bound_m`` is the known margin of error of the stored
    geometry against the raw movement (the paper's third objective:
    "known, small margins of error"): the ingest compressor's guaranteed
    synchronized bound plus the codec's quantization slack, or ``None``
    when the compressor gave no guarantee.
    """

    object_id: str
    blob: bytes
    n_raw_points: int
    n_stored_points: int
    start_time: float
    end_time: float
    bbox: BBox
    sync_error_bound_m: float | None = None

    @property
    def stored_bytes(self) -> int:
        return len(self.blob)

    @property
    def raw_bytes(self) -> int:
        """Bytes the *uncompressed* trajectory would need naively."""
        return raw_size_bytes(self.n_raw_points)


@dataclass(frozen=True, slots=True)
class StoreStats:
    """Aggregate storage accounting over the whole store."""

    n_objects: int
    n_raw_points: int
    n_stored_points: int
    raw_bytes: int
    stored_bytes: int

    @property
    def point_compression_percent(self) -> float:
        """Percent of points removed by the compressors at ingest."""
        if self.n_raw_points == 0:
            return 0.0
        return 100.0 * (1.0 - self.n_stored_points / self.n_raw_points)

    @property
    def byte_compression_ratio(self) -> float:
        """Raw bytes over stored bytes (points + codec combined)."""
        if self.stored_bytes == 0:
            return float("inf") if self.raw_bytes else 1.0
        return self.raw_bytes / self.stored_bytes


class TrajectoryStore:
    """In-memory (optionally file-persisted) compressed trajectory store.

    Args:
        compressor: applied to every ingested trajectory unless an
            ``insert`` call overrides it; ``None`` stores raw points.
        cell_size_m: grid-index cell size.
        time_resolution_s / coord_resolution_m: codec quanta.
        cache_size: number of decoded trajectories kept in the LRU cache.
        summary_partition_points / summary_grid_m / summary_time_grid_s:
            partitioning and outward-quantization parameters of the
            per-object query summaries (see
            :mod:`repro.query.summaries`); loading a version-4 file
            adopts the file's parameters.
        metrics: registry for save/load instrumentation (bytes, CRC
            failures, durations); falls back to the ambient
            :func:`repro.obs.get_registry` when omitted.
    """

    def __init__(
        self,
        compressor: Compressor | None = None,
        cell_size_m: float = 500.0,
        time_resolution_s: float = 1e-3,
        coord_resolution_m: float = 0.01,
        cache_size: int = 32,
        summary_partition_points: int = 64,
        summary_grid_m: float = 25.0,
        summary_time_grid_s: float = 1.0,
        metrics: Registry | None = None,
    ) -> None:
        if cache_size < 0:
            raise ValueError(f"cache_size must be non-negative, got {cache_size}")
        self.compressor = compressor
        self.metrics = metrics
        self.time_resolution_s = float(time_resolution_s)
        self.coord_resolution_m = float(coord_resolution_m)
        self.summary_config = SummaryConfig(
            int(summary_partition_points),
            float(summary_grid_m),
            float(summary_time_grid_s),
        )
        self._records: dict[str, StoredRecord] = {}
        self._summaries: dict[str, ObjectSummary] = {}
        self._index = GridIndex(cell_size_m)
        self._time_index = IntervalIndex()
        self._cache: OrderedDict[str, Trajectory] = OrderedDict()
        self._cache_size = cache_size
        #: Human-readable reasons for records dropped by
        #: ``load(..., verify="skip")``; empty for clean loads.
        self.load_failures: list[str] = []

    def _registry(self) -> Registry:
        """The registry save/load sample into: explicit, else ambient."""
        return self.metrics if self.metrics is not None else get_registry()

    # ------------------------------------------------------------------ #
    # Ingest
    # ------------------------------------------------------------------ #

    def insert(
        self,
        traj: Trajectory,
        object_id: str | None = None,
        compressor: Compressor | None = None,
        replace: bool = False,
        raw_point_count: int | None = None,
        sync_error_bound_m: float | None | str = "auto",
    ) -> StoredRecord:
        """Compress, encode and index one trajectory.

        Args:
            traj: the raw trajectory.
            object_id: storage key; defaults to ``traj.object_id``.
            compressor: overrides the store default for this insert.
            replace: allow overwriting an existing id.
            raw_point_count: how many raw fixes this trajectory stands
                for, when the caller compressed upstream (the streaming
                ingestor does); defaults to ``len(traj)``.
            sync_error_bound_m: the upstream compression's guaranteed
                synchronized bound, when the caller compressed before
                inserting. ``"auto"`` (default) derives it from the
                applied compressor (0 when storing raw); ``None`` records
                "no known margin". Codec quantization slack is added to
                any numeric value.

        Raises:
            StorageError: missing id, or duplicate id without ``replace``.
        """
        key = object_id or traj.object_id
        if not key:
            raise StorageError("trajectory has no object id and none was given")
        if key in self._records and not replace:
            raise StorageError(f"object id {key!r} already stored (use replace=True)")
        chosen = compressor if compressor is not None else self.compressor
        stored = chosen.compress(traj).compressed if chosen is not None else traj
        stored = stored.with_object_id(key)
        if sync_error_bound_m == "auto":
            upstream_bound = chosen.sync_error_bound() if chosen is not None else 0.0
        else:
            upstream_bound = sync_error_bound_m  # type: ignore[assignment]
        bound = self._total_error_bound(upstream_bound)
        blob = encode_trajectory(
            stored, self.time_resolution_s, self.coord_resolution_m
        )
        if raw_point_count is not None and raw_point_count < len(stored):
            raise StorageError(
                f"raw_point_count {raw_point_count} below stored size {len(stored)}"
            )
        record = StoredRecord(
            object_id=key,
            blob=blob,
            n_raw_points=raw_point_count if raw_point_count is not None else len(traj),
            n_stored_points=len(stored),
            start_time=stored.start_time,
            end_time=stored.end_time,
            bbox=stored.bbox(),
            sync_error_bound_m=bound,
        )
        self._records[key] = record
        self._summaries[key] = build_summary(key, blob, self.summary_config)
        self._index.insert(key, stored.xy)
        self._time_index.insert(key, record.start_time, record.end_time)
        self._cache.pop(key, None)
        return record

    def _total_error_bound(self, compressor_bound: float | None) -> float | None:
        """Compression guarantee plus codec quantization slack."""
        if compressor_bound is None:
            return None
        codec_slack = 0.5 * self.coord_resolution_m * float(np.sqrt(2.0))
        return compressor_bound + codec_slack

    def append(
        self,
        object_id: str,
        continuation: Trajectory,
        compressor: Compressor | None = None,
    ) -> StoredRecord:
        """Extend a stored trajectory with a later continuation.

        Real objects report across sessions (a vehicle's morning and
        evening trips, a tag's daily uplinks); ``append`` decodes the
        stored prefix, compresses only the *new* points, concatenates and
        re-encodes. The stored prefix's already-selected points are left
        untouched.

        The recorded raw count grows by ``len(continuation)``; the error
        margin is widened to the larger of the old margin and the new
        compressor's (an unknown margin on either side stays unknown).

        Raises:
            ObjectNotFoundError: unknown id.
            StorageError: continuation overlaps the stored interval.
        """
        record = self.record(object_id)
        if continuation.start_time <= record.end_time:
            raise StorageError(
                f"continuation starts at {continuation.start_time} but "
                f"{object_id!r} is stored through {record.end_time}"
            )
        chosen = compressor if compressor is not None else self.compressor
        new_part = (
            chosen.compress(continuation).compressed
            if chosen is not None
            else continuation
        )
        prefix = self.get(object_id)
        combined = Trajectory(
            np.concatenate([prefix.t, new_part.t]),
            np.concatenate([prefix.xy, new_part.xy]),
            object_id,
            _validated=True,
        )
        old_bound = record.sync_error_bound_m
        new_bound = self._total_error_bound(
            chosen.sync_error_bound() if chosen is not None else 0.0
        )
        if old_bound is None or new_bound is None:
            merged_bound: float | None = None
        else:
            merged_bound = max(old_bound, new_bound)
        blob = encode_trajectory(
            combined, self.time_resolution_s, self.coord_resolution_m
        )
        updated = StoredRecord(
            object_id=object_id,
            blob=blob,
            n_raw_points=record.n_raw_points + len(continuation),
            n_stored_points=len(combined),
            start_time=combined.start_time,
            end_time=combined.end_time,
            bbox=combined.bbox(),
            sync_error_bound_m=merged_bound,
        )
        self._records[object_id] = updated
        self._summaries[object_id] = build_summary(
            object_id, blob, self.summary_config
        )
        self._index.insert(object_id, combined.xy)
        self._time_index.insert(object_id, updated.start_time, updated.end_time)
        self._cache.pop(object_id, None)
        return updated

    def adopt_record(self, record: StoredRecord, *, replace: bool = False) -> None:
        """Take over an already-encoded record from another store.

        The sharded serve tier's merge primitive: the record's blob was
        produced by a compatible codec (workers and router share one
        configuration), so re-encoding would be pure waste — the blob is
        adopted verbatim and only the indexes are rebuilt from it.

        Raises:
            StorageError: duplicate id without ``replace``.
            CorruptRecordError: the blob fails its codec checksum.
        """
        key = record.object_id
        if key in self._records and not replace:
            raise StorageError(f"object id {key!r} already stored (use replace=True)")
        traj = decode_trajectory(record.blob)
        self._records[key] = record
        self._summaries[key] = build_summary(key, record.blob, self.summary_config)
        self._index.insert(key, traj.xy)
        self._time_index.insert(key, record.start_time, record.end_time)
        self._cache.pop(key, None)

    def merge_from(self, other: "TrajectoryStore", *, replace: bool = False) -> int:
        """Adopt every record of ``other`` into this store.

        Used when a drained shard fleet folds its per-worker partition
        files into one store file. Blobs move without re-encoding.

        Returns:
            How many records were adopted.

        Raises:
            StorageError: an id exists in both stores and ``replace`` is
                false (ids already adopted stay adopted).
        """
        for object_id in other.object_ids():
            self.adopt_record(other.record(object_id), replace=replace)
        return len(other)

    def remove(self, object_id: str) -> None:
        """Delete a stored trajectory.

        Raises:
            ObjectNotFoundError: for unknown ids.
        """
        if object_id not in self._records:
            raise ObjectNotFoundError(object_id)
        del self._records[object_id]
        self._summaries.pop(object_id, None)
        self._index.remove(object_id)
        self._time_index.remove(object_id)
        self._cache.pop(object_id, None)

    # ------------------------------------------------------------------ #
    # Retrieval
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, object_id: str) -> bool:
        return object_id in self._records

    def object_ids(self) -> list[str]:
        """All stored ids, sorted."""
        return sorted(self._records)

    def record(self, object_id: str) -> StoredRecord:
        """Catalog entry (no decoding).

        Raises:
            ObjectNotFoundError: for unknown ids.
        """
        try:
            return self._records[object_id]
        except KeyError:
            raise ObjectNotFoundError(object_id) from None

    def get(self, object_id: str) -> Trajectory:
        """Decode the stored (compressed) trajectory."""
        cached = self._cache.get(object_id)
        if cached is not None:
            self._cache.move_to_end(object_id)
            return cached
        traj = decode_trajectory(self.record(object_id).blob)
        if self._cache_size:
            self._cache[object_id] = traj
            while len(self._cache) > self._cache_size:
                self._cache.popitem(last=False)
        return traj

    def position_at(self, object_id: str, when: float) -> np.ndarray:
        """Interpolated position of an object at time ``when``.

        Raises:
            ObjectNotFoundError: unknown id.
            ValueError: time outside the stored interval.
        """
        return self.get(object_id).position_at(when)

    def summary(self, object_id: str) -> ObjectSummary:
        """Partition summary of a stored record (see :mod:`repro.query`).

        Summaries are built incrementally at insert/adopt time and
        persisted in the version-4 footer; records loaded from older
        files (or whose footer was quarantined) are summarized lazily
        here, one linear blob scan per record.

        Raises:
            ObjectNotFoundError: unknown id.
        """
        summary = self._summaries.get(object_id)
        if summary is None:
            summary = build_summary(
                object_id, self.record(object_id).blob, self.summary_config
            )
            self._summaries[object_id] = summary
        return summary

    def spatial_candidates(self, box: BBox) -> set[str]:
        """Grid-index candidates for ``box`` (superset of the truth)."""
        return self._index.candidates(box)

    def max_sync_error_bound(self) -> float:
        """The largest recorded error margin (0.0 when none are known)."""
        return max(
            (rec.sync_error_bound_m or 0.0 for rec in self._records.values()),
            default=0.0,
        )

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def query_time_window(self, t0: float, t1: float) -> list[str]:
        """Ids whose stored time interval overlaps ``[t0, t1]``.

        Served by the endpoint interval index in O(log n + answers).
        """
        return self._time_index.overlapping(t0, t1)

    def query_bbox(
        self,
        box: BBox,
        t0: float | None = None,
        t1: float | None = None,
        mode: str = "stored",
    ) -> list[str]:
        """Ids whose trajectory passes through ``box``.

        Compression makes stored geometry approximate; the recorded error
        margin (see :class:`StoredRecord`) turns that into three honest
        answer semantics:

        * ``"stored"`` — exact on the stored geometry (default);
        * ``"possibly"`` — every object whose *true* movement may have
          entered the box: the box is expanded by each object's recorded
          margin (objects without a margin fall back to the stored test,
          since their deviation is unknown rather than unbounded);
        * ``"definitely"`` — only objects whose true movement must have
          entered the box: the box is shrunk by the margin (objects
          without a margin can never be definite).

        Args:
            box: query rectangle.
            t0, t1: optional time window; both or neither.
            mode: ``"stored"``, ``"possibly"`` or ``"definitely"``.
        """
        if (t0 is None) != (t1 is None):
            raise ValueError("provide both t0 and t1, or neither")
        if mode not in ("stored", "possibly", "definitely"):
            raise ValueError(f"unknown query mode {mode!r}")
        # The candidate sweep must see the widest relevant box.
        max_bound = self.max_sync_error_bound()
        sweep_box = box.expanded(max_bound) if mode == "possibly" else box
        out = []
        for key in self._index.candidates(sweep_box):
            # Index and catalog are kept in sync by every mutation path
            # (insert/append/adopt_record/remove) — the regression suite
            # in tests/storage/test_index_consistency.py proves it, so a
            # missing key here is a real invariant break and raises.
            rec = self._records[key]
            if t0 is not None and (rec.start_time > t1 or rec.end_time < t0):
                continue
            effective = self._effective_box(box, rec, mode)
            if effective is None or not rec.bbox.intersects(effective):
                continue
            traj = self.get(key)
            if t0 is not None:
                lo = max(t0, traj.start_time)
                hi = min(t1, traj.end_time)
                try:
                    traj = traj.slice_time(lo, hi)
                except Exception:
                    continue
            if self._passes_through(traj, effective):
                out.append(key)
        return sorted(out)

    @staticmethod
    def _effective_box(box: BBox, rec: StoredRecord, mode: str) -> BBox | None:
        """The box to test stored geometry against, per answer semantics."""
        return effective_query_box(box, rec, mode)

    def nearest(
        self, x: float, y: float, when: float, k: int = 1
    ) -> list[tuple[str, float]]:
        """The ``k`` objects nearest to ``(x, y)`` at time ``when``.

        Positions are interpolated on the stored (compressed)
        trajectories; objects whose stored interval does not cover
        ``when`` are not candidates.

        Returns:
            Up to ``k`` pairs ``(object_id, distance_m)``, nearest first;
            ties broken by object id.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        target = np.array([float(x), float(y)])
        ranked: list[tuple[float, str]] = []
        for key in self.query_time_window(when, when):
            position = self.get(key).position_at(when)
            ranked.append((float(np.hypot(*(position - target))), key))
        ranked.sort()
        return [(key, distance) for distance, key in ranked[:k]]

    @staticmethod
    def _passes_through(traj: Trajectory, box: BBox) -> bool:
        if len(traj) == 1:
            return box.contains_point(float(traj.x[0]), float(traj.y[0]))
        for i in range(len(traj) - 1):
            if segment_intersects_bbox(traj.xy[i], traj.xy[i + 1], box):
                return True
        return False

    # ------------------------------------------------------------------ #
    # Accounting & persistence
    # ------------------------------------------------------------------ #

    def stats(self) -> StoreStats:
        """Aggregate storage accounting."""
        records = self._records.values()
        return StoreStats(
            n_objects=len(self._records),
            n_raw_points=sum(rec.n_raw_points for rec in records),
            n_stored_points=sum(rec.n_stored_points for rec in records),
            raw_bytes=sum(rec.raw_bytes for rec in records),
            stored_bytes=sum(rec.stored_bytes for rec in records),
        )

    def save(self, path: str | Path, *, durable: bool = True) -> None:
        """Persist the store to one file (records only; config implied).

        The file is written atomically (temporary sibling + fsync +
        rename): a crash mid-save leaves either the previous file or the
        complete new one, never a torn mixture. Each record is followed
        by a CRC-32 over its catalog header and blob, so later bit
        corruption is detected at :meth:`load` time.

        Args:
            path: destination file.
            durable: fsync before the rename (default); ``False`` keeps
                atomicity but skips the flushes.
        """
        registry = self._registry()
        with span("store.save", records=len(self._records)), \
                registry.timer("store.save_s").time():
            out = bytearray()
            out += _FILE_MAGIC
            out += struct.pack("<BI", _FILE_VERSION, len(self._records))
            for key in sorted(self._records):
                rec = self._records[key]
                bound = (
                    rec.sync_error_bound_m
                    if rec.sync_error_bound_m is not None
                    else float("nan")
                )
                framed = struct.pack("<IdI", rec.n_raw_points, bound, len(rec.blob))
                framed += rec.blob
                out += framed
                out += struct.pack("<I", crc32(framed))
            # Version-4 footer: the query summaries, so a reloaded store
            # answers pruned queries without rescanning any blob. Records
            # that arrived without a summary (legacy-file loads) are
            # summarized here.
            out += encode_footer(
                {key: self.summary(key) for key in self._records},
                self.summary_config,
            )
            write_atomic(path, bytes(out), durable=durable)
        registry.counter("store_saves").inc()
        registry.counter("store_saved_bytes").inc(len(out))

    @classmethod
    def load(
        cls,
        path: str | Path,
        *,
        verify: str = "raise",
        **store_kwargs: object,
    ) -> "TrajectoryStore":
        """Load a store written by :meth:`save`.

        Args:
            path: a version-2 (legacy, no record checksums) or version-3
                store file.
            verify: what to do with a record whose checksum or blob fails
                verification: ``"raise"`` (default) aborts the load;
                ``"skip"`` drops the record, records the reason in
                :attr:`load_failures`, and keeps loading. File-level
                framing damage (truncation mid-record) always stops the
                load at that point — under ``"skip"`` the remainder is
                recorded as one failure, under ``"raise"`` it raises.
            **store_kwargs: forwarded to the constructor.

        Raises:
            CorruptRecordError: a record failed its checksum
                (``verify="raise"`` only).
            StorageError: on malformed files.
        """
        if verify not in ("raise", "skip"):
            raise ValueError(f"verify must be 'raise' or 'skip', got {verify!r}")
        path = Path(path)
        started = time.perf_counter()
        data = path.read_bytes()
        if len(data) < 9 or data[:4] != _FILE_MAGIC:
            raise StorageError(f"{path}: not a repro store file")
        version, count = struct.unpack_from("<BI", data, 4)
        if not _MIN_FILE_VERSION <= version <= _FILE_VERSION:
            raise StorageError(f"{path}: unsupported store version {version}")
        store = cls(**store_kwargs)  # type: ignore[arg-type]
        registry = store._registry()
        record_size = 16 + (4 if version >= 3 else 0)
        offset = 9
        truncated = None
        for index in range(count):
            if offset + 16 > len(data):
                truncated = f"{path}: truncated record header (record {index})"
                break
            n_raw, bound_raw, blob_len = struct.unpack_from("<IdI", data, offset)
            if offset + record_size + blob_len > len(data):
                truncated = f"{path}: truncated record blob (record {index})"
                break
            framed = data[offset : offset + 16 + blob_len]
            blob = framed[16:]
            offset += 16 + blob_len
            try:
                if version >= 3:
                    (stored_crc,) = struct.unpack_from("<I", data, offset)
                    offset += 4
                    actual_crc = crc32(framed)
                    if stored_crc != actual_crc:
                        raise CorruptRecordError(
                            f"{path}: record {index} checksum mismatch "
                            f"(stored {stored_crc:#010x}, computed "
                            f"{actual_crc:#010x}) — the file was altered "
                            f"after write"
                        )
                traj = decode_trajectory(blob)
                if not traj.object_id:
                    raise StorageError(f"{path}: stored blob lacks an object id")
            except ReproError as exc:
                if isinstance(exc, CorruptRecordError):
                    registry.counter("store_crc_failures").inc()
                if verify == "skip":
                    registry.counter("store_load_record_failures").inc()
                    store.load_failures.append(
                        f"record {index}: {type(exc).__name__}: {exc}"
                    )
                    continue
                raise
            record = StoredRecord(
                object_id=traj.object_id,
                blob=blob,
                n_raw_points=n_raw,
                n_stored_points=len(traj),
                start_time=traj.start_time,
                end_time=traj.end_time,
                bbox=traj.bbox(),
                sync_error_bound_m=None if math.isnan(bound_raw) else float(bound_raw),
            )
            store._records[traj.object_id] = record
            store._index.insert(traj.object_id, traj.xy)
            store._time_index.insert(
                traj.object_id, record.start_time, record.end_time
            )
        if truncated is not None:
            if verify != "skip":
                raise StorageError(truncated)
            store.load_failures.append(truncated)
        else:
            if version >= 4 and offset < len(data):
                try:
                    config, summaries, offset = parse_footer(data, offset)
                except ReproError as exc:
                    if verify != "skip":
                        raise StorageError(
                            f"{path}: summary footer: {exc}"
                        ) from exc
                    # Quarantine the footer; summaries rebuild lazily.
                    registry.counter("store_summary_footer_failures").inc()
                    store.load_failures.append(
                        f"summary footer: {type(exc).__name__}: {exc}"
                    )
                    offset = len(data)
                else:
                    store.summary_config = config
                    store._summaries = {
                        key: value
                        for key, value in summaries.items()
                        if key in store._records
                    }
            if offset != len(data):
                raise StorageError(f"{path}: trailing bytes after records")
        registry.counter("store_loads").inc()
        registry.counter("store_loaded_bytes").inc(len(data))
        registry.timer("store.load_s").observe(time.perf_counter() - started)
        return store


def effective_query_box(box: BBox, rec: StoredRecord, mode: str) -> BBox | None:
    """The box to test a record's stored geometry against.

    Turns the recorded error margin into the three answer semantics of
    :meth:`TrajectoryStore.query_bbox` (``stored`` / ``possibly`` /
    ``definitely``); shared by the store and the query engine so both
    tiers answer identically.
    """
    if mode == "stored":
        return box
    bound = rec.sync_error_bound_m
    if mode == "possibly":
        # Unknown margin: fall back to the stored-geometry test.
        return box.expanded(bound if bound is not None else 0.0)
    # mode == "definitely"
    if bound is None:
        return None
    if box.width <= 2 * bound or box.height <= 2 * bound:
        return None  # the box cannot certify anything this coarse
    return BBox(
        box.min_x + bound, box.min_y + bound,
        box.max_x - bound, box.max_y - bound,
    )
