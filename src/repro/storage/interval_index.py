"""Interval index over stored trajectories' time extents.

``query_time_window`` is the store's hottest lookup (every
``nearest``-at-time call starts with one); a linear scan over the catalog
is O(#objects) per query. This index answers it in
O(log n + answer size) using two sorted endpoint arrays:

* objects whose interval overlaps ``[t0, t1]`` are exactly those with
  ``start <= t1`` **minus** those with ``end < t0``;
* both sides are prefix ranges of the arrays sorted by start and end
  respectively, found by bisection.

Mutations mark the index dirty; the sorted arrays are rebuilt lazily on
the next query (ingest-heavy workloads then pay sorting once per query
burst, not per insert).
"""

from __future__ import annotations

import bisect

__all__ = ["IntervalIndex"]


class IntervalIndex:
    """Lazy-rebuilt endpoint index of ``object_id -> [start, end]``."""

    def __init__(self) -> None:
        self._intervals: dict[str, tuple[float, float]] = {}
        self._dirty = True
        self._starts: list[float] = []
        self._ids_by_start: list[str] = []
        self._ends: list[float] = []
        self._ids_by_end: list[str] = []

    def __len__(self) -> int:
        return len(self._intervals)

    def __contains__(self, object_id: str) -> bool:
        return object_id in self._intervals

    def insert(self, object_id: str, start: float, end: float) -> None:
        """Register (or re-register) one object's time interval."""
        if end < start:
            raise ValueError(f"interval end {end} before start {start}")
        self._intervals[object_id] = (float(start), float(end))
        self._dirty = True

    def remove(self, object_id: str) -> None:
        """Unregister an id; unknown ids are ignored."""
        if self._intervals.pop(object_id, None) is not None:
            self._dirty = True

    def _rebuild(self) -> None:
        by_start = sorted(
            self._intervals.items(), key=lambda kv: (kv[1][0], kv[0])
        )
        by_end = sorted(self._intervals.items(), key=lambda kv: (kv[1][1], kv[0]))
        self._starts = [interval[0] for _, interval in by_start]
        self._ids_by_start = [object_id for object_id, _ in by_start]
        self._ends = [interval[1] for _, interval in by_end]
        self._ids_by_end = [object_id for object_id, _ in by_end]
        self._dirty = False

    def overlapping(self, t0: float, t1: float) -> list[str]:
        """Ids whose closed interval intersects ``[t0, t1]``, sorted.

        Raises:
            ValueError: for a reversed window.
        """
        if t1 < t0:
            raise ValueError(f"empty time window [{t0}, {t1}]")
        if self._dirty:
            self._rebuild()
        # Candidates: start <= t1 (a prefix of the by-start order).
        n_started = bisect.bisect_right(self._starts, t1)
        # Excluded: end < t0 (a prefix of the by-end order).
        n_ended = bisect.bisect_left(self._ends, t0)
        # Enumerate the smaller side and filter with the cheap predicate.
        if n_started <= len(self._intervals) - n_ended:
            out = [
                object_id
                for object_id in self._ids_by_start[:n_started]
                if self._intervals[object_id][1] >= t0
            ]
        else:
            ended_early = set(self._ids_by_end[:n_ended])
            out = [
                object_id
                for object_id in self._intervals
                if object_id not in ended_early
                and self._intervals[object_id][0] <= t1
            ]
        return sorted(out)

    def covering(self, when: float) -> list[str]:
        """Ids whose interval contains the instant ``when``, sorted."""
        return self.overlapping(when, when)
