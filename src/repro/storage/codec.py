"""Compact binary encoding of trajectories.

The paper motivates compression with storage arithmetic ("100 Mb ... for
just over 400 objects for a single day"); this codec is the byte-level
half of that story. Point selection (the algorithms of
:mod:`repro.core`) reduces the number of records; the codec then stores
the survivors compactly:

* timestamps and coordinates are quantized to configurable resolutions
  (defaults: 1 ms, 1 cm — far below GPS error),
* consecutive records are delta-encoded (GPS deltas are small),
* deltas are zigzag + varint encoded (small magnitudes → few bytes).

A typical car fix shrinks from 24 raw float bytes to 4–7 bytes. Decoding
reproduces the trajectory within half a quantum per field.

Durability: version-2 blobs end in a CRC-32 over everything before it,
so a torn write or bit flip is detected as a
:class:`~repro.exceptions.CorruptRecordError` instead of silently
decoding into wrong coordinates. Version-1 blobs (no checksum) are
still decoded for backward compatibility.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.exceptions import CodecError, CorruptRecordError
from repro.io_util import crc32
from repro.trajectory.trajectory import Trajectory

__all__ = [
    "encode_varint",
    "decode_varint",
    "zigzag",
    "unzigzag",
    "encode_trajectory",
    "decode_trajectory",
    "raw_size_bytes",
]

_MAGIC = b"RTRJ"
#: Current blob version: 2 = delta/varint records + CRC-32 trailer.
_VERSION = 2
#: Oldest version still decoded (1 = no checksum trailer).
_MIN_VERSION = 1
_CRC_BYTES = 4


def zigzag(value: int) -> int:
    """Map a signed integer to an unsigned one (small |v| stays small)."""
    return (value << 1) ^ (value >> 63) if value >= 0 else ((-value) << 1) - 1


def unzigzag(value: int) -> int:
    """Inverse of :func:`zigzag`."""
    return (value >> 1) if (value & 1) == 0 else -((value + 1) >> 1)


def encode_varint(value: int, out: bytearray) -> None:
    """Append an unsigned LEB128 varint to ``out``."""
    if value < 0:
        raise CodecError(f"varint requires a non-negative value, got {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def decode_varint(data: bytes, offset: int) -> tuple[int, int]:
    """Read an unsigned varint at ``offset``; returns ``(value, new_offset)``."""
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise CodecError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 70:
            raise CodecError("varint too long")


def raw_size_bytes(n_points: int) -> int:
    """Size of the naive representation: three float64 per record."""
    return 24 * n_points


def encode_trajectory(
    traj: Trajectory,
    time_resolution_s: float = 1e-3,
    coord_resolution_m: float = 0.01,
) -> bytes:
    """Serialize a trajectory to compact bytes.

    Args:
        traj: the trajectory (often an already point-compressed one).
        time_resolution_s: timestamp quantum; consecutive timestamps must
            differ by at least this much or encoding refuses (the
            round trip could otherwise collapse them).
        coord_resolution_m: coordinate quantum.

    Raises:
        CodecError: on unencodable input (non-positive resolutions,
            timestamps closer than the time quantum).

    The returned blob ends in a CRC-32 over all preceding bytes;
    :func:`decode_trajectory` verifies it, so corruption anywhere in the
    blob is detected rather than decoded.
    """
    if time_resolution_s <= 0 or coord_resolution_m <= 0:
        raise CodecError("resolutions must be positive")
    t_q = np.round(traj.t / time_resolution_s).astype(np.int64)
    x_q = np.round(traj.xy[:, 0] / coord_resolution_m).astype(np.int64)
    y_q = np.round(traj.xy[:, 1] / coord_resolution_m).astype(np.int64)
    if len(traj) > 1 and np.any(np.diff(t_q) <= 0):
        raise CodecError(
            f"timestamps closer than the {time_resolution_s} s quantum; "
            "choose a finer time resolution"
        )
    out = bytearray()
    out += _MAGIC
    out.append(_VERSION)
    object_id = (traj.object_id or "").encode("utf-8")
    encode_varint(len(object_id), out)
    out += object_id
    out += struct.pack("<dd", time_resolution_s, coord_resolution_m)
    encode_varint(len(traj), out)
    prev_t = prev_x = prev_y = 0
    for i in range(len(traj)):
        encode_varint(zigzag(int(t_q[i]) - prev_t), out)
        encode_varint(zigzag(int(x_q[i]) - prev_x), out)
        encode_varint(zigzag(int(y_q[i]) - prev_y), out)
        prev_t, prev_x, prev_y = int(t_q[i]), int(x_q[i]), int(y_q[i])
    out += struct.pack("<I", crc32(bytes(out)))
    return bytes(out)


def decode_trajectory(data: bytes, *, verify: bool = True) -> Trajectory:
    """Inverse of :func:`encode_trajectory`.

    Args:
        data: an encoded blob (version 1 or 2).
        verify: check the CRC-32 trailer of version-2 blobs (default).
            ``False`` skips the check — forensic use only.

    Raises:
        CorruptRecordError: checksum mismatch — the bytes were altered
            after encoding (torn write, bit rot).
        CodecError: on otherwise malformed or truncated input.
    """
    if len(data) < 5 or data[:4] != _MAGIC:
        raise CodecError("not a repro trajectory blob (bad magic)")
    version = data[4]
    if not _MIN_VERSION <= version <= _VERSION:
        raise CodecError(f"unsupported codec version {version}")
    end = len(data)
    if version >= 2:
        end -= _CRC_BYTES
        if end < 5:
            raise CodecError("truncated checksum trailer")
    offset = 5
    payload = data[:end]
    id_len, offset = decode_varint(payload, offset)
    if offset + id_len > len(payload):
        raise CodecError("truncated object id")
    object_id = payload[offset : offset + id_len].decode("utf-8") or None
    offset += id_len
    if offset + 16 > len(payload):
        raise CodecError("truncated resolution header")
    time_res, coord_res = struct.unpack_from("<dd", payload, offset)
    offset += 16
    n, offset = decode_varint(payload, offset)
    if n < 1:
        raise CodecError(f"blob declares {n} points")
    t = np.empty(n, dtype=np.int64)
    x = np.empty(n, dtype=np.int64)
    y = np.empty(n, dtype=np.int64)
    prev_t = prev_x = prev_y = 0
    for i in range(n):
        dt, offset = decode_varint(payload, offset)
        dx, offset = decode_varint(payload, offset)
        dy, offset = decode_varint(payload, offset)
        prev_t += unzigzag(dt)
        prev_x += unzigzag(dx)
        prev_y += unzigzag(dy)
        t[i] = prev_t
        x[i] = prev_x
        y[i] = prev_y
    if offset != len(payload):
        raise CodecError(f"{len(payload) - offset} trailing bytes after records")
    if version >= 2 and verify:
        (stored_crc,) = struct.unpack_from("<I", data, end)
        actual_crc = crc32(payload)
        if stored_crc != actual_crc:
            raise CorruptRecordError(
                f"record checksum mismatch: stored {stored_crc:#010x}, "
                f"computed {actual_crc:#010x} — the blob was altered after "
                f"encoding (torn write or bit corruption)"
            )
    return Trajectory(
        t.astype(float) * time_res,
        np.column_stack([x, y]).astype(float) * coord_res,
        object_id,
    )
