"""Compact binary encoding of trajectories.

The paper motivates compression with storage arithmetic ("100 Mb ... for
just over 400 objects for a single day"); this codec is the byte-level
half of that story. Point selection (the algorithms of
:mod:`repro.core`) reduces the number of records; the codec then stores
the survivors compactly:

* timestamps and coordinates are quantized to configurable resolutions
  (defaults: 1 ms, 1 cm — far below GPS error),
* consecutive records are delta-encoded (GPS deltas are small),
* deltas are zigzag + varint encoded (small magnitudes → few bytes).

A typical car fix shrinks from 24 raw float bytes to 4–7 bytes. Decoding
reproduces the trajectory within half a quantum per field.

Durability: version-2 blobs end in a CRC-32 over everything before it,
so a torn write or bit flip is detected as a
:class:`~repro.exceptions.CorruptRecordError` instead of silently
decoding into wrong coordinates. Version-1 blobs (no checksum) are
still decoded for backward compatibility.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.exceptions import CodecError, CorruptRecordError
from repro.io_util import crc32
from repro.trajectory.trajectory import Trajectory

__all__ = [
    "encode_varint",
    "decode_varint",
    "zigzag",
    "unzigzag",
    "encode_trajectory",
    "decode_trajectory",
    "raw_size_bytes",
    "BlobLayout",
    "RawPartition",
    "blob_layout",
    "scan_partitions",
    "decode_partition",
]

_MAGIC = b"RTRJ"
#: Current blob version: 2 = delta/varint records + CRC-32 trailer.
_VERSION = 2
#: Oldest version still decoded (1 = no checksum trailer).
_MIN_VERSION = 1
_CRC_BYTES = 4


def zigzag(value: int) -> int:
    """Map a signed integer to an unsigned one (small |v| stays small)."""
    return (value << 1) ^ (value >> 63) if value >= 0 else ((-value) << 1) - 1


def unzigzag(value: int) -> int:
    """Inverse of :func:`zigzag`."""
    return (value >> 1) if (value & 1) == 0 else -((value + 1) >> 1)


def encode_varint(value: int, out: bytearray) -> None:
    """Append an unsigned LEB128 varint to ``out``."""
    if value < 0:
        raise CodecError(f"varint requires a non-negative value, got {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def decode_varint(data: bytes, offset: int) -> tuple[int, int]:
    """Read an unsigned varint at ``offset``; returns ``(value, new_offset)``."""
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise CodecError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 70:
            raise CodecError("varint too long")


def raw_size_bytes(n_points: int) -> int:
    """Size of the naive representation: three float64 per record."""
    return 24 * n_points


def encode_trajectory(
    traj: Trajectory,
    time_resolution_s: float = 1e-3,
    coord_resolution_m: float = 0.01,
) -> bytes:
    """Serialize a trajectory to compact bytes.

    Args:
        traj: the trajectory (often an already point-compressed one).
        time_resolution_s: timestamp quantum; consecutive timestamps must
            differ by at least this much or encoding refuses (the
            round trip could otherwise collapse them).
        coord_resolution_m: coordinate quantum.

    Raises:
        CodecError: on unencodable input (non-positive resolutions,
            timestamps closer than the time quantum).

    The returned blob ends in a CRC-32 over all preceding bytes;
    :func:`decode_trajectory` verifies it, so corruption anywhere in the
    blob is detected rather than decoded.
    """
    if time_resolution_s <= 0 or coord_resolution_m <= 0:
        raise CodecError("resolutions must be positive")
    t_q = np.round(traj.t / time_resolution_s).astype(np.int64)
    x_q = np.round(traj.xy[:, 0] / coord_resolution_m).astype(np.int64)
    y_q = np.round(traj.xy[:, 1] / coord_resolution_m).astype(np.int64)
    if len(traj) > 1 and np.any(np.diff(t_q) <= 0):
        raise CodecError(
            f"timestamps closer than the {time_resolution_s} s quantum; "
            "choose a finer time resolution"
        )
    out = bytearray()
    out += _MAGIC
    out.append(_VERSION)
    object_id = (traj.object_id or "").encode("utf-8")
    encode_varint(len(object_id), out)
    out += object_id
    out += struct.pack("<dd", time_resolution_s, coord_resolution_m)
    encode_varint(len(traj), out)
    prev_t = prev_x = prev_y = 0
    for i in range(len(traj)):
        encode_varint(zigzag(int(t_q[i]) - prev_t), out)
        encode_varint(zigzag(int(x_q[i]) - prev_x), out)
        encode_varint(zigzag(int(y_q[i]) - prev_y), out)
        prev_t, prev_x, prev_y = int(t_q[i]), int(x_q[i]), int(y_q[i])
    out += struct.pack("<I", crc32(bytes(out)))
    return bytes(out)


def decode_trajectory(data: bytes, *, verify: bool = True) -> Trajectory:
    """Inverse of :func:`encode_trajectory`.

    Args:
        data: an encoded blob (version 1 or 2).
        verify: check the CRC-32 trailer of version-2 blobs (default).
            ``False`` skips the check — forensic use only.

    Raises:
        CorruptRecordError: checksum mismatch — the bytes were altered
            after encoding (torn write, bit rot).
        CodecError: on otherwise malformed or truncated input.
    """
    if len(data) < 5 or data[:4] != _MAGIC:
        raise CodecError("not a repro trajectory blob (bad magic)")
    version = data[4]
    if not _MIN_VERSION <= version <= _VERSION:
        raise CodecError(f"unsupported codec version {version}")
    end = len(data)
    if version >= 2:
        end -= _CRC_BYTES
        if end < 5:
            raise CodecError("truncated checksum trailer")
    offset = 5
    payload = data[:end]
    id_len, offset = decode_varint(payload, offset)
    if offset + id_len > len(payload):
        raise CodecError("truncated object id")
    object_id = payload[offset : offset + id_len].decode("utf-8") or None
    offset += id_len
    if offset + 16 > len(payload):
        raise CodecError("truncated resolution header")
    time_res, coord_res = struct.unpack_from("<dd", payload, offset)
    offset += 16
    n, offset = decode_varint(payload, offset)
    if n < 1:
        raise CodecError(f"blob declares {n} points")
    t = np.empty(n, dtype=np.int64)
    x = np.empty(n, dtype=np.int64)
    y = np.empty(n, dtype=np.int64)
    prev_t = prev_x = prev_y = 0
    for i in range(n):
        dt, offset = decode_varint(payload, offset)
        dx, offset = decode_varint(payload, offset)
        dy, offset = decode_varint(payload, offset)
        prev_t += unzigzag(dt)
        prev_x += unzigzag(dx)
        prev_y += unzigzag(dy)
        t[i] = prev_t
        x[i] = prev_x
        y[i] = prev_y
    if offset != len(payload):
        raise CodecError(f"{len(payload) - offset} trailing bytes after records")
    if version >= 2 and verify:
        (stored_crc,) = struct.unpack_from("<I", data, end)
        actual_crc = crc32(payload)
        if stored_crc != actual_crc:
            raise CorruptRecordError(
                f"record checksum mismatch: stored {stored_crc:#010x}, "
                f"computed {actual_crc:#010x} — the blob was altered after "
                f"encoding (torn write or bit corruption)"
            )
    return Trajectory(
        t.astype(float) * time_res,
        np.column_stack([x, y]).astype(float) * coord_res,
        object_id,
    )


# ---------------------------------------------------------------------- #
# Partial decoding
#
# The point stream is one delta chain, so a slice cannot be decoded
# without a restart state. Rather than change the blob format, the query
# layer keeps *checkpoints* alongside each blob: the byte offset where a
# partition's varints begin plus the absolute quantized integers of the
# point just before it. :func:`scan_partitions` derives those checkpoints
# in one linear pass at ingest time; :func:`decode_partition` then decodes
# any partition in O(partition) bytes. Partial decodes do not re-verify
# the CRC trailer — the store checks each record's checksum at load time,
# and the per-file CRC covers the checkpoints themselves.
# ---------------------------------------------------------------------- #


@dataclass(frozen=True, slots=True)
class BlobLayout:
    """Header facts of an encoded blob, parsed without decoding points."""

    version: int
    object_id: str | None
    time_resolution_s: float
    coord_resolution_m: float
    n_points: int
    #: Byte offset of the first point's varints.
    points_offset: int
    #: End of the point region (excludes the CRC trailer when present).
    payload_end: int


@dataclass(frozen=True, slots=True)
class RawPartition:
    """One partition's restart state and integer-space extents.

    ``prev`` is the absolute quantized ``(t, x, y)`` of the point
    immediately before the partition (the delta base), or ``None`` for
    the first partition. The extents cover the partition's own points
    *plus* that bridging point, so every inter-partition segment is
    bounded by exactly one partition.
    """

    offset: int
    prev: tuple[int, int, int] | None
    n_points: int
    t_lo_q: int
    t_hi_q: int
    x_lo_q: int
    x_hi_q: int
    y_lo_q: int
    y_hi_q: int


def blob_layout(data: bytes) -> BlobLayout:
    """Parse an encoded blob's header; O(header), no point decoding."""
    if len(data) < 5 or data[:4] != _MAGIC:
        raise CodecError("not a repro trajectory blob (bad magic)")
    version = data[4]
    if not _MIN_VERSION <= version <= _VERSION:
        raise CodecError(f"unsupported codec version {version}")
    end = len(data)
    if version >= 2:
        end -= _CRC_BYTES
        if end < 5:
            raise CodecError("truncated checksum trailer")
    offset = 5
    id_len, offset = decode_varint(data, offset)
    if offset + id_len > end:
        raise CodecError("truncated object id")
    object_id = data[offset : offset + id_len].decode("utf-8") or None
    offset += id_len
    if offset + 16 > end:
        raise CodecError("truncated resolution header")
    time_res, coord_res = struct.unpack_from("<dd", data, offset)
    offset += 16
    n, offset = decode_varint(data, offset)
    if n < 1:
        raise CodecError(f"blob declares {n} points")
    return BlobLayout(version, object_id, time_res, coord_res, n, offset, end)


def scan_partitions(
    data: bytes, stride: int
) -> tuple[BlobLayout, list[RawPartition]]:
    """One linear pass over a blob, yielding restart checkpoints.

    Partition ``k`` owns points ``[k*stride, (k+1)*stride)``; its ``prev``
    state is point ``k*stride - 1``, so decoding a partition with its
    bridge point included reproduces every segment that crosses into it.
    """
    if stride < 1:
        raise CodecError(f"partition stride must be >= 1, got {stride}")
    layout = blob_layout(data)
    n = layout.n_points
    end = layout.payload_end
    offset = layout.points_offset
    partitions: list[RawPartition] = []
    prev_t = prev_x = prev_y = 0
    # Open-partition accumulators.
    part_offset = offset
    part_prev: tuple[int, int, int] | None = None
    part_first = 0
    t_lo = x_lo = y_lo = x_hi = y_hi = 0
    for i in range(n):
        if i and i % stride == 0:
            partitions.append(RawPartition(
                part_offset, part_prev, i - part_first,
                t_lo, prev_t, x_lo, x_hi, y_lo, y_hi,
            ))
            part_offset = offset
            part_prev = (prev_t, prev_x, prev_y)
            part_first = i
            # The bridge point seeds the new partition's extents.
            t_lo, x_lo, x_hi, y_lo, y_hi = prev_t, prev_x, prev_x, prev_y, prev_y
        dt, offset = decode_varint(data, offset)
        dx, offset = decode_varint(data, offset)
        dy, offset = decode_varint(data, offset)
        if offset > end:
            raise CodecError("point varints run past the payload")
        prev_t += unzigzag(dt)
        prev_x += unzigzag(dx)
        prev_y += unzigzag(dy)
        if i == part_first and part_prev is None:
            t_lo, x_lo, x_hi, y_lo, y_hi = prev_t, prev_x, prev_x, prev_y, prev_y
        else:
            if prev_x < x_lo:
                x_lo = prev_x
            elif prev_x > x_hi:
                x_hi = prev_x
            if prev_y < y_lo:
                y_lo = prev_y
            elif prev_y > y_hi:
                y_hi = prev_y
    partitions.append(RawPartition(
        part_offset, part_prev, n - part_first,
        t_lo, prev_t, x_lo, x_hi, y_lo, y_hi,
    ))
    if offset != end:
        raise CodecError(f"{end - offset} trailing bytes after records")
    return layout, partitions


def decode_partition(
    data: bytes,
    layout: BlobLayout,
    offset: int,
    count: int,
    prev: tuple[int, int, int] | None,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Decode ``count`` consecutive points starting at byte ``offset``.

    Args:
        data: the full encoded blob.
        layout: its parsed header (for resolutions and bounds).
        offset: byte offset of the first point's varints.
        count: number of stored points to decode.
        prev: the delta base — absolute quantized ints of the point
            before the slice. When given, that point is *prepended* to
            the result (the bridging sample); ``None`` means the slice
            starts at the blob's first point.

    Returns:
        ``(t, xy, end_offset)`` where ``t``/``xy`` are float arrays in
        decoded units, bit-identical to the same rows of a full
        :func:`decode_trajectory`, and ``end_offset`` is the byte offset
        just past the slice.
    """
    bridge = 1 if prev is not None else 0
    t = np.empty(count + bridge, dtype=np.int64)
    x = np.empty(count + bridge, dtype=np.int64)
    y = np.empty(count + bridge, dtype=np.int64)
    prev_t, prev_x, prev_y = prev if prev is not None else (0, 0, 0)
    if bridge:
        t[0], x[0], y[0] = prev_t, prev_x, prev_y
    end = layout.payload_end
    for i in range(bridge, count + bridge):
        dt, offset = decode_varint(data, offset)
        dx, offset = decode_varint(data, offset)
        dy, offset = decode_varint(data, offset)
        if offset > end:
            raise CodecError("point varints run past the payload")
        prev_t += unzigzag(dt)
        prev_x += unzigzag(dx)
        prev_y += unzigzag(dy)
        t[i] = prev_t
        x[i] = prev_x
        y[i] = prev_y
    return (
        t.astype(float) * layout.time_resolution_s,
        np.column_stack([x, y]).astype(float) * layout.coord_resolution_m,
        offset,
    )
