"""Checkpointed, resumable batch runs.

A checkpoint directory makes a :class:`~repro.pipeline.engine.BatchEngine`
run survive being killed at any instant and resume where it left off:

* ``manifest.json`` — written atomically when the run starts; pins what
  the run *is* (compressor spec, failure policy, evaluation depth,
  malformed-input policy, the ordered item ids). A resume under a
  different configuration or input set fails loudly with
  :class:`~repro.exceptions.CheckpointError` rather than silently mixing
  two different runs' outputs.
* ``journal.jsonl`` — append-only log of per-item outcomes, one JSON
  entry per line, each line prefixed with its own CRC-32 and flushed +
  fsynced as it is written. A crash can only ever tear the *last* line;
  :meth:`RunCheckpoint.completed` tolerates exactly that (a torn tail is
  dropped and the item reruns) while corruption anywhere earlier —
  which no crash can produce — fails loudly.

Because the engine's algorithms are deterministic and the journal stores
each completed item's full sample (selected indices included), a resumed
run reassembles outcomes that are byte-identical to an uninterrupted
run's — the crash-recovery tests assert exactly this.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import IO, Any

from repro.exceptions import CheckpointError
from repro.io_util import decode_crc_line, encode_crc_line, write_atomic_json

__all__ = ["RunCheckpoint", "read_manifest"]

MANIFEST_NAME = "manifest.json"
JOURNAL_NAME = "journal.jsonl"

#: Manifest schema version (bump on incompatible layout changes).
MANIFEST_FORMAT = 1


def read_manifest(directory: "str | Path") -> dict[str, Any]:
    """Read a checkpoint's manifest (what the run was configured as).

    The CLI's ``--resume`` path uses this to rebuild the engine with the
    original configuration instead of trusting re-typed flags.

    Raises:
        CheckpointError: missing or unreadable manifest.
    """
    path = Path(directory) / MANIFEST_NAME
    try:
        manifest = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise CheckpointError(
            f"{directory}: not a checkpoint directory (no {MANIFEST_NAME})"
        ) from None
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"{path}: unreadable manifest: {exc}") from exc
    if not isinstance(manifest, dict):
        raise CheckpointError(f"{path}: manifest is not a JSON object")
    return manifest


class RunCheckpoint:
    """One run's manifest + append-only outcome journal.

    Use :meth:`open` — it creates the directory and manifest on a fresh
    run, and validates the manifest on a resume. :meth:`completed` then
    returns the journalled outcomes to skip, and :meth:`record` appends
    each new outcome durably as the run progresses.
    """

    def __init__(self, directory: Path, manifest: dict[str, Any]) -> None:
        self.directory = directory
        self.manifest = manifest
        self._journal: IO[str] | None = None

    @classmethod
    def open(
        cls, directory: "str | Path", manifest: dict[str, Any]
    ) -> "RunCheckpoint":
        """Create (fresh run) or validate (resume) a checkpoint directory.

        Args:
            directory: the checkpoint directory; created if absent.
            manifest: what this run is configured as. On resume, every
                field must equal the stored manifest.

        Raises:
            CheckpointError: the directory holds a manifest for a
                *different* run (any mismatched field aborts, listing
                the differing fields).
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        manifest = {"format": MANIFEST_FORMAT, **manifest}
        path = directory / MANIFEST_NAME
        if path.exists():
            existing = read_manifest(directory)
            mismatched = sorted(
                key
                for key in set(existing) | set(manifest)
                if existing.get(key) != manifest.get(key)
            )
            if mismatched:
                raise CheckpointError(
                    f"{directory}: checkpoint belongs to a different run — "
                    f"mismatched manifest field(s): {', '.join(mismatched)}. "
                    f"Use a fresh checkpoint directory, or resume with the "
                    f"original configuration."
                )
        else:
            write_atomic_json(path, manifest)
        return cls(directory, manifest)

    @property
    def journal_path(self) -> Path:
        return self.directory / JOURNAL_NAME

    def completed(self) -> dict[int, dict[str, Any]]:
        """Journalled outcomes by input index, for skipping on resume.

        A torn final line (the only damage a crash can cause, since
        every line is flushed and fsynced before the next begins) is
        dropped silently — that item simply reruns. A bad CRC or
        unparsable JSON on any *earlier* line means the journal was
        altered outside the append protocol and raises.

        Raises:
            CheckpointError: corrupt journal line before the tail, or
                duplicate/negative indices.
        """
        try:
            text = self.journal_path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return {}
        lines = text.split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        entries: dict[int, dict[str, Any]] = {}
        for lineno, line in enumerate(lines):
            is_tail = lineno == len(lines) - 1
            entry = self._parse_line(line)
            if entry is None:
                if is_tail:
                    break  # torn tail: the crash interrupted this write
                raise CheckpointError(
                    f"{self.journal_path}: corrupt journal line {lineno + 1} "
                    f"(bad checksum or malformed JSON) — the journal was "
                    f"modified outside the append protocol"
                )
            index = entry.get("index")
            if not isinstance(index, int) or index < 0:
                raise CheckpointError(
                    f"{self.journal_path}: line {lineno + 1} has no valid "
                    f"item index"
                )
            if index in entries:
                raise CheckpointError(
                    f"{self.journal_path}: duplicate entry for item index "
                    f"{index} (line {lineno + 1})"
                )
            entries[index] = entry
        return entries

    @staticmethod
    def _parse_line(line: str) -> "dict[str, Any] | None":
        """One ``<crc8hex> <json>`` journal line, or None if damaged."""
        payload = decode_crc_line(line)
        if payload is None:
            return None
        try:
            entry = json.loads(payload)
        except json.JSONDecodeError:
            return None
        return entry if isinstance(entry, dict) else None

    def record(self, entry: dict[str, Any]) -> None:
        """Durably append one outcome entry to the journal.

        The line is flushed and fsynced before returning: once
        :meth:`record` returns, a crash cannot lose the entry, and
        because fsync orders the lines, a crash *during* a record can
        only tear the final line.
        """
        payload = json.dumps(entry, separators=(",", ":"), sort_keys=True)
        if self._journal is None:
            self._journal = self.journal_path.open("a", encoding="utf-8")
        self._journal.write(encode_crc_line(payload))
        self._journal.flush()
        os.fsync(self._journal.fileno())

    def close(self) -> None:
        """Close the journal handle (safe to call repeatedly)."""
        if self._journal is not None:
            self._journal.close()
            self._journal = None

    def __enter__(self) -> "RunCheckpoint":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()
