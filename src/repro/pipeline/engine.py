"""The batch compression engine: fleets in, results + metrics out.

A :class:`BatchEngine` compresses a whole fleet of trajectories —
given as an in-memory iterable, a directory of trajectory files, or a
:class:`~repro.storage.store.TrajectoryStore` — through any registered
compressor, with:

* a process-pool parallel executor (``workers=N``) with chunked
  dispatch and deterministic, input-ordered results (a serial fallback
  runs inline for ``workers<=1``);
* per-item fault isolation: a failing or degenerate trajectory becomes
  a structured :class:`~repro.pipeline.executor.ItemFailure` under a
  configurable ``raise``/``skip``/``retry(n)`` policy instead of
  killing the run;
* an observability layer: per-item samples (points in/kept,
  synchronized error, compression time) aggregated into a shared
  :class:`~repro.obs.Registry` and exported as JSON
  (``repro pipeline --metrics-json``), with tracing spans around the
  run and its stages and opt-in profiling (``REPRO_PROFILE=1``).

Parallel determinism note: a compressor *instance* is pickled to the
workers as-is; a spec string or :class:`~repro.core.registry.CompressorSpec`
is shipped as data and rebuilt per item, which keeps worker processes
independent of driver-side state. Either way the algorithms are
deterministic, so ``workers=N`` selects byte-identical indices to the
serial path.
"""

from __future__ import annotations

import shutil
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Iterator

import numpy as np

from repro.core.base import Compressor
from repro.core.registry import CompressorSpec, parse_compressor_spec
from repro.error.synchronized import (
    max_synchronized_error,
    mean_synchronized_error,
)
from repro.error.metrics import CompressionReport, evaluate_compression
from repro.exceptions import CheckpointError, PipelineError, ReproError
from repro.io_util import parse_on_malformed, write_atomic_json
from repro.pipeline.checkpoint import RunCheckpoint
from repro.pipeline.executor import (
    FailurePolicy,
    ItemFailure,
    ItemSuccess,
    MalformedItemError,
    execute,
)
from repro.obs import Registry, profiled, span
from repro.trajectory.trajectory import Trajectory

__all__ = [
    "BatchEngine",
    "BatchRunResult",
    "ItemResult",
    "iter_fleet",
    "load_fleet",
]

_FILE_SUFFIXES = (".csv", ".json", ".gpx")

#: Evaluation depths: nothing, synchronized error only, or full report.
_EVALUATE_MODES = ("none", "sync", "full")


def _load_path(path: Path) -> Trajectory:
    """Load one trajectory file by suffix (.csv/.json/.gpx).

    Any parse/IO failure is wrapped in
    :class:`~repro.pipeline.executor.MalformedItemError` so the executor
    can dispatch it on the malformed-input policy rather than the
    general failure policy.
    """
    from repro.trajectory import gpx as _gpx
    from repro.trajectory import io as _io

    suffix = path.suffix.lower()
    try:
        if suffix == ".csv":
            return _io.read_csv(path, object_id=path.stem)
        if suffix == ".json":
            return _io.read_json(path)
        if suffix == ".gpx":
            return _gpx.read_gpx(path)
    except (ReproError, OSError, ValueError, SyntaxError) as exc:
        # SyntaxError covers xml.etree's ParseError for corrupt GPX.
        raise MalformedItemError(f"{path.name}: {exc}", exc) from exc
    error = PipelineError(
        f"unsupported trajectory format {suffix!r} (use .csv/.json/.gpx)"
    )
    raise MalformedItemError(str(error), error)


def _quarantine_file(path: Path, failure: ItemFailure, directory: Path) -> Path:
    """Move a malformed input aside with a structured sidecar reason.

    The file keeps its name (a numeric suffix is added on collision) and
    gains a ``<name>.reason.json`` sibling recording what rejected it.
    """
    directory.mkdir(parents=True, exist_ok=True)
    dest = directory / path.name
    counter = 1
    while dest.exists():
        dest = directory / f"{path.stem}.{counter}{path.suffix}"
        counter += 1
    shutil.move(str(path), str(dest))
    write_atomic_json(
        dest.with_name(dest.name + ".reason.json"),
        {
            "source": str(path),
            "item_id": failure.item_id,
            "error_type": failure.error_type,
            "message": failure.message,
            "traceback_summary": failure.traceback_summary,
        },
    )
    return dest


def _malformed_exec_mode(mode: "str | None") -> str:
    """Map an engine-level malformed policy onto the executor's modes."""
    if mode is None:
        return "defer"
    return "raise" if mode == "raise" else "isolate"


def _outcome_entry(outcome: "ItemSuccess | ItemFailure") -> dict[str, Any]:
    """One outcome as a JSON-ready checkpoint-journal entry."""
    if isinstance(outcome, ItemSuccess):
        sample = dict(outcome.value)
        indices = sample.get("indices")
        if indices is not None and not isinstance(indices, list):
            sample["indices"] = [int(v) for v in indices]
        return {
            "ok": True,
            "item_id": outcome.item_id,
            "index": outcome.index,
            "attempts": outcome.attempts,
            "sample": sample,
        }
    return {"ok": False, **outcome.to_dict()}


def _entry_outcome(entry: dict[str, Any]) -> "ItemResult | ItemFailure":
    """Reconstruct a journalled outcome (inverse of :func:`_outcome_entry`)."""
    if entry.get("ok"):
        return BatchEngine._to_item_result(
            ItemSuccess(
                item_id=str(entry["item_id"]),
                index=int(entry["index"]),
                value=entry["sample"],
                attempts=int(entry.get("attempts", 1)),
            )
        )
    return ItemFailure(
        item_id=str(entry["item_id"]),
        index=int(entry["index"]),
        error_type=str(entry.get("error_type", "Exception")),
        message=str(entry.get("message", "")),
        traceback_summary=str(entry.get("traceback_summary", "")),
        attempts=int(entry.get("attempts", 1)),
        malformed=bool(entry.get("malformed", False)),
        quarantined_to=entry.get("quarantined_to"),
    )


def iter_fleet(source: Any) -> Iterator[tuple[str, "Trajectory | Path"]]:
    """Normalize a fleet source into ``(item_id, payload)`` pairs.

    Accepted sources:

    * a directory path — every ``.csv``/``.json``/``.gpx`` file in it,
      sorted; payloads stay as paths so loading happens inside the
      engine's fault-isolation boundary (and in parallel workers);
    * a single file path;
    * a :class:`~repro.storage.store.TrajectoryStore` (anything with
      ``object_ids()`` and ``get()``), iterated in id order;
    * an iterable of :class:`~repro.trajectory.trajectory.Trajectory`
      objects, ``(item_id, trajectory)`` pairs, or file paths.

    Item ids come from the trajectory's ``object_id`` / the file stem /
    the store id; anonymous items fall back to ``item-<index>``.
    """
    if isinstance(source, (str, Path)):
        path = Path(source)
        if path.is_dir():
            files = sorted(
                p for p in path.iterdir()
                if p.suffix.lower() in _FILE_SUFFIXES
            )
            for file in files:
                yield file.stem, file
            return
        yield path.stem, path
        return
    if hasattr(source, "object_ids") and hasattr(source, "get"):
        for object_id in source.object_ids():
            yield object_id, source.get(object_id)
        return
    if isinstance(source, Trajectory):
        raise PipelineError(
            "pass a list of trajectories (or wrap the single trajectory "
            "in a list) — a bare Trajectory is not a fleet"
        )
    for index, entry in enumerate(source):
        if isinstance(entry, Trajectory):
            yield entry.object_id or f"item-{index:05d}", entry
        elif isinstance(entry, (str, Path)):
            path = Path(entry)
            yield path.stem, path
        elif isinstance(entry, tuple) and len(entry) == 2:
            item_id, payload = entry
            yield str(item_id), payload
        else:
            raise PipelineError(
                f"fleet entry {index} is {type(entry).__name__}; expected "
                f"a Trajectory, a path, or an (id, trajectory) pair"
            )


@dataclass(frozen=True)
class _LoadTask:
    """Picklable per-item loader used by :func:`load_fleet`."""

    def __call__(self, payload: "Trajectory | str | Path") -> Trajectory:
        """Return the payload as a trajectory, loading files by suffix."""
        if isinstance(payload, Trajectory):
            return payload
        return _load_path(Path(payload))


@dataclass(frozen=True)
class _CompressTask:
    """Picklable per-item compression task shipped to worker processes.

    Exactly one of ``spec`` / ``compressor`` is set. Specs are rebuilt
    into a fresh compressor per item (construction is cheap parameter
    validation); instances are pickled once per chunk by the executor.
    """

    spec: CompressorSpec | None
    compressor: Compressor | None
    evaluate: str

    def _build(self) -> Compressor:
        if self.spec is not None:
            return self.spec.build()
        assert self.compressor is not None
        return self.compressor

    def __call__(self, payload: "Trajectory | str | Path") -> dict[str, Any]:
        """Compress one item, returning a plain picklable sample dict."""
        traj = payload if isinstance(payload, Trajectory) else _load_path(Path(payload))
        compressor = self._build()
        started = time.perf_counter()
        result = compressor.compress(traj)
        runtime = time.perf_counter() - started
        sample: dict[str, Any] = {
            "n_original": result.n_original,
            "n_kept": result.n_kept,
            "indices": result.indices,
            "runtime_s": runtime,
            "mean_sync_error_m": None,
            "max_sync_error_m": None,
            "report": None,
        }
        if self.evaluate != "none" and len(traj) >= 2:
            approx = result.compressed
            with span("pipeline.evaluate", mode=self.evaluate, points=len(traj)):
                if self.evaluate == "full":
                    report = evaluate_compression(traj, approx)
                    sample["report"] = report.to_dict()
                    sample["mean_sync_error_m"] = report.mean_sync_error_m
                    sample["max_sync_error_m"] = report.max_sync_error_m
                else:
                    sample["mean_sync_error_m"] = mean_synchronized_error(
                        traj, approx
                    )
                    sample["max_sync_error_m"] = max_synchronized_error(
                        traj, approx
                    )
        return sample


@dataclass(frozen=True)
class ItemResult:
    """One successfully compressed fleet item."""

    item_id: str
    index: int
    n_original: int
    n_kept: int
    indices: np.ndarray
    runtime_s: float
    mean_sync_error_m: float | None = None
    max_sync_error_m: float | None = None
    report: CompressionReport | None = None
    attempts: int = 1

    #: Discriminator shared with ItemFailure (`outcome.ok`).
    ok = True

    @property
    def compression_percent(self) -> float:
        """Percent of points removed for this item."""
        return 100.0 * (1.0 - self.n_kept / self.n_original)

    def __repr__(self) -> str:
        return (
            f"ItemResult({self.item_id}: {self.n_original} -> {self.n_kept}, "
            f"{self.compression_percent:.1f}%)"
        )


@dataclass
class BatchRunResult:
    """Everything one :meth:`BatchEngine.run` produced.

    ``outcomes`` holds one :class:`ItemResult` or
    :class:`~repro.pipeline.executor.ItemFailure` per input item, in
    input order; ``metrics`` the aggregated run instruments.
    """

    compressor: str
    workers: int
    on_error: str
    outcomes: list["ItemResult | ItemFailure"]
    metrics: Registry
    elapsed_s: float
    on_malformed: "str | None" = None
    items_resumed: int = 0

    @property
    def results(self) -> list[ItemResult]:
        """The successful items, in input order."""
        return [o for o in self.outcomes if o.ok]

    @property
    def failures(self) -> list[ItemFailure]:
        """The failed items, in input order."""
        return [o for o in self.outcomes if not o.ok]

    @property
    def quarantined(self) -> list[ItemFailure]:
        """Failures whose input file was moved to the quarantine dir."""
        return [o for o in self.failures if o.quarantined_to is not None]

    @property
    def n_quarantined(self) -> int:
        """How many inputs were quarantined this run."""
        return len(self.quarantined)

    @property
    def n_items(self) -> int:
        """Total items processed."""
        return len(self.outcomes)

    def metrics_dict(self) -> dict[str, Any]:
        """The run's full JSON-ready metrics document.

        Schema: an ``engine`` header (compressor, workers, policy), a
        ``run`` summary (item counts, wall time), the ``metrics``
        instruments, and the structured ``failures`` list.
        """
        results = self.results
        return {
            "engine": {
                "compressor": self.compressor,
                "workers": self.workers,
                "on_error": self.on_error,
                "on_malformed": self.on_malformed,
            },
            "run": {
                "n_items": self.n_items,
                "n_ok": len(results),
                "n_failed": len(self.failures),
                "n_quarantined": self.n_quarantined,
                "items_resumed": self.items_resumed,
                "elapsed_s": self.elapsed_s,
                "points_in": sum(r.n_original for r in results),
                "points_kept": sum(r.n_kept for r in results),
            },
            "metrics": self.metrics.to_dict(),
            "failures": [failure.to_dict() for failure in self.failures],
        }

    def write_metrics_json(self, path: "str | Path") -> None:
        """Write :meth:`metrics_dict` to ``path`` as indented JSON.

        The file is written atomically: a crash mid-export leaves the
        previous report (or nothing), never a truncated JSON document.
        """
        write_atomic_json(Path(path), self.metrics_dict())

    def summary(self) -> str:
        """One-line human-readable run summary."""
        results = self.results
        points_in = sum(r.n_original for r in results)
        points_kept = sum(r.n_kept for r in results)
        percent = 100.0 * (1.0 - points_kept / points_in) if points_in else 0.0
        return (
            f"{self.compressor}: {len(results)}/{self.n_items} items ok, "
            f"{points_in} -> {points_kept} points ({percent:.1f}% removed) "
            f"in {self.elapsed_s:.2f}s ({self.workers or 1} worker(s))"
        )


class BatchEngine:
    """Compress a fleet of trajectories through one configured algorithm.

    Args:
        compressor: a :class:`~repro.core.base.Compressor` instance, a
            :class:`~repro.core.registry.CompressorSpec`, or a spec
            string such as ``"td-tr:epsilon=30"``.
        workers: ``0``/``1`` for the inline serial path, ``N > 1`` for a
            process pool (results are identical either way).
        chunk_size: items per dispatched chunk (default: balanced
            against ``workers``).
        on_error: ``"raise"`` (default), ``"skip"``, ``"retry(n)"`` or
            ``"retry(n,backoff=s)"``
            — see :class:`~repro.pipeline.executor.FailurePolicy`.
        evaluate: ``"sync"`` (default) samples the paper's synchronized
            error per item; ``"full"`` attaches a complete
            :class:`~repro.error.metrics.CompressionReport`; ``"none"``
            skips error evaluation for maximum throughput. Booleans are
            accepted (``True`` = ``"sync"``, ``False`` = ``"none"``).
        on_malformed: what to do with an input *file* that cannot be
            parsed: ``None`` (default) lets it follow ``on_error`` as
            before; ``"raise"`` always aborts; ``"skip"`` records a
            ``malformed`` failure and continues; ``"quarantine:<dir>"``
            additionally moves the file into ``<dir>`` with a
            ``.reason.json`` sidecar. Malformed inputs are never
            retried.

    Example::

        engine = BatchEngine("td-tr:epsilon=30", workers=4, on_error="skip")
        run = engine.run("fleet_dir/", checkpoint="ck/")
        print(run.summary())
        run.write_metrics_json("metrics.json")
    """

    def __init__(
        self,
        compressor: "Compressor | CompressorSpec | str",
        *,
        workers: int = 0,
        chunk_size: int | None = None,
        on_error: "FailurePolicy | str" = "raise",
        evaluate: "str | bool" = "sync",
        on_malformed: "str | None" = None,
    ) -> None:
        if isinstance(compressor, str):
            compressor = parse_compressor_spec(compressor)
        if isinstance(compressor, CompressorSpec):
            compressor.build()  # validate early: fail at engine build, not mid-run
            self._spec: CompressorSpec | None = compressor
            self._compressor: Compressor | None = None
            self.compressor_label = str(compressor)
        elif isinstance(compressor, Compressor):
            self._spec = None
            self._compressor = compressor
            self.compressor_label = repr(compressor)
        else:
            raise PipelineError(
                f"compressor must be a Compressor, CompressorSpec or spec "
                f"string, got {type(compressor).__name__}"
            )
        self.workers = int(workers)
        self.chunk_size = chunk_size
        self.policy = FailurePolicy.parse(on_error)
        if isinstance(evaluate, bool):
            evaluate = "sync" if evaluate else "none"
        if evaluate not in _EVALUATE_MODES:
            raise PipelineError(
                f"evaluate must be one of {_EVALUATE_MODES}, got {evaluate!r}"
            )
        self.evaluate = evaluate
        self.on_malformed = on_malformed
        if on_malformed is None:
            self._malformed_mode: str | None = None
            self._quarantine_dir: Path | None = None
        else:
            try:
                self._malformed_mode, self._quarantine_dir = parse_on_malformed(
                    on_malformed
                )
            except ValueError as exc:
                raise PipelineError(str(exc)) from exc

    @property
    def compressor_name(self) -> str:
        """The registry name of the configured algorithm."""
        if self._spec is not None:
            return self._spec.name
        assert self._compressor is not None
        return self._compressor.name

    def run(
        self,
        source: Any,
        *,
        metrics: Registry | None = None,
        checkpoint: "str | Path | None" = None,
    ) -> BatchRunResult:
        """Compress every item of ``source`` (see :func:`iter_fleet`).

        Args:
            source: the fleet — iterable, directory, file, or store.
            metrics: an existing registry to aggregate into (a fresh one
                is created by default).
            checkpoint: a directory making the run resumable. A fresh
                directory records a manifest (compressor, policies, item
                ids) and journals every completed item durably; pointing
                a later run at the same directory skips the journalled
                items and produces results identical to an uninterrupted
                run. A checkpoint written by a *different* configuration
                or input set raises
                :class:`~repro.exceptions.CheckpointError`.

        Returns:
            A :class:`BatchRunResult` with input-ordered outcomes and
            the aggregated metrics.
        """
        metrics = metrics if metrics is not None else Registry()
        items = list(iter_fleet(source))
        task = _CompressTask(self._spec, self._compressor, self.evaluate)
        ckpt: RunCheckpoint | None = None
        completed: dict[int, dict[str, Any]] = {}
        if checkpoint is not None:
            ckpt = RunCheckpoint.open(checkpoint, self._manifest(items))
            completed = ckpt.completed()
            for index, entry in completed.items():
                if index >= len(items) or items[index][0] != entry.get("item_id"):
                    raise CheckpointError(
                        f"{checkpoint}: journal entry for index {index} "
                        f"({entry.get('item_id')!r}) does not match the "
                        f"current input set"
                    )
        pending = [(i, items[i]) for i in range(len(items)) if i not in completed]
        payload_by_index = {i: item[1] for i, item in pending}
        quarantined: dict[int, str] = {}

        def handle(outcome: "ItemSuccess | ItemFailure") -> None:
            if (
                not outcome.ok
                and outcome.malformed
                and self._quarantine_dir is not None
            ):
                payload = payload_by_index.get(outcome.index)
                if isinstance(payload, (str, Path)):
                    dest = _quarantine_file(
                        Path(payload), outcome, self._quarantine_dir
                    )
                    quarantined[outcome.index] = str(dest)
                    outcome = replace(outcome, quarantined_to=str(dest))
            if ckpt is not None:
                ckpt.record(_outcome_entry(outcome))

        observe = ckpt is not None or self._quarantine_dir is not None
        started = time.perf_counter()
        try:
            with profiled("pipeline-run"), span(
                "pipeline.run",
                compressor=self.compressor_label,
                items=len(pending),
                workers=self.workers,
            ):
                raw = execute(
                    task,
                    [item for _, item in pending],
                    workers=self.workers,
                    chunk_size=self.chunk_size,
                    policy=self.policy,
                    malformed_mode=_malformed_exec_mode(self._malformed_mode),
                    indices=[i for i, _ in pending],
                    on_outcome=handle if observe else None,
                )
        finally:
            if ckpt is not None:
                ckpt.close()
        elapsed = time.perf_counter() - started
        merged: dict[int, ItemResult | ItemFailure] = {
            index: _entry_outcome(entry) for index, entry in completed.items()
        }
        for outcome in raw:
            if isinstance(outcome, ItemSuccess):
                merged[outcome.index] = self._to_item_result(outcome)
            elif outcome.index in quarantined:
                merged[outcome.index] = replace(
                    outcome, quarantined_to=quarantined[outcome.index]
                )
            else:
                merged[outcome.index] = outcome
        outcomes = [merged[index] for index in sorted(merged)]
        self._sample_metrics(metrics, outcomes, elapsed)
        if completed:
            metrics.counter("items_resumed").inc(len(completed))
        return BatchRunResult(
            compressor=self.compressor_label,
            workers=self.workers,
            on_error=str(self.policy),
            outcomes=outcomes,
            metrics=metrics,
            elapsed_s=elapsed,
            on_malformed=self.on_malformed,
            items_resumed=len(completed),
        )

    def _manifest(self, items: list[tuple[str, Any]]) -> dict[str, Any]:
        """What identifies a run for checkpoint-resume compatibility.

        Workers and chunking are deliberately absent: they change the
        schedule, never the results, so a run may resume with different
        parallelism.
        """
        return {
            "compressor": self.compressor_label,
            "on_error": str(self.policy),
            "evaluate": self.evaluate,
            "on_malformed": self.on_malformed,
            "item_ids": [item_id for item_id, _ in items],
        }

    @staticmethod
    def _to_item_result(outcome: ItemSuccess) -> ItemResult:
        sample = outcome.value
        report = sample["report"]
        return ItemResult(
            item_id=outcome.item_id,
            index=outcome.index,
            n_original=sample["n_original"],
            n_kept=sample["n_kept"],
            indices=np.asarray(sample["indices"], dtype=int),
            runtime_s=sample["runtime_s"],
            mean_sync_error_m=sample["mean_sync_error_m"],
            max_sync_error_m=sample["max_sync_error_m"],
            report=CompressionReport.from_dict(report) if report else None,
            attempts=outcome.attempts,
        )

    def _sample_metrics(
        self,
        metrics: Registry,
        outcomes: list["ItemResult | ItemFailure"],
        elapsed: float,
    ) -> None:
        """Aggregate one run's per-item samples into the registry."""
        metrics.timer("run_s").observe(elapsed)
        for outcome in outcomes:
            metrics.counter("items_in").inc()
            metrics.counter("attempts").inc(outcome.attempts)
            if not outcome.ok:
                metrics.counter("items_failed").inc()
                if outcome.quarantined_to is not None:
                    metrics.counter("items_quarantined").inc()
                continue
            metrics.counter("items_ok").inc()
            metrics.counter("points_in").inc(outcome.n_original)
            metrics.counter("points_kept").inc(outcome.n_kept)
            metrics.timer("compress_s").observe(outcome.runtime_s)
            metrics.histogram("points_in").observe(outcome.n_original)
            metrics.histogram("points_kept").observe(outcome.n_kept)
            if outcome.mean_sync_error_m is not None:
                metrics.histogram("mean_sync_error_m").observe(
                    outcome.mean_sync_error_m
                )


def load_fleet(
    source: Any,
    *,
    workers: int = 0,
    on_error: "FailurePolicy | str" = "raise",
    on_malformed: "str | None" = None,
) -> tuple[list[Trajectory], list[ItemFailure]]:
    """Load a fleet into memory with the engine's fault isolation.

    The CLI's analytics commands (``flow``) use this to parse many
    trajectory files — in parallel when ``workers > 1``, and skipping
    corrupt files under ``on_error="skip"`` instead of aborting.

    Args:
        source: the fleet (see :func:`iter_fleet`).
        workers: process-pool size (``0``/``1`` = inline).
        on_error: failure policy for load errors.
        on_malformed: ``None`` (default) lets unparsable files follow
            ``on_error``; ``"raise"``/``"skip"``/``"quarantine:<dir>"``
            dispatch them independently (quarantine moves the file aside
            with a ``.reason.json`` sidecar).

    Returns:
        ``(trajectories, failures)`` — loaded items in input order plus
        the structured failures (empty under ``"raise"``).
    """
    if on_malformed is None:
        mode: str | None = None
        quarantine_dir: Path | None = None
    else:
        try:
            mode, quarantine_dir = parse_on_malformed(on_malformed)
        except ValueError as exc:
            raise PipelineError(str(exc)) from exc
    items = list(iter_fleet(source))
    outcomes = execute(
        _LoadTask(),
        items,
        workers=workers,
        policy=FailurePolicy.parse(on_error),
        malformed_mode=_malformed_exec_mode(mode),
    )
    processed: list[ItemSuccess | ItemFailure] = []
    for outcome in outcomes:
        if not outcome.ok and outcome.malformed and quarantine_dir is not None:
            payload = items[outcome.index][1]
            if isinstance(payload, (str, Path)):
                dest = _quarantine_file(Path(payload), outcome, quarantine_dir)
                outcome = replace(outcome, quarantined_to=str(dest))
        processed.append(outcome)
    fleet = [o.value for o in processed if o.ok]
    failures = [o for o in processed if not o.ok]
    return fleet, failures
