"""The batch compression engine: fleets in, results + metrics out.

A :class:`BatchEngine` compresses a whole fleet of trajectories —
given as an in-memory iterable, a directory of trajectory files, or a
:class:`~repro.storage.store.TrajectoryStore` — through any registered
compressor, with:

* a process-pool parallel executor (``workers=N``) with chunked
  dispatch and deterministic, input-ordered results (a serial fallback
  runs inline for ``workers<=1``);
* per-item fault isolation: a failing or degenerate trajectory becomes
  a structured :class:`~repro.pipeline.executor.ItemFailure` under a
  configurable ``raise``/``skip``/``retry(n)`` policy instead of
  killing the run;
* an observability layer: per-item samples (points in/kept,
  synchronized error, compression time) aggregated into a
  :class:`~repro.pipeline.metrics.Metrics` registry and exported as
  JSON (``repro pipeline --metrics-json``).

Parallel determinism note: a compressor *instance* is pickled to the
workers as-is; a spec string or :class:`~repro.core.registry.CompressorSpec`
is shipped as data and rebuilt per item, which keeps worker processes
independent of driver-side state. Either way the algorithms are
deterministic, so ``workers=N`` selects byte-identical indices to the
serial path.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

import numpy as np

from repro.core.base import Compressor
from repro.core.registry import CompressorSpec, parse_compressor_spec
from repro.error.synchronized import (
    max_synchronized_error,
    mean_synchronized_error,
)
from repro.error.metrics import CompressionReport, evaluate_compression
from repro.exceptions import PipelineError
from repro.pipeline.executor import (
    FailurePolicy,
    ItemFailure,
    ItemSuccess,
    execute,
)
from repro.pipeline.metrics import Metrics
from repro.trajectory.trajectory import Trajectory

__all__ = [
    "BatchEngine",
    "BatchRunResult",
    "ItemResult",
    "iter_fleet",
    "load_fleet",
]

_FILE_SUFFIXES = (".csv", ".json", ".gpx")

#: Evaluation depths: nothing, synchronized error only, or full report.
_EVALUATE_MODES = ("none", "sync", "full")


def _load_path(path: Path) -> Trajectory:
    """Load one trajectory file by suffix (.csv/.json/.gpx)."""
    from repro.trajectory import gpx as _gpx
    from repro.trajectory import io as _io

    suffix = path.suffix.lower()
    if suffix == ".csv":
        return _io.read_csv(path, object_id=path.stem)
    if suffix == ".json":
        return _io.read_json(path)
    if suffix == ".gpx":
        return _gpx.read_gpx(path)
    raise PipelineError(
        f"unsupported trajectory format {suffix!r} (use .csv/.json/.gpx)"
    )


def iter_fleet(source: Any) -> Iterator[tuple[str, "Trajectory | Path"]]:
    """Normalize a fleet source into ``(item_id, payload)`` pairs.

    Accepted sources:

    * a directory path — every ``.csv``/``.json``/``.gpx`` file in it,
      sorted; payloads stay as paths so loading happens inside the
      engine's fault-isolation boundary (and in parallel workers);
    * a single file path;
    * a :class:`~repro.storage.store.TrajectoryStore` (anything with
      ``object_ids()`` and ``get()``), iterated in id order;
    * an iterable of :class:`~repro.trajectory.trajectory.Trajectory`
      objects, ``(item_id, trajectory)`` pairs, or file paths.

    Item ids come from the trajectory's ``object_id`` / the file stem /
    the store id; anonymous items fall back to ``item-<index>``.
    """
    if isinstance(source, (str, Path)):
        path = Path(source)
        if path.is_dir():
            files = sorted(
                p for p in path.iterdir()
                if p.suffix.lower() in _FILE_SUFFIXES
            )
            for file in files:
                yield file.stem, file
            return
        yield path.stem, path
        return
    if hasattr(source, "object_ids") and hasattr(source, "get"):
        for object_id in source.object_ids():
            yield object_id, source.get(object_id)
        return
    if isinstance(source, Trajectory):
        raise PipelineError(
            "pass a list of trajectories (or wrap the single trajectory "
            "in a list) — a bare Trajectory is not a fleet"
        )
    for index, entry in enumerate(source):
        if isinstance(entry, Trajectory):
            yield entry.object_id or f"item-{index:05d}", entry
        elif isinstance(entry, (str, Path)):
            path = Path(entry)
            yield path.stem, path
        elif isinstance(entry, tuple) and len(entry) == 2:
            item_id, payload = entry
            yield str(item_id), payload
        else:
            raise PipelineError(
                f"fleet entry {index} is {type(entry).__name__}; expected "
                f"a Trajectory, a path, or an (id, trajectory) pair"
            )


@dataclass(frozen=True)
class _LoadTask:
    """Picklable per-item loader used by :func:`load_fleet`."""

    def __call__(self, payload: "Trajectory | str | Path") -> Trajectory:
        """Return the payload as a trajectory, loading files by suffix."""
        if isinstance(payload, Trajectory):
            return payload
        return _load_path(Path(payload))


@dataclass(frozen=True)
class _CompressTask:
    """Picklable per-item compression task shipped to worker processes.

    Exactly one of ``spec`` / ``compressor`` is set. Specs are rebuilt
    into a fresh compressor per item (construction is cheap parameter
    validation); instances are pickled once per chunk by the executor.
    """

    spec: CompressorSpec | None
    compressor: Compressor | None
    evaluate: str

    def _build(self) -> Compressor:
        if self.spec is not None:
            return self.spec.build()
        assert self.compressor is not None
        return self.compressor

    def __call__(self, payload: "Trajectory | str | Path") -> dict[str, Any]:
        """Compress one item, returning a plain picklable sample dict."""
        traj = payload if isinstance(payload, Trajectory) else _load_path(Path(payload))
        compressor = self._build()
        started = time.perf_counter()
        result = compressor.compress(traj)
        runtime = time.perf_counter() - started
        sample: dict[str, Any] = {
            "n_original": result.n_original,
            "n_kept": result.n_kept,
            "indices": result.indices,
            "runtime_s": runtime,
            "mean_sync_error_m": None,
            "max_sync_error_m": None,
            "report": None,
        }
        if self.evaluate != "none" and len(traj) >= 2:
            approx = result.compressed
            if self.evaluate == "full":
                report = evaluate_compression(traj, approx)
                sample["report"] = report.to_dict()
                sample["mean_sync_error_m"] = report.mean_sync_error_m
                sample["max_sync_error_m"] = report.max_sync_error_m
            else:
                sample["mean_sync_error_m"] = mean_synchronized_error(traj, approx)
                sample["max_sync_error_m"] = max_synchronized_error(traj, approx)
        return sample


@dataclass(frozen=True)
class ItemResult:
    """One successfully compressed fleet item."""

    item_id: str
    index: int
    n_original: int
    n_kept: int
    indices: np.ndarray
    runtime_s: float
    mean_sync_error_m: float | None = None
    max_sync_error_m: float | None = None
    report: CompressionReport | None = None
    attempts: int = 1

    #: Discriminator shared with ItemFailure (`outcome.ok`).
    ok = True

    @property
    def compression_percent(self) -> float:
        """Percent of points removed for this item."""
        return 100.0 * (1.0 - self.n_kept / self.n_original)

    def __repr__(self) -> str:
        return (
            f"ItemResult({self.item_id}: {self.n_original} -> {self.n_kept}, "
            f"{self.compression_percent:.1f}%)"
        )


@dataclass
class BatchRunResult:
    """Everything one :meth:`BatchEngine.run` produced.

    ``outcomes`` holds one :class:`ItemResult` or
    :class:`~repro.pipeline.executor.ItemFailure` per input item, in
    input order; ``metrics`` the aggregated run instruments.
    """

    compressor: str
    workers: int
    on_error: str
    outcomes: list["ItemResult | ItemFailure"]
    metrics: Metrics
    elapsed_s: float

    @property
    def results(self) -> list[ItemResult]:
        """The successful items, in input order."""
        return [o for o in self.outcomes if o.ok]

    @property
    def failures(self) -> list[ItemFailure]:
        """The failed items, in input order."""
        return [o for o in self.outcomes if not o.ok]

    @property
    def n_items(self) -> int:
        """Total items processed."""
        return len(self.outcomes)

    def metrics_dict(self) -> dict[str, Any]:
        """The run's full JSON-ready metrics document.

        Schema: an ``engine`` header (compressor, workers, policy), a
        ``run`` summary (item counts, wall time), the ``metrics``
        instruments, and the structured ``failures`` list.
        """
        results = self.results
        return {
            "engine": {
                "compressor": self.compressor,
                "workers": self.workers,
                "on_error": self.on_error,
            },
            "run": {
                "n_items": self.n_items,
                "n_ok": len(results),
                "n_failed": len(self.failures),
                "elapsed_s": self.elapsed_s,
                "points_in": sum(r.n_original for r in results),
                "points_kept": sum(r.n_kept for r in results),
            },
            "metrics": self.metrics.to_dict(),
            "failures": [failure.to_dict() for failure in self.failures],
        }

    def write_metrics_json(self, path: "str | Path") -> None:
        """Write :meth:`metrics_dict` to ``path`` as indented JSON."""
        Path(path).write_text(json.dumps(self.metrics_dict(), indent=2) + "\n")

    def summary(self) -> str:
        """One-line human-readable run summary."""
        results = self.results
        points_in = sum(r.n_original for r in results)
        points_kept = sum(r.n_kept for r in results)
        percent = 100.0 * (1.0 - points_kept / points_in) if points_in else 0.0
        return (
            f"{self.compressor}: {len(results)}/{self.n_items} items ok, "
            f"{points_in} -> {points_kept} points ({percent:.1f}% removed) "
            f"in {self.elapsed_s:.2f}s ({self.workers or 1} worker(s))"
        )


class BatchEngine:
    """Compress a fleet of trajectories through one configured algorithm.

    Args:
        compressor: a :class:`~repro.core.base.Compressor` instance, a
            :class:`~repro.core.registry.CompressorSpec`, or a spec
            string such as ``"td-tr:epsilon=30"``.
        workers: ``0``/``1`` for the inline serial path, ``N > 1`` for a
            process pool (results are identical either way).
        chunk_size: items per dispatched chunk (default: balanced
            against ``workers``).
        on_error: ``"raise"`` (default), ``"skip"``, or ``"retry(n)"``
            — see :class:`~repro.pipeline.executor.FailurePolicy`.
        evaluate: ``"sync"`` (default) samples the paper's synchronized
            error per item; ``"full"`` attaches a complete
            :class:`~repro.error.metrics.CompressionReport`; ``"none"``
            skips error evaluation for maximum throughput. Booleans are
            accepted (``True`` = ``"sync"``, ``False`` = ``"none"``).

    Example::

        engine = BatchEngine("td-tr:epsilon=30", workers=4, on_error="skip")
        run = engine.run("fleet_dir/")
        print(run.summary())
        run.write_metrics_json("metrics.json")
    """

    def __init__(
        self,
        compressor: "Compressor | CompressorSpec | str",
        *,
        workers: int = 0,
        chunk_size: int | None = None,
        on_error: "FailurePolicy | str" = "raise",
        evaluate: "str | bool" = "sync",
    ) -> None:
        if isinstance(compressor, str):
            compressor = parse_compressor_spec(compressor)
        if isinstance(compressor, CompressorSpec):
            compressor.build()  # validate early: fail at engine build, not mid-run
            self._spec: CompressorSpec | None = compressor
            self._compressor: Compressor | None = None
            self.compressor_label = str(compressor)
        elif isinstance(compressor, Compressor):
            self._spec = None
            self._compressor = compressor
            self.compressor_label = repr(compressor)
        else:
            raise PipelineError(
                f"compressor must be a Compressor, CompressorSpec or spec "
                f"string, got {type(compressor).__name__}"
            )
        self.workers = int(workers)
        self.chunk_size = chunk_size
        self.policy = FailurePolicy.parse(on_error)
        if isinstance(evaluate, bool):
            evaluate = "sync" if evaluate else "none"
        if evaluate not in _EVALUATE_MODES:
            raise PipelineError(
                f"evaluate must be one of {_EVALUATE_MODES}, got {evaluate!r}"
            )
        self.evaluate = evaluate

    @property
    def compressor_name(self) -> str:
        """The registry name of the configured algorithm."""
        if self._spec is not None:
            return self._spec.name
        assert self._compressor is not None
        return self._compressor.name

    def run(self, source: Any, *, metrics: Metrics | None = None) -> BatchRunResult:
        """Compress every item of ``source`` (see :func:`iter_fleet`).

        Args:
            source: the fleet — iterable, directory, file, or store.
            metrics: an existing registry to aggregate into (a fresh one
                is created by default).

        Returns:
            A :class:`BatchRunResult` with input-ordered outcomes and
            the aggregated metrics.
        """
        metrics = metrics if metrics is not None else Metrics()
        items = list(iter_fleet(source))
        task = _CompressTask(self._spec, self._compressor, self.evaluate)
        started = time.perf_counter()
        raw = execute(
            task,
            items,
            workers=self.workers,
            chunk_size=self.chunk_size,
            policy=self.policy,
        )
        elapsed = time.perf_counter() - started
        outcomes: list[ItemResult | ItemFailure] = []
        for outcome in raw:
            if isinstance(outcome, ItemSuccess):
                outcomes.append(self._to_item_result(outcome))
            else:
                outcomes.append(outcome)
        self._sample_metrics(metrics, outcomes, elapsed)
        return BatchRunResult(
            compressor=self.compressor_label,
            workers=self.workers,
            on_error=str(self.policy),
            outcomes=outcomes,
            metrics=metrics,
            elapsed_s=elapsed,
        )

    @staticmethod
    def _to_item_result(outcome: ItemSuccess) -> ItemResult:
        sample = outcome.value
        report = sample["report"]
        return ItemResult(
            item_id=outcome.item_id,
            index=outcome.index,
            n_original=sample["n_original"],
            n_kept=sample["n_kept"],
            indices=np.asarray(sample["indices"], dtype=int),
            runtime_s=sample["runtime_s"],
            mean_sync_error_m=sample["mean_sync_error_m"],
            max_sync_error_m=sample["max_sync_error_m"],
            report=CompressionReport.from_dict(report) if report else None,
            attempts=outcome.attempts,
        )

    def _sample_metrics(
        self,
        metrics: Metrics,
        outcomes: list["ItemResult | ItemFailure"],
        elapsed: float,
    ) -> None:
        """Aggregate one run's per-item samples into the registry."""
        metrics.timer("run_s").observe(elapsed)
        for outcome in outcomes:
            metrics.counter("items_in").inc()
            metrics.counter("attempts").inc(outcome.attempts)
            if not outcome.ok:
                metrics.counter("items_failed").inc()
                continue
            metrics.counter("items_ok").inc()
            metrics.counter("points_in").inc(outcome.n_original)
            metrics.counter("points_kept").inc(outcome.n_kept)
            metrics.timer("compress_s").observe(outcome.runtime_s)
            metrics.histogram("points_in").observe(outcome.n_original)
            metrics.histogram("points_kept").observe(outcome.n_kept)
            if outcome.mean_sync_error_m is not None:
                metrics.histogram("mean_sync_error_m").observe(
                    outcome.mean_sync_error_m
                )


def load_fleet(
    source: Any,
    *,
    workers: int = 0,
    on_error: "FailurePolicy | str" = "raise",
) -> tuple[list[Trajectory], list[ItemFailure]]:
    """Load a fleet into memory with the engine's fault isolation.

    The CLI's analytics commands (``flow``) use this to parse many
    trajectory files — in parallel when ``workers > 1``, and skipping
    corrupt files under ``on_error="skip"`` instead of aborting.

    Returns:
        ``(trajectories, failures)`` — loaded items in input order plus
        the structured failures (empty under ``"raise"``).
    """
    items = list(iter_fleet(source))
    outcomes = execute(
        _LoadTask(), items, workers=workers, policy=FailurePolicy.parse(on_error)
    )
    fleet = [o.value for o in outcomes if o.ok]
    failures = [o for o in outcomes if not o.ok]
    return fleet, failures
