"""Fault-isolated serial and process-pool execution of per-item tasks.

The mechanics under the :class:`~repro.pipeline.engine.BatchEngine`,
kept generic so other layers (the storage ingestor, the CLI's fleet
loaders) can reuse them: run a picklable callable over a list of
``(item_id, payload)`` items, either inline or on a process pool with
chunked dispatch, and isolate per-item failures under a configurable
:class:`FailurePolicy`.

Guarantees:

* **Deterministic ordering** — results come back aligned with the input
  order regardless of worker scheduling (chunks are reassembled by
  chunk index).
* **Fault isolation** — under ``skip``/``retry`` policies an item that
  raises becomes a structured :class:`ItemFailure` (error class,
  item id, traceback summary, attempt count); the run continues.
* **Transparent errors** — under the ``raise`` policy the original
  exception propagates unchanged (process pools pickle exceptions back
  to the parent), with earliest-input-order preference when several
  items fail in parallel.
"""

from __future__ import annotations

import re
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.exceptions import PipelineError

__all__ = [
    "FailurePolicy",
    "ItemFailure",
    "ItemSuccess",
    "summarize_traceback",
    "execute",
]

_RETRY_PATTERN = re.compile(r"retry(?:\((\d+)\)|:(\d+))?")


@dataclass(frozen=True)
class FailurePolicy:
    """What to do when one item of a batch raises.

    Modes:

    * ``"raise"`` — let the exception propagate; the run aborts.
    * ``"skip"`` — record an :class:`ItemFailure`, keep going.
    * ``"retry"`` — re-run the item up to ``retries`` extra times, then
      record an :class:`ItemFailure` (it never aborts the run).

    The string forms ``"raise"``, ``"skip"``, ``"retry"``,
    ``"retry(3)"`` and ``"retry:3"`` parse via :meth:`parse`.
    """

    mode: str
    retries: int = 0

    def __post_init__(self) -> None:
        if self.mode not in ("raise", "skip", "retry"):
            raise PipelineError(
                f"unknown failure mode {self.mode!r}; "
                f"use 'raise', 'skip' or 'retry'"
            )
        if self.retries < 0:
            raise PipelineError(f"retries must be >= 0, got {self.retries}")

    @classmethod
    def parse(cls, value: "FailurePolicy | str") -> "FailurePolicy":
        """Coerce a policy string (or pass a policy through unchanged)."""
        if isinstance(value, FailurePolicy):
            return value
        text = str(value).strip().lower()
        if text in ("raise", "skip"):
            return cls(text)
        match = _RETRY_PATTERN.fullmatch(text)
        if match:
            count = match.group(1) or match.group(2)
            return cls("retry", int(count) if count is not None else 1)
        raise PipelineError(
            f"unknown failure policy {value!r}; "
            f"use 'raise', 'skip' or 'retry(n)'"
        )

    @property
    def attempts(self) -> int:
        """Total tries per item (1, plus ``retries`` in retry mode)."""
        return self.retries + 1 if self.mode == "retry" else 1

    def __str__(self) -> str:
        return f"retry({self.retries})" if self.mode == "retry" else self.mode


def summarize_traceback(exc: BaseException, limit: int = 3) -> str:
    """Compact one-line summary of an exception's deepest frames.

    Keeps the last ``limit`` frames as ``file:line in func`` hops — enough
    to locate a failure in a metrics report without shipping full
    tracebacks across process boundaries.
    """
    frames = traceback.extract_tb(exc.__traceback__)[-limit:]
    hops = " <- ".join(
        f"{frame.filename.rsplit('/', 1)[-1]}:{frame.lineno} in {frame.name}"
        for frame in reversed(frames)
    )
    head = f"{type(exc).__name__}: {exc}"
    return f"{head} [{hops}]" if hops else head


@dataclass(frozen=True)
class ItemFailure:
    """Structured record of one item that failed all its attempts."""

    item_id: str
    index: int
    error_type: str
    message: str
    traceback_summary: str
    attempts: int

    #: Discriminator shared with success records (`outcome.ok`).
    ok = False

    def to_dict(self) -> dict[str, object]:
        """JSON-ready dict (what lands in the run's metrics export)."""
        return {
            "item_id": self.item_id,
            "index": self.index,
            "error_type": self.error_type,
            "message": self.message,
            "traceback_summary": self.traceback_summary,
            "attempts": self.attempts,
        }


@dataclass(frozen=True)
class ItemSuccess:
    """One item's successful result, tagged with its id and input index."""

    item_id: str
    index: int
    value: Any
    attempts: int = 1

    #: Discriminator shared with failure records (`outcome.ok`).
    ok = True


def _run_item(
    fn: Callable[[Any], Any],
    item_id: str,
    index: int,
    payload: Any,
    policy: FailurePolicy,
) -> ItemSuccess | ItemFailure:
    """Run one item under the policy. ``raise`` mode lets errors escape."""
    last: BaseException | None = None
    for attempt in range(1, policy.attempts + 1):
        try:
            return ItemSuccess(item_id, index, fn(payload), attempt)
        except Exception as exc:  # noqa: BLE001 - isolation boundary
            if policy.mode == "raise":
                raise
            last = exc
    assert last is not None
    return ItemFailure(
        item_id=item_id,
        index=index,
        error_type=type(last).__name__,
        message=str(last),
        traceback_summary=summarize_traceback(last),
        attempts=policy.attempts,
    )


def _run_chunk(
    fn: Callable[[Any], Any],
    chunk: list[tuple[int, str, Any]],
    policy: FailurePolicy,
) -> list[ItemSuccess | ItemFailure]:
    """Worker entry point: process one chunk of (index, id, payload)."""
    return [
        _run_item(fn, item_id, index, payload, policy)
        for index, item_id, payload in chunk
    ]


def _chunked(
    items: list[tuple[int, str, Any]], chunk_size: int
) -> list[list[tuple[int, str, Any]]]:
    return [items[i : i + chunk_size] for i in range(0, len(items), chunk_size)]


def execute(
    fn: Callable[[Any], Any],
    items: Sequence[tuple[str, Any]],
    *,
    workers: int = 0,
    chunk_size: int | None = None,
    policy: FailurePolicy | str = "raise",
) -> list[ItemSuccess | ItemFailure]:
    """Run ``fn`` over every ``(item_id, payload)`` item, in order.

    Args:
        fn: a single-argument callable applied to each payload. Must be
            picklable (a module-level function or an instance of a
            module-level class) when ``workers > 1``.
        items: ``(item_id, payload)`` pairs; ids label failures and
            results but need not be unique.
        workers: ``0`` or ``1`` runs inline (serial fallback); ``N > 1``
            uses a process pool of ``N`` workers with chunked dispatch.
        chunk_size: items per dispatched chunk; defaults to roughly four
            chunks per worker to balance load against dispatch overhead.
        policy: see :class:`FailurePolicy`.

    Returns:
        One :class:`ItemSuccess` or :class:`ItemFailure` per input item,
        in input order — identical regardless of ``workers``.
    """
    policy = FailurePolicy.parse(policy)
    indexed = [
        (index, item_id, payload)
        for index, (item_id, payload) in enumerate(items)
    ]
    if workers <= 1 or len(indexed) <= 1:
        return _run_chunk(fn, indexed, policy)
    if chunk_size is None:
        chunk_size = max(1, -(-len(indexed) // (workers * 4)))
    chunks = _chunked(indexed, chunk_size)
    outcomes: list[ItemSuccess | ItemFailure] = []
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [pool.submit(_run_chunk, fn, chunk, policy) for chunk in chunks]
        # Collect in chunk (= input) order: deterministic results, and
        # under the raise policy the earliest-input failure surfaces.
        for future in futures:
            outcomes.extend(future.result())
    return outcomes
