"""Fault-isolated serial and process-pool execution of per-item tasks.

The mechanics under the :class:`~repro.pipeline.engine.BatchEngine`,
kept generic so other layers (the storage ingestor, the CLI's fleet
loaders) can reuse them: run a picklable callable over a list of
``(item_id, payload)`` items, either inline or on a process pool with
chunked dispatch, and isolate per-item failures under a configurable
:class:`FailurePolicy`.

Guarantees:

* **Deterministic ordering** — results come back aligned with the input
  order regardless of worker scheduling (chunks are reassembled by
  chunk index).
* **Fault isolation** — under ``skip``/``retry`` policies an item that
  raises becomes a structured :class:`ItemFailure` (error class,
  item id, traceback summary, attempt count); the run continues.
* **Transparent errors** — under the ``raise`` policy the original
  exception propagates unchanged (process pools pickle exceptions back
  to the parent), with earliest-input-order preference when several
  items fail in parallel.
"""

from __future__ import annotations

import re
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.exceptions import PipelineError
from repro.io_util import crc32_text

__all__ = [
    "FailurePolicy",
    "ItemFailure",
    "ItemSuccess",
    "MalformedItemError",
    "summarize_traceback",
    "execute",
]

_RETRY_PATTERN = re.compile(
    r"retry(?:\((\d+)(?:\s*,\s*backoff\s*=\s*([0-9]*\.?[0-9]+))?\)|:(\d+))?"
)

#: Sleep hook for retry backoff — module-level so tests can inject a
#: recorder and run instantly (``executor._sleep = fake``).
_sleep = time.sleep


class MalformedItemError(PipelineError):
    """A task's signal that an item's *input* is unusable.

    Raised by loaders (corrupt CSV/GPX/JSON, undecodable blobs) to
    distinguish "this input is bad" from "this computation failed".
    Malformed items are never retried — retrying cannot fix bad bytes —
    and they are dispatched on the executor's ``malformed_mode``, not
    the failure policy. ``cause`` carries the original parse error.
    """

    def __init__(self, message: str, cause: "BaseException | None" = None) -> None:
        super().__init__(message)
        self.cause = cause


@dataclass(frozen=True)
class FailurePolicy:
    """What to do when one item of a batch raises.

    Modes:

    * ``"raise"`` — let the exception propagate; the run aborts.
    * ``"skip"`` — record an :class:`ItemFailure`, keep going.
    * ``"retry"`` — re-run the item up to ``retries`` extra times, then
      record an :class:`ItemFailure` (it never aborts the run).

    Retries optionally back off exponentially: ``backoff`` is the base
    delay in seconds before the second attempt, doubling per further
    attempt and scaled by a *deterministic* jitter in ``[0.5, 1.5)``
    derived from the item id — reruns of the same input sleep the same
    schedule, so runs stay reproducible.

    The string forms ``"raise"``, ``"skip"``, ``"retry"``,
    ``"retry(3)"``, ``"retry:3"`` and ``"retry(3,backoff=0.1)"`` parse
    via :meth:`parse`.
    """

    mode: str
    retries: int = 0
    backoff: float = 0.0

    def __post_init__(self) -> None:
        if self.mode not in ("raise", "skip", "retry"):
            raise PipelineError(
                f"unknown failure mode {self.mode!r}; "
                f"use 'raise', 'skip' or 'retry'"
            )
        if self.retries < 0:
            raise PipelineError(f"retries must be >= 0, got {self.retries}")
        if self.backoff < 0:
            raise PipelineError(f"backoff must be >= 0, got {self.backoff}")

    @classmethod
    def parse(cls, value: "FailurePolicy | str") -> "FailurePolicy":
        """Coerce a policy string (or pass a policy through unchanged)."""
        if isinstance(value, FailurePolicy):
            return value
        text = str(value).strip().lower()
        if text in ("raise", "skip"):
            return cls(text)
        match = _RETRY_PATTERN.fullmatch(text)
        if match:
            count = match.group(1) or match.group(3)
            backoff = match.group(2)
            return cls(
                "retry",
                int(count) if count is not None else 1,
                float(backoff) if backoff is not None else 0.0,
            )
        raise PipelineError(
            f"unknown failure policy {value!r}; "
            f"use 'raise', 'skip', 'retry(n)' or 'retry(n,backoff=s)'"
        )

    @property
    def attempts(self) -> int:
        """Total tries per item (1, plus ``retries`` in retry mode)."""
        return self.retries + 1 if self.mode == "retry" else 1

    def retry_delay(self, item_id: str, attempt: int) -> float:
        """Seconds to sleep before retry ``attempt`` (attempts are 1-based,
        so the first retry is attempt 2).

        Exponential in the attempt number, with deterministic per-item
        jitter: two items that fail together do not hammer a shared
        resource in lockstep, yet rerunning the same item reproduces the
        same schedule.
        """
        if self.backoff <= 0 or attempt <= 1:
            return 0.0
        jitter = 0.5 + crc32_text(f"{item_id}#{attempt}") / 2**32
        return self.backoff * 2 ** (attempt - 2) * jitter

    def __str__(self) -> str:
        if self.mode != "retry":
            return self.mode
        if self.backoff > 0:
            return f"retry({self.retries},backoff={self.backoff:g})"
        return f"retry({self.retries})"


def summarize_traceback(exc: BaseException, limit: int = 3) -> str:
    """Compact one-line summary of an exception's deepest frames.

    Keeps the last ``limit`` frames as ``file:line in func`` hops — enough
    to locate a failure in a metrics report without shipping full
    tracebacks across process boundaries.
    """
    frames = traceback.extract_tb(exc.__traceback__)[-limit:]
    hops = " <- ".join(
        f"{frame.filename.rsplit('/', 1)[-1]}:{frame.lineno} in {frame.name}"
        for frame in reversed(frames)
    )
    head = f"{type(exc).__name__}: {exc}"
    return f"{head} [{hops}]" if hops else head


@dataclass(frozen=True)
class ItemFailure:
    """Structured record of one item that failed all its attempts.

    ``malformed`` marks failures whose *input* was unusable (the task
    raised :class:`MalformedItemError`); ``quarantined_to`` is set by
    the engine when such an input was moved to a quarantine directory.
    """

    item_id: str
    index: int
    error_type: str
    message: str
    traceback_summary: str
    attempts: int
    malformed: bool = False
    quarantined_to: str | None = None

    #: Discriminator shared with success records (`outcome.ok`).
    ok = False

    def to_dict(self) -> dict[str, object]:
        """JSON-ready dict (what lands in the run's metrics export)."""
        out: dict[str, object] = {
            "item_id": self.item_id,
            "index": self.index,
            "error_type": self.error_type,
            "message": self.message,
            "traceback_summary": self.traceback_summary,
            "attempts": self.attempts,
        }
        if self.malformed:
            out["malformed"] = True
        if self.quarantined_to is not None:
            out["quarantined_to"] = self.quarantined_to
        return out


@dataclass(frozen=True)
class ItemSuccess:
    """One item's successful result, tagged with its id and input index."""

    item_id: str
    index: int
    value: Any
    attempts: int = 1

    #: Discriminator shared with failure records (`outcome.ok`).
    ok = True


def _run_item(
    fn: Callable[[Any], Any],
    item_id: str,
    index: int,
    payload: Any,
    policy: FailurePolicy,
    malformed_mode: str = "defer",
) -> ItemSuccess | ItemFailure:
    """Run one item under the policy. ``raise`` mode lets errors escape.

    ``malformed_mode`` decides what a :class:`MalformedItemError` does:

    * ``"defer"`` (default) — the wrapped cause is treated like any
      other failure under the policy (legacy behaviour);
    * ``"raise"`` — the cause always propagates, aborting the run even
      under ``skip``/``retry`` policies;
    * ``"isolate"`` — it immediately becomes a ``malformed``
      :class:`ItemFailure`, never retried (bad bytes don't heal) and
      never aborting, even under the ``raise`` policy.
    """
    last: BaseException | None = None
    for attempt in range(1, policy.attempts + 1):
        try:
            return ItemSuccess(item_id, index, fn(payload), attempt)
        except MalformedItemError as exc:
            cause = exc.cause if exc.cause is not None else exc
            if malformed_mode == "raise":
                raise cause
            if malformed_mode == "isolate":
                return ItemFailure(
                    item_id=item_id,
                    index=index,
                    error_type=type(cause).__name__,
                    message=str(cause),
                    traceback_summary=summarize_traceback(cause),
                    attempts=attempt,
                    malformed=True,
                )
            if policy.mode == "raise":
                raise cause
            last = cause
        except Exception as exc:  # noqa: BLE001 - isolation boundary
            if policy.mode == "raise":
                raise
            last = exc
        if attempt < policy.attempts:
            delay = policy.retry_delay(item_id, attempt + 1)
            if delay > 0:
                _sleep(delay)
    assert last is not None
    return ItemFailure(
        item_id=item_id,
        index=index,
        error_type=type(last).__name__,
        message=str(last),
        traceback_summary=summarize_traceback(last),
        attempts=policy.attempts,
    )


def _run_chunk(
    fn: Callable[[Any], Any],
    chunk: list[tuple[int, str, Any]],
    policy: FailurePolicy,
    malformed_mode: str = "defer",
) -> list[ItemSuccess | ItemFailure]:
    """Worker entry point: process one chunk of (index, id, payload)."""
    return [
        _run_item(fn, item_id, index, payload, policy, malformed_mode)
        for index, item_id, payload in chunk
    ]


def _chunked(
    items: list[tuple[int, str, Any]], chunk_size: int
) -> list[list[tuple[int, str, Any]]]:
    return [items[i : i + chunk_size] for i in range(0, len(items), chunk_size)]


def execute(
    fn: Callable[[Any], Any],
    items: Sequence[tuple[str, Any]],
    *,
    workers: int = 0,
    chunk_size: int | None = None,
    policy: FailurePolicy | str = "raise",
    malformed_mode: str = "defer",
    indices: Sequence[int] | None = None,
    on_outcome: "Callable[[ItemSuccess | ItemFailure], None] | None" = None,
) -> list[ItemSuccess | ItemFailure]:
    """Run ``fn`` over every ``(item_id, payload)`` item, in order.

    Args:
        fn: a single-argument callable applied to each payload. Must be
            picklable (a module-level function or an instance of a
            module-level class) when ``workers > 1``.
        items: ``(item_id, payload)`` pairs; ids label failures and
            results but need not be unique.
        workers: ``0`` or ``1`` runs inline (serial fallback); ``N > 1``
            uses a process pool of ``N`` workers with chunked dispatch.
        chunk_size: items per dispatched chunk; defaults to roughly four
            chunks per worker to balance load against dispatch overhead.
        policy: see :class:`FailurePolicy`.
        malformed_mode: what a task's :class:`MalformedItemError` does —
            ``"defer"`` (default) applies the failure policy to its
            cause, ``"raise"`` always propagates it, ``"isolate"``
            always records a ``malformed`` :class:`ItemFailure`.
        indices: the outcome ``index`` to assign each item, when the
            caller is running a *subset* of a larger input (a resumed
            checkpointed run); defaults to ``0..len(items)-1``.
        on_outcome: called once per outcome, in input order, as soon as
            the outcome is available (per item on the serial path, per
            collected chunk on the pool path). The checkpoint journal
            hangs off this hook.

    Returns:
        One :class:`ItemSuccess` or :class:`ItemFailure` per input item,
        in input order — identical regardless of ``workers``.
    """
    policy = FailurePolicy.parse(policy)
    if malformed_mode not in ("defer", "raise", "isolate"):
        raise PipelineError(
            f"malformed_mode must be 'defer', 'raise' or 'isolate', "
            f"got {malformed_mode!r}"
        )
    if indices is not None and len(indices) != len(items):
        raise PipelineError(
            f"indices has {len(indices)} entries for {len(items)} items"
        )
    indexed = [
        (indices[position] if indices is not None else position, item_id, payload)
        for position, (item_id, payload) in enumerate(items)
    ]
    if workers <= 1 or len(indexed) <= 1:
        if on_outcome is None:
            return _run_chunk(fn, indexed, policy, malformed_mode)
        outcomes: list[ItemSuccess | ItemFailure] = []
        for index, item_id, payload in indexed:
            outcome = _run_item(fn, item_id, index, payload, policy, malformed_mode)
            on_outcome(outcome)
            outcomes.append(outcome)
        return outcomes
    if chunk_size is None:
        chunk_size = max(1, -(-len(indexed) // (workers * 4)))
    chunks = _chunked(indexed, chunk_size)
    outcomes = []
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [
            pool.submit(_run_chunk, fn, chunk, policy, malformed_mode)
            for chunk in chunks
        ]
        # Collect in chunk (= input) order: deterministic results, and
        # under the raise policy the earliest-input failure surfaces.
        for future in futures:
            for outcome in future.result():
                if on_outcome is not None:
                    on_outcome(outcome)
                outcomes.append(outcome)
    return outcomes
