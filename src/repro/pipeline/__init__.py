"""Batch compression pipeline: parallel execution, fault isolation, metrics.

The fleet-scale layer over :mod:`repro.core`: a
:class:`~repro.pipeline.engine.BatchEngine` compresses an iterable /
directory / store of trajectories through any registered compressor on
a process pool (or inline), isolates per-item failures under a
``raise``/``skip``/``retry(n)`` policy, and aggregates per-item samples
into a JSON-exportable :class:`~repro.obs.Registry` (the deprecated
``Metrics`` alias remains for one release). The experiment harness
(:func:`repro.experiments.run_sweep`),
the storage ingestor and the ``repro pipeline`` / ``flow`` / ``table2``
CLI commands all run on this one code path.
"""

from repro.pipeline.checkpoint import RunCheckpoint, read_manifest
from repro.pipeline.engine import (
    BatchEngine,
    BatchRunResult,
    ItemResult,
    iter_fleet,
    load_fleet,
)
from repro.pipeline.executor import (
    FailurePolicy,
    ItemFailure,
    ItemSuccess,
    MalformedItemError,
    execute,
    summarize_traceback,
)
from repro.pipeline.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Histogram,
    Metrics,
    Registry,
    Timer,
)

__all__ = [
    "BatchEngine",
    "BatchRunResult",
    "Counter",
    "DEFAULT_BUCKETS",
    "FailurePolicy",
    "Histogram",
    "ItemFailure",
    "ItemResult",
    "ItemSuccess",
    "MalformedItemError",
    "Metrics",
    "Registry",
    "RunCheckpoint",
    "Timer",
    "execute",
    "iter_fleet",
    "load_fleet",
    "read_manifest",
    "summarize_traceback",
]
