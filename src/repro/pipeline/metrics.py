"""Lightweight runtime metrics: counters, timers, histograms.

The observability layer of the batch pipeline. A :class:`Metrics`
registry owns named instruments; the :class:`~repro.pipeline.engine.BatchEngine`
samples one set of observations per processed item (points in, points
kept, synchronized error, compression time) and aggregates them per run.
Everything exports to plain JSON-ready dicts — no external metrics
dependency, negligible overhead per observation.

The JSON schema (see ``docs/PIPELINE.md``)::

    {
      "counters":   {"<name>": <int>},
      "timers":     {"<name>": {"count", "total_s", "mean_s", "max_s"}},
      "histograms": {"<name>": {"count", "sum", "min", "max", "mean",
                                "buckets": [{"le": <upper>, "count": <n>}, ...],
                                "overflow": <n>}}
    }
"""

from __future__ import annotations

import bisect
import time
from contextlib import contextmanager
from typing import Iterator, Sequence

__all__ = ["Counter", "Timer", "Histogram", "Metrics", "DEFAULT_BUCKETS"]

#: Default histogram bucket upper bounds: a 1-2-5 geometric ladder wide
#: enough for point counts (1..100k) and metre-scale errors alike.
DEFAULT_BUCKETS: tuple[float, ...] = (
    1, 2, 5, 10, 20, 50, 100, 200, 500,
    1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000,
)


class Counter:
    """A monotonically increasing integer counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1) to the counter."""
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Timer:
    """Accumulates durations: observation count, total and maximum."""

    __slots__ = ("name", "count", "total_s", "max_s")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total_s = 0.0
        self.max_s = 0.0

    def observe(self, seconds: float) -> None:
        """Record one duration in seconds."""
        seconds = float(seconds)
        self.count += 1
        self.total_s += seconds
        self.max_s = max(self.max_s, seconds)

    @contextmanager
    def time(self) -> Iterator[None]:
        """Context manager measuring the wrapped block with a monotonic clock."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.observe(time.perf_counter() - started)

    @property
    def mean_s(self) -> float:
        """Mean observed duration (0 when nothing was observed)."""
        return self.total_s / self.count if self.count else 0.0

    def to_dict(self) -> dict[str, float | int]:
        """JSON-ready summary of the timer."""
        return {
            "count": self.count,
            "total_s": self.total_s,
            "mean_s": self.mean_s,
            "max_s": self.max_s,
        }

    def __repr__(self) -> str:
        return f"Timer({self.name}: n={self.count}, total={self.total_s:.3f}s)"


class Histogram:
    """A fixed-bucket histogram with min/max/sum tracking.

    Buckets are defined by their upper bounds (inclusive); values above
    the last bound land in an overflow bucket.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "overflow",
                 "count", "total", "min", "max")

    def __init__(self, name: str, buckets: Sequence[float] | None = None) -> None:
        self.name = name
        bounds = tuple(float(b) for b in (buckets or DEFAULT_BUCKETS))
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram buckets must be strictly increasing: {bounds}")
        self.bounds = bounds
        self.bucket_counts = [0] * len(bounds)
        self.overflow = 0
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        """Record one value."""
        value = float(value)
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        slot = bisect.bisect_left(self.bounds, value)
        if slot >= len(self.bounds):
            self.overflow += 1
        else:
            self.bucket_counts[slot] += 1

    @property
    def mean(self) -> float:
        """Mean observed value (0 when nothing was observed)."""
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict[str, object]:
        """JSON-ready summary: stats plus per-bucket counts."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
            "buckets": [
                {"le": bound, "count": n}
                for bound, n in zip(self.bounds, self.bucket_counts)
            ],
            "overflow": self.overflow,
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name}: n={self.count}, mean={self.mean:.3g})"


class Metrics:
    """A registry of named counters, timers and histograms.

    Instruments are created on first use (get-or-create semantics), so
    call sites never need to pre-declare what they observe::

        metrics = Metrics()
        metrics.counter("items_ok").inc()
        with metrics.timer("compress_s").time():
            ...
        metrics.histogram("points_in").observe(1810)
        json.dumps(metrics.to_dict())
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._timers: dict[str, Timer] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def timer(self, name: str) -> Timer:
        """Get or create the timer called ``name``."""
        timer = self._timers.get(name)
        if timer is None:
            timer = self._timers[name] = Timer(name)
        return timer

    def histogram(self, name: str, buckets: Sequence[float] | None = None) -> Histogram:
        """Get or create the histogram called ``name``.

        ``buckets`` is honoured only on creation; later calls return the
        existing instrument unchanged.
        """
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(name, buckets)
        return histogram

    def to_dict(self) -> dict[str, dict[str, object]]:
        """Export every instrument as one JSON-ready dict."""
        return {
            "counters": {
                name: counter.value
                for name, counter in sorted(self._counters.items())
            },
            "timers": {
                name: timer.to_dict()
                for name, timer in sorted(self._timers.items())
            },
            "histograms": {
                name: histogram.to_dict()
                for name, histogram in sorted(self._histograms.items())
            },
        }

    def __repr__(self) -> str:
        return (
            f"Metrics({len(self._counters)} counters, "
            f"{len(self._timers)} timers, {len(self._histograms)} histograms)"
        )
