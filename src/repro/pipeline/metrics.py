"""Deprecated shim: the metrics layer moved to :mod:`repro.obs`.

What used to live here — :class:`Counter`, :class:`Timer`,
:class:`Histogram` and the ``Metrics`` registry — grew into the
process-wide observability layer of :mod:`repro.obs` (which adds gauges,
tracing spans, profiling hooks and Prometheus exposition). The
instrument classes are re-exported unchanged; :class:`Metrics` remains
as a one-release compatibility alias for :class:`repro.obs.Registry`
that warns on construction. New code should use::

    from repro.obs import Registry

The JSON export schema is unchanged (``counters`` / ``timers`` /
``histograms``, now plus ``gauges``); see ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import warnings

from repro.obs.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Histogram,
    Registry,
    Timer,
)

__all__ = ["Counter", "Timer", "Histogram", "Metrics", "Registry", "DEFAULT_BUCKETS"]


class Metrics(Registry):
    """Deprecated alias of :class:`repro.obs.Registry` (one release)."""

    def __init__(self) -> None:
        warnings.warn(
            "repro.pipeline.metrics.Metrics is deprecated and will be removed "
            "in the next release; use repro.obs.Registry instead",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__()
