"""Unified observability: metrics registry, tracing spans, profiling.

One stdlib-only layer shared by every subsystem (see
``docs/OBSERVABILITY.md``):

* :class:`Registry` — named counters, gauges, timers and fixed-bucket
  histograms with get-or-create semantics; the generalization of the
  old ``repro.pipeline.metrics.Metrics`` (which remains as a deprecated
  shim). Explicit registries (pipeline runs, serve instances) are
  always live; the ambient :func:`get_registry` that the kernel and
  storage layers sample into is opt-in (``REPRO_OBS=1`` /
  :func:`enable`) so library calls stay near-zero overhead by default.
* :func:`span` — tracing context managers with monotonic timing,
  parent/child nesting and a bounded ring buffer (``REPRO_TRACE=1`` /
  :func:`configure_tracing`).
* :func:`profiled` — opt-in cProfile snapshots of kernel calls and
  pipeline stages (``REPRO_PROFILE=1``), written atomically.
* :func:`render_prometheus` — Prometheus text exposition of any
  registry or its JSON export (``repro obs dump``).
"""

from repro.obs.export import merge_shard_metrics, render_prometheus
from repro.obs.profiling import (
    PROFILE_DIR_ENV_VAR,
    PROFILE_ENV_VAR,
    profile_dir,
    profiled,
    profiling_enabled,
)
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    LATENCY_BUCKETS_MS,
    OBS_ENV_VAR,
    Counter,
    Gauge,
    Histogram,
    Registry,
    Timer,
    disable,
    enable,
    get_registry,
    set_registry,
)
from repro.obs.tracing import (
    DEFAULT_RING_SIZE,
    TRACE_ENV_VAR,
    clear_spans,
    configure_tracing,
    current_span,
    recent_spans,
    span,
    tracing_enabled,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "Timer",
    "DEFAULT_BUCKETS",
    "LATENCY_BUCKETS_MS",
    "DEFAULT_RING_SIZE",
    "OBS_ENV_VAR",
    "TRACE_ENV_VAR",
    "PROFILE_ENV_VAR",
    "PROFILE_DIR_ENV_VAR",
    "get_registry",
    "set_registry",
    "enable",
    "disable",
    "span",
    "tracing_enabled",
    "configure_tracing",
    "current_span",
    "recent_spans",
    "clear_spans",
    "profiled",
    "profiling_enabled",
    "profile_dir",
    "merge_shard_metrics",
    "render_prometheus",
]
