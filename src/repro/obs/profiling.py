"""Opt-in cProfile hooks around kernel calls and pipeline stages.

Profiling is a heavyweight lens, so it is gated twice: nothing happens
unless the ``REPRO_PROFILE`` environment variable is truthy at the time
a profiled block runs, and each snapshot is scoped to one named block
rather than the whole process. With profiling on::

    REPRO_PROFILE=1 repro pipeline fleet/ --spec td-tr:epsilon=30

every wrapped block (``Compressor.compress``, ``BatchEngine.run``)
writes one ``<name>-<pid>-<seq>.prof`` snapshot into
``REPRO_PROFILE_DIR`` (default ``./profiles``), atomically via
:func:`repro.io_util.write_atomic` — a crash mid-dump never leaves a
torn file. Snapshots are standard :mod:`pstats` marshal dumps::

    python -m pstats profiles/compress-td-tr-12345-0001.prof
"""

from __future__ import annotations

import marshal
import os
import re
import threading
from pathlib import Path
from typing import Iterator

from contextlib import contextmanager

from repro.io_util import write_atomic

__all__ = [
    "PROFILE_ENV_VAR",
    "PROFILE_DIR_ENV_VAR",
    "profiling_enabled",
    "profile_dir",
    "profiled",
]

#: Environment variable enabling the profiling hooks (``1``/``true``/...).
PROFILE_ENV_VAR = "REPRO_PROFILE"

#: Environment variable naming the snapshot directory (default
#: ``./profiles``).
PROFILE_DIR_ENV_VAR = "REPRO_PROFILE_DIR"

_seq_lock = threading.Lock()
_seq = 0


def profiling_enabled() -> bool:
    """Whether profiled blocks currently record cProfile snapshots."""
    value = os.environ.get(PROFILE_ENV_VAR)
    return value is not None and value.strip().lower() in ("1", "true", "yes", "on")


def profile_dir() -> Path:
    """The directory profile snapshots are written into."""
    return Path(os.environ.get(PROFILE_DIR_ENV_VAR) or "profiles")


def _next_seq() -> int:
    global _seq
    with _seq_lock:
        _seq += 1
        return _seq


def _snapshot_path(name: str) -> Path:
    safe = re.sub(r"[^A-Za-z0-9_.-]+", "-", name).strip("-") or "block"
    return profile_dir() / f"{safe}-{os.getpid()}-{_next_seq():04d}.prof"


@contextmanager
def profiled(name: str) -> Iterator[None]:
    """Profile the wrapped block when ``REPRO_PROFILE`` is on.

    A no-op otherwise. The snapshot is a :mod:`pstats`-loadable marshal
    dump written atomically; profiling errors never mask the block's own
    exceptions.
    """
    if not profiling_enabled():
        yield
        return
    import cProfile

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield
    finally:
        profiler.disable()
        profiler.create_stats()
        path = _snapshot_path(name)
        path.parent.mkdir(parents=True, exist_ok=True)
        write_atomic(path, marshal.dumps(profiler.stats), durable=False)
