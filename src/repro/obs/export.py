"""Exporters: JSON (the historical schema) and Prometheus text.

The JSON form is simply :meth:`repro.obs.registry.Registry.to_dict` —
byte-compatible with what the batch pipeline has always written (plus
the additive ``gauges`` category). This module adds the Prometheus text
exposition format (version 0.0.4) so a scrape target or ``repro obs
dump`` can publish the same instruments:

* counters become ``repro_<name>_total``;
* gauges become ``repro_<name>``;
* timers become summaries (``_count`` / ``_sum``) plus a ``_max`` gauge;
* histograms become classic cumulative-bucket histograms
  (``_bucket{le="..."}`` rising to ``le="+Inf"``, ``_sum``, ``_count``).

:func:`render_prometheus` accepts either a live :class:`Registry` or its
dict export, which is what lets a *client* render metrics fetched over
the serve protocol's ``stats`` verb without holding the registry.
"""

from __future__ import annotations

import math
import re
from typing import Any, Mapping

from repro.obs.registry import Registry

__all__ = ["merge_shard_metrics", "render_prometheus"]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_LEADING_DIGIT_RE = re.compile(r"^[0-9]")


def _metric_name(name: str, prefix: str) -> str:
    """Sanitize an instrument name into a legal Prometheus metric name."""
    flat = _NAME_RE.sub("_", name)
    if _LEADING_DIGIT_RE.match(flat):
        flat = f"_{flat}"
    return f"{prefix}_{flat}" if prefix else flat


def _format_value(value: float) -> str:
    if isinstance(value, float):
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if value != value:  # NaN
            return "NaN"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
    return repr(value)


def _merge_timer(merged: dict, timer: Mapping[str, Any]) -> dict:
    count = merged["count"] + timer["count"]
    total = merged["total_s"] + timer["total_s"]
    return {
        "count": count,
        "total_s": total,
        "mean_s": total / count if count else 0.0,
        "max_s": max(merged["max_s"], timer["max_s"]),
    }


def _merge_histogram(merged: dict, histogram: Mapping[str, Any]) -> "dict | None":
    """Elementwise-sum two histogram exports; None on mismatched buckets."""
    bounds = [bucket["le"] for bucket in merged["buckets"]]
    if [bucket["le"] for bucket in histogram["buckets"]] != bounds:
        return None
    count = merged["count"] + histogram["count"]
    extrema = [
        value
        for value in (merged["min"], histogram["min"], merged["max"], histogram["max"])
        if value is not None
    ]
    total = merged["sum"] + histogram["sum"]
    return {
        "count": count,
        "sum": total,
        "min": min(extrema) if extrema else None,
        "max": max(extrema) if extrema else None,
        "mean": total / count if count else 0.0,
        "buckets": [
            {"le": le, "count": a["count"] + b["count"]}
            for le, a, b in zip(bounds, merged["buckets"], histogram["buckets"])
        ],
        "overflow": merged["overflow"] + histogram["overflow"],
    }


def merge_shard_metrics(
    shards: Mapping[str, Mapping[str, Any]],
    *,
    extra: "Mapping[str, Any] | None" = None,
    extra_prefix: str = "router",
) -> dict:
    """Merge per-shard registry exports into one fleet-wide wire dict.

    Every instrument appears twice in the result: aggregated under its
    plain name (counters/gauges summed, timers combined, histograms
    bucket-wise summed — a histogram whose bucket bounds disagree across
    shards is left out of the aggregate rather than merged wrongly), and
    per shard under ``shard.<shard>.<name>`` so a scrape can still tell
    a hot shard from a cold one. ``extra`` (e.g. the router's own
    registry export) rides along under ``<extra_prefix>.<name>``,
    un-aggregated — router traffic is not worker traffic.

    Args:
        shards: ``{shard_name: registry.to_dict()}`` as fetched from
            each worker's ``stats`` verb.
        extra: one more registry export to include, prefixed only.
        extra_prefix: the prefix for ``extra``'s instruments.

    Returns:
        A dict in the :meth:`Registry.to_dict` wire schema.
    """
    merged: dict = {"counters": {}, "gauges": {}, "timers": {}, "histograms": {}}
    unmergeable: set[str] = set()
    for shard_name, payload in sorted(shards.items()):
        for name, value in dict(payload.get("counters", {})).items():
            merged["counters"][f"shard.{shard_name}.{name}"] = value
            merged["counters"][name] = merged["counters"].get(name, 0) + value
        for name, value in dict(payload.get("gauges", {})).items():
            merged["gauges"][f"shard.{shard_name}.{name}"] = value
            merged["gauges"][name] = merged["gauges"].get(name, 0) + value
        for name, timer in dict(payload.get("timers", {})).items():
            merged["timers"][f"shard.{shard_name}.{name}"] = dict(timer)
            current = merged["timers"].get(name)
            merged["timers"][name] = (
                dict(timer) if current is None else _merge_timer(current, timer)
            )
        for name, histogram in dict(payload.get("histograms", {})).items():
            merged["histograms"][f"shard.{shard_name}.{name}"] = dict(histogram)
            if name in unmergeable:
                continue
            current = merged["histograms"].get(name)
            combined = (
                dict(histogram)
                if current is None
                else _merge_histogram(current, histogram)
            )
            if combined is None:
                del merged["histograms"][name]
                unmergeable.add(name)
            else:
                merged["histograms"][name] = combined
    if extra is not None:
        for category in ("counters", "gauges"):
            for name, value in dict(extra.get(category, {})).items():
                merged[category][f"{extra_prefix}.{name}"] = value
        for category in ("timers", "histograms"):
            for name, value in dict(extra.get(category, {})).items():
                merged[category][f"{extra_prefix}.{name}"] = dict(value)
    return merged


def render_prometheus(
    source: "Registry | Mapping[str, Any]", *, prefix: str = "repro"
) -> str:
    """Render a registry (or its dict export) as Prometheus text.

    Args:
        source: a live :class:`Registry` or the dict produced by its
            ``to_dict`` (round-tripped through JSON or fetched over the
            wire — both work).
        prefix: metric-name prefix (``repro`` by default; ``""`` for
            none).

    Returns:
        The exposition text, one ``# TYPE`` header per metric family,
        ending with a newline (empty string for no instruments).
    """
    data: Mapping[str, Any] = (
        source.to_dict() if isinstance(source, Registry) else source
    )
    lines: list[str] = []

    for name, value in sorted(dict(data.get("counters", {})).items()):
        metric = _metric_name(name, prefix)
        lines.append(f"# TYPE {metric}_total counter")
        lines.append(f"{metric}_total {_format_value(value)}")

    for name, value in sorted(dict(data.get("gauges", {})).items()):
        metric = _metric_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(value)}")

    for name, timer in sorted(dict(data.get("timers", {})).items()):
        metric = _metric_name(name, prefix)
        lines.append(f"# TYPE {metric}_seconds summary")
        lines.append(f"{metric}_seconds_count {_format_value(timer['count'])}")
        lines.append(f"{metric}_seconds_sum {_format_value(timer['total_s'])}")
        lines.append(f"# TYPE {metric}_seconds_max gauge")
        lines.append(f"{metric}_seconds_max {_format_value(timer['max_s'])}")

    for name, histogram in sorted(dict(data.get("histograms", {})).items()):
        metric = _metric_name(name, prefix)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bucket in histogram["buckets"]:
            cumulative += bucket["count"]
            le = _format_value(float(bucket["le"]))
            lines.append(f'{metric}_bucket{{le="{le}"}} {cumulative}')
        total = cumulative + int(histogram.get("overflow", 0))
        lines.append(f'{metric}_bucket{{le="+Inf"}} {total}')
        lines.append(f"{metric}_sum {_format_value(histogram['sum'])}")
        lines.append(f"{metric}_count {_format_value(histogram['count'])}")

    return "\n".join(lines) + "\n" if lines else ""
