"""Lightweight tracing spans with monotonic timing and a ring buffer.

A span brackets one unit of work — a compress call, a pipeline run, a
serve append — with a monotonic start/duration, free-form attributes,
and parent/child nesting tracked through a :mod:`contextvars` variable
(so nesting is correct across asyncio tasks, each of which sees its own
current span)::

    with span("compress", algo="td-tr", points=1810):
        ...

Finished spans land in a bounded ring buffer (newest wins once full);
:func:`recent_spans` exports them as JSON-ready dicts, :func:`clear_spans`
empties the buffer. A span that exits through an exception records the
exception type under ``error`` and re-raises.

Tracing is **off by default**: :func:`span` then returns a shared no-op
context manager, which keeps hot paths at roughly the cost of one
function call. Opt in with ``REPRO_TRACE=1`` or
:func:`configure_tracing`.
"""

from __future__ import annotations

import contextvars
import itertools
import os
import threading
import time
from collections import deque

__all__ = [
    "TRACE_ENV_VAR",
    "DEFAULT_RING_SIZE",
    "span",
    "tracing_enabled",
    "configure_tracing",
    "current_span",
    "recent_spans",
    "clear_spans",
]

#: Environment variable that switches tracing on at import time.
TRACE_ENV_VAR = "REPRO_TRACE"

#: Default capacity of the finished-span ring buffer.
DEFAULT_RING_SIZE = 1024

_ids = itertools.count(1)
_lock = threading.Lock()
_enabled = os.environ.get(TRACE_ENV_VAR, "").strip().lower() in (
    "1", "true", "yes", "on",
)
_ring: deque[dict] = deque(maxlen=DEFAULT_RING_SIZE)
_current: contextvars.ContextVar["_Span | None"] = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)


class _NullSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """One live span: times the block, records itself on exit."""

    __slots__ = ("name", "attrs", "span_id", "parent_id", "depth",
                 "started_s", "_token")

    def __init__(self, name: str, attrs: dict) -> None:
        self.name = name
        self.attrs = attrs
        self.span_id = next(_ids)
        self.parent_id: int | None = None
        self.depth = 0
        self.started_s = 0.0
        self._token: contextvars.Token | None = None

    def __enter__(self) -> "_Span":
        parent = _current.get()
        if parent is not None:
            self.parent_id = parent.span_id
            self.depth = parent.depth + 1
        self._token = _current.set(self)
        self.started_s = time.perf_counter()
        return self

    def __exit__(self, exc_type: type | None, *exc_info: object) -> bool:
        duration = time.perf_counter() - self.started_s
        if self._token is not None:
            _current.reset(self._token)
        record = {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "start_s": self.started_s,
            "duration_s": duration,
            "attrs": self.attrs,
            "error": None if exc_type is None else exc_type.__name__,
        }
        with _lock:
            _ring.append(record)
        return False


def span(name: str, **attrs: object) -> "_Span | _NullSpan":
    """A context manager tracing the wrapped block as ``name``.

    Attributes are free-form keyword arguments kept verbatim on the
    exported record. Returns a shared no-op object while tracing is
    disabled.
    """
    if not _enabled:
        return _NULL_SPAN
    return _Span(name, attrs)


def tracing_enabled() -> bool:
    """Whether spans are currently being recorded."""
    return _enabled


def configure_tracing(enabled: bool, *, ring_size: int | None = None) -> None:
    """Switch tracing on or off and optionally resize the ring buffer.

    Resizing drops buffered spans (a fresh deque is installed).
    """
    global _enabled, _ring
    with _lock:
        _enabled = bool(enabled)
        if ring_size is not None:
            if ring_size < 1:
                raise ValueError(f"ring_size must be >= 1, got {ring_size}")
            _ring = deque(maxlen=int(ring_size))


def current_span() -> "_Span | None":
    """The innermost live span of this task/thread, or ``None``."""
    return _current.get()


def recent_spans(name: str | None = None) -> list[dict]:
    """Finished spans still in the ring buffer, oldest first.

    Args:
        name: only spans with this name, when given.
    """
    with _lock:
        records = list(_ring)
    if name is not None:
        records = [record for record in records if record["name"] == name]
    return records


def clear_spans() -> None:
    """Empty the finished-span ring buffer."""
    with _lock:
        _ring.clear()
