"""The shared instrument registry: counters, gauges, timers, histograms.

This module generalizes what used to be ``repro.pipeline.metrics`` into
the process-wide observability layer every subsystem shares. A
:class:`Registry` owns named instruments with get-or-create semantics;
the batch pipeline, the ingestion service, the storage layer and the
compression kernels all sample into one. Everything is stdlib-only and
exports to plain JSON-ready dicts (the historical ``counters`` /
``timers`` / ``histograms`` schema, extended with ``gauges``) or to
Prometheus text exposition (:mod:`repro.obs.export`).

Two kinds of registry exist in practice:

* **explicit registries** — the pipeline engine and the serve layer each
  own one (always live), so their exports stay scoped to one run or one
  server;
* **the ambient default registry** (:func:`get_registry`) — the
  process-wide sink the kernel and storage layers sample into. It is
  **disabled by default** so library calls carry near-zero overhead;
  opt in with ``REPRO_OBS=1`` or :func:`enable`.

Thread-safety: instrument *creation* and :meth:`Registry.to_dict`
snapshots are serialized by a lock, so get-or-create races from threads
always converge on one instrument and exports never observe a mutating
dict. Individual observations (``inc``/``observe``/``set``) are plain
attribute updates — safe under the single-threaded asyncio serve loop
and GIL-interleaved everywhere else, by design cheap enough for hot
paths.
"""

from __future__ import annotations

import bisect
import os
import threading
import time
from contextlib import contextmanager
from typing import Iterator, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Timer",
    "Histogram",
    "Registry",
    "DEFAULT_BUCKETS",
    "LATENCY_BUCKETS_MS",
    "OBS_ENV_VAR",
    "get_registry",
    "set_registry",
    "enable",
    "disable",
]

#: Environment variable that enables the ambient default registry
#: (``1``/``true``/``yes``/``on``) at first use.
OBS_ENV_VAR = "REPRO_OBS"

#: Default histogram bucket upper bounds: a 1-2-5 geometric ladder wide
#: enough for point counts (1..100k) and metre-scale errors alike.
DEFAULT_BUCKETS: tuple[float, ...] = (
    1, 2, 5, 10, 20, 50, 100, 200, 500,
    1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000,
)

#: Fixed latency buckets in milliseconds, shared by every latency
#: histogram in the library (serve appends sit well under a millisecond
#: on loopback, WAN round trips in the tens).
LATENCY_BUCKETS_MS: tuple[float, ...] = (
    0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0,
    10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0,
)


class Counter:
    """A monotonically increasing integer counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1) to the counter."""
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A value that can go up and down (queue depths, live sessions)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge with ``value``."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (default 1) to the gauge."""
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount`` (default 1) from the gauge."""
        self.value -= amount

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class Timer:
    """Accumulates durations: observation count, total and maximum."""

    __slots__ = ("name", "count", "total_s", "max_s")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total_s = 0.0
        self.max_s = 0.0

    def observe(self, seconds: float) -> None:
        """Record one duration in seconds."""
        seconds = float(seconds)
        self.count += 1
        self.total_s += seconds
        self.max_s = max(self.max_s, seconds)

    @contextmanager
    def time(self) -> Iterator[None]:
        """Context manager measuring the wrapped block with a monotonic clock."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.observe(time.perf_counter() - started)

    @property
    def mean_s(self) -> float:
        """Mean observed duration (0 when nothing was observed)."""
        return self.total_s / self.count if self.count else 0.0

    def to_dict(self) -> dict[str, float | int]:
        """JSON-ready summary of the timer."""
        return {
            "count": self.count,
            "total_s": self.total_s,
            "mean_s": self.mean_s,
            "max_s": self.max_s,
        }

    def __repr__(self) -> str:
        return f"Timer({self.name}: n={self.count}, total={self.total_s:.3f}s)"


class Histogram:
    """A fixed-bucket histogram with min/max/sum tracking.

    Buckets are defined by their upper bounds (inclusive); values above
    the last bound land in an overflow bucket.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "overflow",
                 "count", "total", "min", "max")

    def __init__(self, name: str, buckets: Sequence[float] | None = None) -> None:
        self.name = name
        bounds = tuple(float(b) for b in (buckets or DEFAULT_BUCKETS))
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram buckets must be strictly increasing: {bounds}")
        self.bounds = bounds
        self.bucket_counts = [0] * len(bounds)
        self.overflow = 0
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        """Record one value."""
        value = float(value)
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        slot = bisect.bisect_left(self.bounds, value)
        if slot >= len(self.bounds):
            self.overflow += 1
        else:
            self.bucket_counts[slot] += 1

    @property
    def mean(self) -> float:
        """Mean observed value (0 when nothing was observed)."""
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict[str, object]:
        """JSON-ready summary: stats plus per-bucket counts."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
            "buckets": [
                {"le": bound, "count": n}
                for bound, n in zip(self.bounds, self.bucket_counts)
            ],
            "overflow": self.overflow,
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name}: n={self.count}, mean={self.mean:.3g})"


class _NullCounter(Counter):
    """Shared no-op counter handed out by disabled registries."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:  # noqa: ARG002 - intentional no-op
        pass


class _NullGauge(Gauge):
    """Shared no-op gauge handed out by disabled registries."""

    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass


class _NullTimer(Timer):
    """Shared no-op timer handed out by disabled registries."""

    __slots__ = ()

    def observe(self, seconds: float) -> None:
        pass

    @contextmanager
    def time(self) -> Iterator[None]:
        yield


class _NullHistogram(Histogram):
    """Shared no-op histogram handed out by disabled registries."""

    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


_NULL_COUNTER = _NullCounter("disabled")
_NULL_GAUGE = _NullGauge("disabled")
_NULL_TIMER = _NullTimer("disabled")
_NULL_HISTOGRAM = _NullHistogram("disabled")


class Registry:
    """A registry of named counters, gauges, timers and histograms.

    Instruments are created on first use (get-or-create semantics), so
    call sites never need to pre-declare what they observe::

        registry = Registry()
        registry.counter("items_ok").inc()
        registry.gauge("queue_depth").set(3)
        with registry.timer("compress_s").time():
            ...
        registry.histogram("points_in").observe(1810)
        json.dumps(registry.to_dict())

    A registry built with ``enabled=False`` hands out shared no-op
    instruments: every observation is a cheap pass, and
    :meth:`to_dict` exports empty categories. This is what makes
    always-written instrumentation free when observability is off.
    """

    def __init__(self, *, enabled: bool = True) -> None:
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._timers: dict[str, Timer] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        if not self.enabled:
            return _NULL_COUNTER
        counter = self._counters.get(name)
        if counter is None:
            with self._lock:
                counter = self._counters.get(name)
                if counter is None:
                    counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge called ``name``."""
        if not self.enabled:
            return _NULL_GAUGE
        gauge = self._gauges.get(name)
        if gauge is None:
            with self._lock:
                gauge = self._gauges.get(name)
                if gauge is None:
                    gauge = self._gauges[name] = Gauge(name)
        return gauge

    def timer(self, name: str) -> Timer:
        """Get or create the timer called ``name``."""
        if not self.enabled:
            return _NULL_TIMER
        timer = self._timers.get(name)
        if timer is None:
            with self._lock:
                timer = self._timers.get(name)
                if timer is None:
                    timer = self._timers[name] = Timer(name)
        return timer

    def histogram(self, name: str, buckets: Sequence[float] | None = None) -> Histogram:
        """Get or create the histogram called ``name``.

        ``buckets`` is honoured only on creation; later calls return the
        existing instrument unchanged.
        """
        if not self.enabled:
            return _NULL_HISTOGRAM
        histogram = self._histograms.get(name)
        if histogram is None:
            with self._lock:
                histogram = self._histograms.get(name)
                if histogram is None:
                    histogram = self._histograms[name] = Histogram(name, buckets)
        return histogram

    def to_dict(self) -> dict[str, dict[str, object]]:
        """Export every instrument as one JSON-ready dict.

        The historical three-category schema (``counters`` / ``timers``
        / ``histograms``) is preserved verbatim; ``gauges`` extends it.
        """
        with self._lock:
            counters = sorted(self._counters.items())
            gauges = sorted(self._gauges.items())
            timers = sorted(self._timers.items())
            histograms = sorted(self._histograms.items())
        return {
            "counters": {name: counter.value for name, counter in counters},
            "gauges": {name: gauge.value for name, gauge in gauges},
            "timers": {name: timer.to_dict() for name, timer in timers},
            "histograms": {
                name: histogram.to_dict() for name, histogram in histograms
            },
        }

    def __repr__(self) -> str:
        return (
            f"Registry({len(self._counters)} counters, {len(self._gauges)} gauges, "
            f"{len(self._timers)} timers, {len(self._histograms)} histograms, "
            f"{'enabled' if self.enabled else 'disabled'})"
        )


def _env_truthy(value: str | None) -> bool:
    return value is not None and value.strip().lower() in ("1", "true", "yes", "on")


#: The lazily created ambient registry (``None`` until first use).
_default_registry: Registry | None = None
_default_lock = threading.Lock()


def get_registry() -> Registry:
    """The ambient process-wide registry.

    Created on first use, enabled only when ``REPRO_OBS`` is truthy at
    that moment (flip it later with :func:`enable` / :func:`disable`).
    """
    global _default_registry
    registry = _default_registry
    if registry is None:
        with _default_lock:
            registry = _default_registry
            if registry is None:
                registry = Registry(enabled=_env_truthy(os.environ.get(OBS_ENV_VAR)))
                _default_registry = registry
    return registry


def set_registry(registry: Registry | None) -> None:
    """Replace the ambient registry (``None`` re-derives it from the
    environment on next :func:`get_registry`)."""
    global _default_registry
    with _default_lock:
        _default_registry = registry


def enable() -> Registry:
    """Turn the ambient registry on; returns it."""
    registry = get_registry()
    registry.enabled = True
    return registry


def disable() -> Registry:
    """Turn the ambient registry off (observations become no-ops)."""
    registry = get_registry()
    registry.enabled = False
    return registry
