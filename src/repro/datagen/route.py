"""Route planning over synthetic road networks.

A :class:`Route` is the geometric plan a simulated vehicle follows: the
polyline of intersection positions plus each leg's speed limit. Routes are
computed as travel-time shortest paths, which — exactly as for real
commuters — prefers arterials and highways and produces the mix of long
fast runs and short slow connectors that gives urban trajectories their
characteristic shape.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.datagen.roadnet import RoadNetwork
from repro.exceptions import DataGenError

__all__ = ["Route", "plan_route", "random_route"]


@dataclass(frozen=True)
class Route:
    """A planned path: polyline positions and per-leg speed limits.

    Attributes:
        points: vertex positions, shape ``(m, 2)`` metres.
        speed_limits: per-leg limits, shape ``(m - 1,)`` m/s.
    """

    points: np.ndarray
    speed_limits: np.ndarray

    def __post_init__(self) -> None:
        points = np.asarray(self.points, dtype=float)
        limits = np.asarray(self.speed_limits, dtype=float)
        if points.ndim != 2 or points.shape[1] != 2 or points.shape[0] < 2:
            raise DataGenError(f"route needs >= 2 polyline points, got {points.shape}")
        if limits.shape != (points.shape[0] - 1,):
            raise DataGenError(
                f"speed_limits shape {limits.shape} does not match "
                f"{points.shape[0] - 1} legs"
            )
        if np.any(limits <= 0):
            raise DataGenError("speed limits must be positive")
        object.__setattr__(self, "points", points)
        object.__setattr__(self, "speed_limits", limits)

    @property
    def leg_lengths(self) -> np.ndarray:
        """Length of each leg in metres, shape ``(m - 1,)``."""
        step = np.diff(self.points, axis=0)
        return np.hypot(step[:, 0], step[:, 1])

    @property
    def cumulative_lengths(self) -> np.ndarray:
        """Arc length at each vertex, shape ``(m,)``; starts at 0."""
        return np.concatenate([[0.0], np.cumsum(self.leg_lengths)])

    @property
    def total_length_m(self) -> float:
        return float(self.leg_lengths.sum())

    @property
    def displacement_m(self) -> float:
        """Straight-line origin-to-destination distance."""
        return float(np.hypot(*(self.points[-1] - self.points[0])))

    def turn_angles(self) -> np.ndarray:
        """Absolute heading change at interior vertices, radians [0, pi]."""
        step = np.diff(self.points, axis=0)
        headings = np.arctan2(step[:, 1], step[:, 0])
        diff = np.diff(headings)
        return np.abs((diff + np.pi) % (2.0 * np.pi) - np.pi)

    def position_at_arclength(self, s: float | np.ndarray) -> np.ndarray:
        """Interpolated position(s) at arc length(s) ``s`` along the route."""
        s_arr = np.atleast_1d(np.asarray(s, dtype=float))
        cum = self.cumulative_lengths
        s_clipped = np.clip(s_arr, 0.0, cum[-1])
        idx = np.clip(
            np.searchsorted(cum, s_clipped, side="right") - 1, 0, len(cum) - 2
        )
        leg_len = cum[idx + 1] - cum[idx]
        frac = np.where(leg_len > 0, (s_clipped - cum[idx]) / leg_len, 0.0)
        pos = self.points[idx] + frac[:, None] * (
            self.points[idx + 1] - self.points[idx]
        )
        return pos[0] if np.isscalar(s) or np.ndim(s) == 0 else pos


def plan_route(
    network: RoadNetwork,
    origin: tuple[int, int],
    destination: tuple[int, int],
) -> Route:
    """Travel-time shortest path between two intersections.

    Raises:
        DataGenError: when origin equals destination or no path exists.
    """
    if origin == destination:
        raise DataGenError("route origin and destination coincide")
    try:
        nodes = nx.shortest_path(
            network.graph, origin, destination, weight="travel_time"
        )
    except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
        raise DataGenError(f"no route from {origin} to {destination}") from exc
    points = np.array([network.node_position(node) for node in nodes])
    limits = np.array(
        [
            network.graph.edges[u, v]["speed_limit"]
            for u, v in zip(nodes, nodes[1:])
        ]
    )
    return Route(points, limits)


def _concatenate_routes(first: Route, second: Route) -> Route:
    """Join two routes where the first ends at the second's start."""
    points = np.concatenate([first.points, second.points[1:]])
    limits = np.concatenate([first.speed_limits, second.speed_limits])
    return Route(points, limits)


def random_route(
    network: RoadNetwork,
    rng: np.random.Generator,
    target_length_m: float,
    displacement_ratio: float = 0.53,
    max_attempts: int = 64,
) -> Route:
    """A random route whose length is roughly ``target_length_m``.

    Real trips are not shortest paths from A to B alone: the paper's
    trajectories travel about 1.9x their net displacement (Table 2:
    19.95 km length vs 10.58 km displacement). To reproduce that, the
    route picks an origin, a destination at straight-line distance
    ``displacement_ratio * target_length_m``, and a *via* intersection
    off the direct axis chosen so the two shortest-path legs sum to
    roughly the target length — the way an errand or a preferred road
    bends a real commute.

    Raises:
        DataGenError: when the network is too small for the requested
            length after ``max_attempts`` tries.
    """
    if target_length_m <= 0:
        raise DataGenError(f"target length must be positive, got {target_length_m}")
    target_disp = displacement_ratio * target_length_m
    if target_disp > network.extent_m:
        raise DataGenError(
            f"target displacement {target_disp:.0f} m exceeds network extent "
            f"{network.extent_m:.0f} m — use a larger network"
        )
    # Grid detour factor: shortest paths on a (jittered) lattice are
    # roughly this much longer than the straight line between endpoints.
    grid_factor = 1.18
    for attempt in range(max_attempts):
        origin = network.random_node(rng)
        tolerance = network.spacing_m * (1.0 + attempt / 8.0)
        candidates = network.nodes_near_distance(origin, target_disp, tolerance)
        candidates = [node for node in candidates if node != origin]
        if not candidates:
            continue
        destination = candidates[int(rng.integers(0, len(candidates)))]
        via = _pick_via_node(
            network, rng, origin, destination, target_length_m / grid_factor, tolerance
        )
        try:
            if via is None:
                return plan_route(network, origin, destination)
            first = plan_route(network, origin, via)
            second = plan_route(network, via, destination)
        except DataGenError:
            continue
        return _concatenate_routes(first, second)
    raise DataGenError(
        f"could not find a route of ~{target_length_m:.0f} m in {max_attempts} attempts"
    )


def _pick_via_node(
    network: RoadNetwork,
    rng: np.random.Generator,
    origin: tuple[int, int],
    destination: tuple[int, int],
    straight_length_m: float,
    tolerance_m: float,
) -> tuple[int, int] | None:
    """An intersection whose two straight legs sum to the target length.

    Geometrically: a point near the ellipse with foci at origin and
    destination whose leg sum is ``straight_length_m``. Returns None when
    the direct route already meets the target (no detour needed) or no
    candidate node lies near the ellipse.
    """
    origin_pos = network.node_position(origin)
    dest_pos = network.node_position(destination)
    direct = float(np.hypot(*(dest_pos - origin_pos)))
    if straight_length_m <= direct * 1.05:
        return None
    best: tuple[int, int] | None = None
    best_misfit = tolerance_m * 2.0
    # Sample a handful of random nodes rather than scanning all of them;
    # the lattice is dense enough that a few dozen draws find the ellipse.
    for _ in range(200):
        node = network.random_node(rng)
        if node in (origin, destination):
            continue
        pos = network.node_position(node)
        leg_sum = float(
            np.hypot(*(pos - origin_pos)) + np.hypot(*(dest_pos - pos))
        )
        misfit = abs(leg_sum - straight_length_m)
        if misfit < best_misfit:
            best = node
            best_misfit = misfit
    return best
