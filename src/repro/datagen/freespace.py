"""Free-space movement models: pedestrians and migratory animals.

The paper's container term "moving objects" spans far more than cars —
"pedestrians in shopping malls, airports or railway stations, ... even
migratory animals" — and its future work plans "to look into the issue of
moving objects of different nature". These two models cover the ends of
that spectrum the road-network simulator cannot:

* :func:`simulate_pedestrian` — random-waypoint walking inside a bounded
  area: short straight-ish legs at walking speed, heading wobble, and
  frequent pauses (window shopping, waiting);
* :func:`simulate_migration` — a correlated random walk with a persistent
  drift bearing: long fast legs, slowly meandering heading, and rare long
  rest stops.

Both produce the same dense :class:`~repro.datagen.vehicle.DriveTrace`
the vehicle simulator does, so the GPS sampling and noise pipeline — and
everything downstream — is shared. The object-nature ablation bench runs
the compression algorithms across all three natures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datagen.noise import GpsNoise
from repro.datagen.vehicle import DriveTrace
from repro.exceptions import DataGenError
from repro.trajectory.trajectory import Trajectory

__all__ = [
    "PedestrianModel",
    "MigrationModel",
    "simulate_pedestrian",
    "simulate_migration",
    "generate_pedestrian_trajectory",
    "generate_migration_trajectory",
]


@dataclass(frozen=True, slots=True)
class PedestrianModel:
    """Random-waypoint walking parameters."""

    area_m: float = 300.0
    speed_range_ms: tuple[float, float] = (0.7, 1.8)
    heading_wobble_rad: float = 0.15
    pause_prob: float = 0.45
    pause_duration_range_s: tuple[float, float] = (5.0, 90.0)
    dt_s: float = 1.0

    def __post_init__(self) -> None:
        if self.area_m <= 0:
            raise ValueError("area must be positive")
        lo, hi = self.speed_range_ms
        if not 0 < lo <= hi:
            raise ValueError(f"bad speed range ({lo}, {hi})")
        if not 0.0 <= self.pause_prob <= 1.0:
            raise ValueError("pause_prob must be in [0, 1]")
        plo, phi = self.pause_duration_range_s
        if plo < 0 or phi < plo:
            raise ValueError(f"bad pause duration range ({plo}, {phi})")
        if self.dt_s <= 0:
            raise ValueError("dt must be positive")


@dataclass(frozen=True, slots=True)
class MigrationModel:
    """Correlated-random-walk migration parameters."""

    mean_speed_ms: float = 14.0
    speed_std_ms: float = 2.5
    bearing_rad: float = np.pi / 3  # north-east by default
    heading_persistence: float = 0.95
    heading_noise_rad: float = 0.2
    rest_prob_per_hour: float = 0.35
    rest_duration_range_s: tuple[float, float] = (600.0, 3600.0)
    dt_s: float = 5.0

    def __post_init__(self) -> None:
        if self.mean_speed_ms <= 0 or self.speed_std_ms < 0:
            raise ValueError("bad speed parameters")
        if not 0.0 <= self.heading_persistence < 1.0:
            raise ValueError("heading_persistence must be in [0, 1)")
        if self.heading_noise_rad < 0:
            raise ValueError("heading noise must be non-negative")
        if self.rest_prob_per_hour < 0:
            raise ValueError("rest probability must be non-negative")
        lo, hi = self.rest_duration_range_s
        if lo < 0 or hi < lo:
            raise ValueError(f"bad rest duration range ({lo}, {hi})")
        if self.dt_s <= 0:
            raise ValueError("dt must be positive")


def simulate_pedestrian(
    duration_s: float,
    model: PedestrianModel,
    rng: np.random.Generator,
    start_time_s: float = 0.0,
) -> DriveTrace:
    """Random-waypoint walk inside a ``area_m`` x ``area_m`` square.

    The walker heads toward a uniformly drawn waypoint at a per-leg speed
    with per-step heading wobble, may pause on arrival, then draws the
    next waypoint, until ``duration_s`` has elapsed.
    """
    if duration_s <= 0:
        raise DataGenError(f"duration must be positive, got {duration_s}")
    dt = model.dt_s
    position = rng.uniform(0.0, model.area_m, size=2)
    times = [start_time_s]
    points = [position.copy()]
    now = start_time_s
    end = start_time_s + duration_s
    while now < end:
        waypoint = rng.uniform(0.0, model.area_m, size=2)
        speed = float(rng.uniform(*model.speed_range_ms))
        while now < end:
            to_target = waypoint - position
            distance = float(np.hypot(*to_target))
            if distance < speed * dt:
                position = waypoint.copy()
                now += dt
                times.append(now)
                points.append(position.copy())
                break
            heading = np.arctan2(to_target[1], to_target[0]) + rng.normal(
                0.0, model.heading_wobble_rad
            )
            position = position + speed * dt * np.array(
                [np.cos(heading), np.sin(heading)]
            )
            position = np.clip(position, 0.0, model.area_m)
            now += dt
            times.append(now)
            points.append(position.copy())
        if now < end and rng.uniform() < model.pause_prob:
            pause = float(rng.uniform(*model.pause_duration_range_s))
            steps = int(np.ceil(min(pause, end - now) / dt))
            for _ in range(steps):
                now += dt
                times.append(now)
                points.append(position.copy())
    return DriveTrace(np.asarray(times), np.asarray(points))


def simulate_migration(
    duration_s: float,
    model: MigrationModel,
    rng: np.random.Generator,
    start_time_s: float = 0.0,
) -> DriveTrace:
    """Correlated random walk with drift (a migrating animal's day).

    Heading follows an AR(1) process around the migration bearing; speed
    is redrawn slowly; rest stops freeze the position for long spells.
    """
    if duration_s <= 0:
        raise DataGenError(f"duration must be positive, got {duration_s}")
    dt = model.dt_s
    n_steps = int(np.ceil(duration_s / dt))
    rest_prob_per_step = model.rest_prob_per_hour * dt / 3600.0
    position = np.zeros(2)
    heading_offset = 0.0
    speed = max(float(rng.normal(model.mean_speed_ms, model.speed_std_ms)), 0.5)
    times = [start_time_s]
    points = [position.copy()]
    now = start_time_s
    step = 0
    while step < n_steps:
        if rng.uniform() < rest_prob_per_step:
            rest = float(rng.uniform(*model.rest_duration_range_s))
            rest_steps = int(np.ceil(rest / dt))
            for _ in range(min(rest_steps, n_steps - step)):
                now += dt
                times.append(now)
                points.append(position.copy())
                step += 1
            speed = max(
                float(rng.normal(model.mean_speed_ms, model.speed_std_ms)), 0.5
            )
            continue
        heading_offset = (
            model.heading_persistence * heading_offset
            + rng.normal(0.0, model.heading_noise_rad)
        )
        heading = model.bearing_rad + heading_offset
        position = position + speed * dt * np.array(
            [np.cos(heading), np.sin(heading)]
        )
        now += dt
        times.append(now)
        points.append(position.copy())
        step += 1
    return DriveTrace(np.asarray(times), np.asarray(points))


def _observe(
    trace: DriveTrace,
    sample_interval_s: float,
    noise: GpsNoise,
    rng: np.random.Generator,
    object_id: str | None,
) -> Trajectory:
    from repro.datagen.generator import sample_trace

    t, xy = sample_trace(trace, sample_interval_s, noise, rng)
    return Trajectory(t, xy, object_id)


def generate_pedestrian_trajectory(
    seed: int,
    duration_s: float = 1_800.0,
    model: PedestrianModel | None = None,
    sample_interval_s: float = 5.0,
    noise: GpsNoise | None = None,
    object_id: str | None = "pedestrian",
) -> Trajectory:
    """One observed pedestrian trajectory (walk + GPS sampling + noise).

    Indoor-ish positioning is noisier relative to the movement scale, so
    the default noise sigma is high for the speeds involved.
    """
    rng = np.random.default_rng(seed)
    model = model or PedestrianModel()
    noise = noise or GpsNoise(sigma_m=6.0, correlation_time_s=15.0)
    trace = simulate_pedestrian(duration_s, model, rng)
    return _observe(trace, sample_interval_s, noise, rng, object_id)


def generate_migration_trajectory(
    seed: int,
    duration_s: float = 6.0 * 3600.0,
    model: MigrationModel | None = None,
    sample_interval_s: float = 60.0,
    noise: GpsNoise | None = None,
    object_id: str | None = "migrant",
) -> Trajectory:
    """One observed migration trajectory (tag duty-cycled to a slow rate)."""
    rng = np.random.default_rng(seed)
    model = model or MigrationModel()
    noise = noise or GpsNoise(sigma_m=15.0, correlation_time_s=120.0)
    trace = simulate_migration(duration_s, model, rng)
    return _observe(trace, sample_interval_s, noise, rng, object_id)
