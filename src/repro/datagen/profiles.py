"""Workload profiles: named parameter bundles for the generator.

A profile fixes the road-network character, the trip length, the driver
behaviour and the GPS sampling setup. The ``PAPER_PROFILES`` list defines
the ten trips whose aggregate statistics are calibrated to the paper's
Table 2 (urban and rural roads, short and lengthy series — see
:mod:`repro.experiments.dataset` for the verification).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.datagen.noise import GpsNoise
from repro.datagen.vehicle import VehicleModel

__all__ = ["WorkloadProfile", "URBAN", "RURAL", "HIGHWAY", "PAPER_PROFILES"]


@dataclass(frozen=True, slots=True)
class WorkloadProfile:
    """All parameters needed to generate one class of trajectory.

    Attributes:
        name: profile label (becomes part of the object id).
        rows/cols/spacing_m: road-network lattice dimensions.
        jitter_frac: lattice node jitter as a fraction of spacing.
        arterial_every: arterial line spacing (0 = none).
        highway_rows: row lines that are highways.
        target_length_m: desired route length.
        vehicle: driver/vehicle dynamics parameters.
        noise: GPS noise model.
        sample_interval_s: GPS fix period (the paper's example uses 10 s).
    """

    name: str
    rows: int = 30
    cols: int = 30
    spacing_m: float = 500.0
    jitter_frac: float = 0.25
    arterial_every: int = 5
    highway_rows: tuple[int, ...] = ()
    target_length_m: float = 15_000.0
    vehicle: VehicleModel = VehicleModel()
    noise: GpsNoise = GpsNoise()
    sample_interval_s: float = 10.0

    def with_length(self, target_length_m: float) -> "WorkloadProfile":
        """The same profile with a different trip length."""
        return replace(self, target_length_m=target_length_m)


#: Dense city grid: short blocks, many stops, low speed limits.
URBAN = WorkloadProfile(
    name="urban",
    rows=36,
    cols=36,
    spacing_m=350.0,
    jitter_frac=0.28,
    arterial_every=6,
    target_length_m=8_000.0,
    vehicle=VehicleModel(stop_prob=0.45, stop_duration_range_s=(10.0, 55.0)),
    noise=GpsNoise(sigma_m=5.0, correlation_time_s=25.0),
)

#: Sparse country roads: long blocks, few stops, moderate limits.
RURAL = WorkloadProfile(
    name="rural",
    rows=26,
    cols=26,
    spacing_m=1_400.0,
    jitter_frac=0.32,
    arterial_every=0,
    target_length_m=25_000.0,
    vehicle=VehicleModel(stop_prob=0.14),
    noise=GpsNoise(sigma_m=4.0, correlation_time_s=20.0),
)

#: Intercity mix with highway rows for long fast stretches.
HIGHWAY = WorkloadProfile(
    name="highway",
    rows=22,
    cols=22,
    spacing_m=2_200.0,
    jitter_frac=0.3,
    arterial_every=0,
    highway_rows=(7, 14),
    target_length_m=40_000.0,
    vehicle=VehicleModel(stop_prob=0.08),
    noise=GpsNoise(sigma_m=4.0, correlation_time_s=20.0),
)

#: The ten trips of the paper's evaluation dataset: a spread of short
#: urban commutes and lengthy rural/intercity drives whose aggregate
#: statistics land on Table 2 (verified by the Table 2 benchmark).
PAPER_PROFILES: tuple[WorkloadProfile, ...] = (
    URBAN.with_length(5_500.0),
    URBAN.with_length(8_000.0),
    URBAN.with_length(10_500.0),
    URBAN.with_length(13_000.0),
    URBAN.with_length(15_500.0),
    RURAL.with_length(17_000.0),
    RURAL.with_length(23_000.0),
    RURAL.with_length(28_000.0),
    HIGHWAY.with_length(36_000.0),
    HIGHWAY.with_length(43_000.0),
)
