"""Synthetic road networks for the GPS workload generator.

The paper's trajectories come from a car "which travelled different roads
in urban and rural areas"; movement restricted to a transportation
infrastructure with linear characteristics (Sect. 2). We model that
infrastructure as a perturbed lattice: a grid of intersections with
jittered positions, 4-neighbour street edges, and a hierarchy of road
classes (local / arterial / highway) carrying different speed limits.
The jitter breaks the grid's perfect collinearity so simplification
algorithms see realistic near-straight-but-not-straight runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from repro.exceptions import DataGenError

__all__ = ["SPEED_LIMITS_MS", "RoadNetwork"]

#: Speed limits per road class, metres/second (50, 70, 100 km/h).
SPEED_LIMITS_MS: dict[str, float] = {
    "local": 50.0 / 3.6,
    "arterial": 70.0 / 3.6,
    "highway": 100.0 / 3.6,
}


@dataclass
class RoadNetwork:
    """A planar road graph with positions and speed limits.

    Nodes are ``(row, col)`` tuples; node attribute ``pos`` is an
    ``(x, y)`` position in metres, edge attributes are ``length``
    (metres), ``speed_limit`` (m/s), ``road_class`` and ``travel_time``
    (seconds, the routing weight).
    """

    graph: nx.Graph
    spacing_m: float
    rows: int
    cols: int
    _positions: dict[tuple[int, int], np.ndarray] = field(repr=False, default_factory=dict)

    @classmethod
    def grid(
        cls,
        rows: int,
        cols: int,
        spacing_m: float,
        rng: np.random.Generator,
        jitter_frac: float = 0.25,
        arterial_every: int = 5,
        highway_rows: tuple[int, ...] = (),
    ) -> "RoadNetwork":
        """Build a jittered lattice network.

        Args:
            rows: number of east-west street lines (``>= 2``).
            cols: number of north-south street lines (``>= 2``).
            spacing_m: nominal block size in metres.
            rng: random generator driving the jitter.
            jitter_frac: node positions are displaced uniformly by up to
                this fraction of the spacing in each axis.
            arterial_every: every ``arterial_every``-th row/column line is
                an arterial with a higher speed limit (0 disables).
            highway_rows: row lines that are highways (fastest class);
                useful for rural/intercity profiles.
        """
        if rows < 2 or cols < 2:
            raise DataGenError(f"grid needs at least 2x2 nodes, got {rows}x{cols}")
        if spacing_m <= 0:
            raise DataGenError(f"spacing must be positive, got {spacing_m}")
        if not 0 <= jitter_frac < 0.5:
            raise DataGenError(f"jitter_frac must be in [0, 0.5), got {jitter_frac}")
        graph = nx.Graph()
        positions: dict[tuple[int, int], np.ndarray] = {}
        for r in range(rows):
            for c in range(cols):
                jitter = rng.uniform(-jitter_frac, jitter_frac, size=2) * spacing_m
                pos = np.array([c * spacing_m, r * spacing_m]) + jitter
                positions[(r, c)] = pos
                graph.add_node((r, c), pos=pos)

        def line_class(index: int, is_row: bool) -> str:
            if is_row and index in highway_rows:
                return "highway"
            if arterial_every and index % arterial_every == 0:
                return "arterial"
            return "local"

        for r in range(rows):
            row_class = line_class(r, is_row=True)
            for c in range(cols - 1):
                cls._add_edge(graph, positions, (r, c), (r, c + 1), row_class)
        for c in range(cols):
            col_class = line_class(c, is_row=False)
            for r in range(rows - 1):
                cls._add_edge(graph, positions, (r, c), (r + 1, c), col_class)
        return cls(graph, spacing_m, rows, cols, positions)

    @staticmethod
    def _add_edge(
        graph: nx.Graph,
        positions: dict[tuple[int, int], np.ndarray],
        u: tuple[int, int],
        v: tuple[int, int],
        road_class: str,
    ) -> None:
        length = float(np.hypot(*(positions[u] - positions[v])))
        limit = SPEED_LIMITS_MS[road_class]
        graph.add_edge(
            u,
            v,
            length=length,
            speed_limit=limit,
            road_class=road_class,
            travel_time=length / limit,
        )

    def node_position(self, node: tuple[int, int]) -> np.ndarray:
        """Position of a node in metres, shape ``(2,)``."""
        return self._positions[node]

    def random_node(self, rng: np.random.Generator) -> tuple[int, int]:
        """A uniformly random intersection."""
        r = int(rng.integers(0, self.rows))
        c = int(rng.integers(0, self.cols))
        return (r, c)

    def nodes_near_distance(
        self,
        origin: tuple[int, int],
        target_m: float,
        tolerance_m: float,
    ) -> list[tuple[int, int]]:
        """Nodes whose straight-line distance to ``origin`` is near a target.

        Used to pick route destinations that yield the desired net
        displacement (Table 2's displacement statistic).
        """
        origin_pos = self._positions[origin]
        out: list[tuple[int, int]] = []
        for node, pos in self._positions.items():
            if abs(float(np.hypot(*(pos - origin_pos))) - target_m) <= tolerance_m:
                out.append(node)
        return out

    @property
    def extent_m(self) -> float:
        """Nominal diagonal extent of the network in metres."""
        return float(np.hypot((self.cols - 1), (self.rows - 1)) * self.spacing_m)
