"""GPS observation noise models.

Consumer GPS error is not white: position fixes drift slowly around the
true position as the satellite constellation and multipath environment
change. We model the error as a first-order Gauss–Markov process (an
exponentially autocorrelated random walk), which reproduces both the
metre-scale jitter that the compression thresholds must tolerate and the
slow wander that makes "noise" different from "movement". A pure white
model is available as the degenerate case ``correlation_time_s = 0``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["GpsNoise"]


@dataclass(frozen=True, slots=True)
class GpsNoise:
    """First-order Gauss–Markov positional noise.

    Attributes:
        sigma_m: stationary standard deviation per axis, metres.
        correlation_time_s: e-folding time of the error autocorrelation;
            0 gives white noise.
        outlier_prob: per-fix probability of a gross outlier (multipath
            spike), replacing the correlated error with a large white one.
        outlier_sigma_m: standard deviation of outlier fixes.
    """

    sigma_m: float = 4.0
    correlation_time_s: float = 20.0
    outlier_prob: float = 0.0
    outlier_sigma_m: float = 30.0

    def __post_init__(self) -> None:
        if self.sigma_m < 0 or self.outlier_sigma_m < 0:
            raise ValueError("noise standard deviations must be non-negative")
        if self.correlation_time_s < 0:
            raise ValueError("correlation time must be non-negative")
        if not 0.0 <= self.outlier_prob <= 1.0:
            raise ValueError(f"outlier_prob must be in [0, 1], got {self.outlier_prob}")

    def sample_errors(
        self, t: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Error vectors for fixes at times ``t`` (shape ``(n, 2)``).

        The Gauss–Markov recursion over a possibly irregular time grid is
        ``e_k = rho_k e_{k-1} + sqrt(1 - rho_k²) w_k`` with
        ``rho_k = exp(-dt_k / tau)`` and ``w_k ~ N(0, sigma² I)``, which
        keeps the stationary variance exactly ``sigma²`` for any spacing.
        """
        t = np.asarray(t, dtype=float)
        n = t.shape[0]
        if n == 0:
            return np.zeros((0, 2))
        errors = np.zeros((n, 2))
        if self.sigma_m == 0.0:
            white = np.zeros((n, 2))
        else:
            white = rng.normal(0.0, self.sigma_m, size=(n, 2))
        if self.correlation_time_s == 0.0 or self.sigma_m == 0.0:
            errors = white
        else:
            errors[0] = white[0]
            dt = np.diff(t)
            rho = np.exp(-dt / self.correlation_time_s)
            innovation_scale = np.sqrt(1.0 - rho**2)
            for k in range(1, n):
                errors[k] = (
                    rho[k - 1] * errors[k - 1] + innovation_scale[k - 1] * white[k]
                )
        if self.outlier_prob > 0.0:
            is_outlier = rng.uniform(size=n) < self.outlier_prob
            count = int(is_outlier.sum())
            if count:
                errors[is_outlier] = rng.normal(
                    0.0, self.outlier_sigma_m, size=(count, 2)
                )
        return errors

    def apply(
        self, t: np.ndarray, xy: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """True positions plus sampled errors (new array)."""
        xy = np.asarray(xy, dtype=float)
        return xy + self.sample_errors(t, rng)
