"""Synthetic GPS workload generation.

The paper evaluates on ten real car-GPS trajectories that were never
published; this package is the faithful synthetic substitute (see
DESIGN.md's substitution table): a road-network + routing + vehicle
kinematics + GPS-noise pipeline whose output matches the shape statistics
the compression algorithms are sensitive to, calibrated against the
paper's Table 2.
"""

from repro.datagen.freespace import (
    MigrationModel,
    PedestrianModel,
    generate_migration_trajectory,
    generate_pedestrian_trajectory,
    simulate_migration,
    simulate_pedestrian,
)
from repro.datagen.generator import TrajectoryGenerator, generate_dataset, sample_trace
from repro.datagen.noise import GpsNoise
from repro.datagen.profiles import (
    HIGHWAY,
    PAPER_PROFILES,
    RURAL,
    URBAN,
    WorkloadProfile,
)
from repro.datagen.roadnet import SPEED_LIMITS_MS, RoadNetwork
from repro.datagen.route import Route, plan_route, random_route
from repro.datagen.vehicle import DriveTrace, VehicleModel, simulate_drive

__all__ = [
    "DriveTrace",
    "GpsNoise",
    "HIGHWAY",
    "MigrationModel",
    "PedestrianModel",
    "PAPER_PROFILES",
    "RURAL",
    "RoadNetwork",
    "Route",
    "SPEED_LIMITS_MS",
    "TrajectoryGenerator",
    "URBAN",
    "VehicleModel",
    "WorkloadProfile",
    "generate_dataset",
    "generate_migration_trajectory",
    "generate_pedestrian_trajectory",
    "plan_route",
    "random_route",
    "sample_trace",
    "simulate_drive",
    "simulate_migration",
    "simulate_pedestrian",
]
