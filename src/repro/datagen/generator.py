"""Top-level synthetic trajectory generation.

Composes the substrate pieces — road network, route planner, vehicle
simulator, GPS sampler, noise model — into a one-call API:
:meth:`TrajectoryGenerator.generate` produces one trajectory,
:func:`generate_dataset` a whole evaluation dataset. Everything is
deterministic under a seed, which is what lets the benchmarks pin the
paper-dataset statistics.
"""

from __future__ import annotations

import numpy as np

from repro.datagen.noise import GpsNoise
from repro.datagen.profiles import WorkloadProfile
from repro.datagen.roadnet import RoadNetwork
from repro.datagen.route import random_route
from repro.datagen.vehicle import DriveTrace, simulate_drive
from repro.exceptions import DataGenError
from repro.trajectory.trajectory import Trajectory

__all__ = ["TrajectoryGenerator", "generate_dataset", "sample_trace"]


def sample_trace(
    trace: DriveTrace,
    sample_interval_s: float,
    noise: GpsNoise,
    rng: np.random.Generator,
    start_time_s: float | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample a dense drive trace at the GPS rate and apply noise.

    Args:
        trace: dense noise-free trace from the vehicle simulator.
        sample_interval_s: GPS fix period.
        noise: observation noise model.
        rng: randomness source for the noise.
        start_time_s: timestamp for the first fix (defaults to the
            trace's own start).

    Returns:
        ``(t, xy)`` arrays for the observed fixes; the final trace instant
        is always included so the trajectory covers the whole drive.
    """
    if sample_interval_s <= 0:
        raise DataGenError(f"sample interval must be positive, got {sample_interval_s}")
    t0 = float(trace.t[0])
    t_end = float(trace.t[-1])
    fix_times = np.arange(t0, t_end, sample_interval_s)
    if fix_times.size == 0 or fix_times[-1] < t_end:
        fix_times = np.append(fix_times, t_end)
    # Interpolate the dense trace at the fix times (both axes).
    x = np.interp(fix_times, trace.t, trace.xy[:, 0])
    y = np.interp(fix_times, trace.t, trace.xy[:, 1])
    true_xy = np.column_stack([x, y])
    observed = noise.apply(fix_times, true_xy, rng)
    if start_time_s is not None:
        fix_times = fix_times - t0 + start_time_s
    return fix_times, observed


class TrajectoryGenerator:
    """Deterministic generator of synthetic GPS trajectories.

    One generator owns one road network (built lazily per profile
    geometry) and a seeded random stream; successive ``generate`` calls
    produce independent but reproducible trips.

    Example:
        >>> gen = TrajectoryGenerator(seed=7)
        >>> from repro.datagen.profiles import URBAN
        >>> traj = gen.generate(URBAN, object_id="car-1")
        >>> len(traj) > 10
        True
    """

    def __init__(self, seed: int = 0) -> None:
        self._rng = np.random.default_rng(seed)
        self._networks: dict[tuple, RoadNetwork] = {}

    def _network_for(self, profile: WorkloadProfile) -> RoadNetwork:
        key = (
            profile.rows,
            profile.cols,
            profile.spacing_m,
            profile.jitter_frac,
            profile.arterial_every,
            profile.highway_rows,
        )
        network = self._networks.get(key)
        if network is None:
            network = RoadNetwork.grid(
                profile.rows,
                profile.cols,
                profile.spacing_m,
                self._rng,
                jitter_frac=profile.jitter_frac,
                arterial_every=profile.arterial_every,
                highway_rows=profile.highway_rows,
            )
            self._networks[key] = network
        return network

    def generate(
        self,
        profile: WorkloadProfile,
        object_id: str | None = None,
        start_time_s: float = 0.0,
    ) -> Trajectory:
        """Generate one trajectory following the given profile.

        Returns:
            A noisy GPS trajectory sampled at the profile's fix rate.
        """
        network = self._network_for(profile)
        route = random_route(network, self._rng, profile.target_length_m)
        trace = simulate_drive(route, profile.vehicle, self._rng, start_time_s)
        t, xy = sample_trace(
            trace, profile.sample_interval_s, profile.noise, self._rng, start_time_s
        )
        return Trajectory(t, xy, object_id or profile.name)

    def generate_true_and_observed(
        self,
        profile: WorkloadProfile,
        object_id: str | None = None,
        start_time_s: float = 0.0,
    ) -> tuple[Trajectory, Trajectory]:
        """Generate a trip returning both noise-free and noisy versions.

        Useful for noise-sensitivity studies: the pair shares the same
        drive, differing only by observation noise.
        """
        network = self._network_for(profile)
        route = random_route(network, self._rng, profile.target_length_m)
        trace = simulate_drive(route, profile.vehicle, self._rng, start_time_s)
        clean = GpsNoise(sigma_m=0.0, correlation_time_s=0.0)
        t, xy_true = sample_trace(
            trace, profile.sample_interval_s, clean, self._rng, start_time_s
        )
        xy_observed = profile.noise.apply(t, xy_true, self._rng)
        ident = object_id or profile.name
        return (
            Trajectory(t, xy_true, f"{ident}-true"),
            Trajectory(t, xy_observed, ident),
        )


def generate_dataset(
    profiles: tuple[WorkloadProfile, ...] | list[WorkloadProfile],
    seed: int = 0,
    id_prefix: str = "trip",
) -> list[Trajectory]:
    """Generate one trajectory per profile, deterministically.

    Args:
        profiles: workload profiles, one trajectory each.
        seed: master seed; the whole dataset is a pure function of
            (profiles, seed).
        id_prefix: object ids become ``"{prefix}-{index:02d}-{profile}"``.
    """
    generator = TrajectoryGenerator(seed)
    dataset = []
    for index, profile in enumerate(profiles):
        object_id = f"{id_prefix}-{index:02d}-{profile.name}"
        dataset.append(generator.generate(profile, object_id))
    return dataset
