"""Kinematic vehicle simulation along a planned route.

Turns a :class:`~repro.datagen.route.Route` into a dense, physically
plausible movement trace: the vehicle accelerates toward each leg's speed
limit, brakes ahead of sharp corners (a lateral-acceleration corner-speed
model), occasionally stops at intersections (traffic lights) and comes to
rest at the destination. The trace is integrated at a fine time step and
later sampled at the GPS rate by the generator.

The two-pass structure is the standard one for speed-profile synthesis:

1. a *backward* pass computes the maximum speed at which each vertex may
   be entered so that all downstream constraints remain reachable under
   the braking limit;
2. a *forward* time integration accelerates toward the current limit
   while respecting the braking envelope toward the next vertex.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datagen.route import Route
from repro.exceptions import DataGenError

__all__ = ["VehicleModel", "DriveTrace", "simulate_drive"]


@dataclass(frozen=True, slots=True)
class VehicleModel:
    """Longitudinal/lateral dynamics and driver behaviour parameters."""

    accel_ms2: float = 1.4
    decel_ms2: float = 2.2
    lateral_accel_ms2: float = 2.5
    min_corner_speed_ms: float = 2.5
    stop_prob: float = 0.15
    stop_duration_range_s: tuple[float, float] = (8.0, 45.0)
    dt_s: float = 0.5

    def __post_init__(self) -> None:
        if min(self.accel_ms2, self.decel_ms2, self.lateral_accel_ms2) <= 0:
            raise ValueError("accelerations must be positive")
        if self.min_corner_speed_ms <= 0:
            raise ValueError("min corner speed must be positive")
        if not 0.0 <= self.stop_prob <= 1.0:
            raise ValueError(f"stop_prob must be in [0, 1], got {self.stop_prob}")
        lo, hi = self.stop_duration_range_s
        if lo < 0 or hi < lo:
            raise ValueError(f"bad stop duration range ({lo}, {hi})")
        if self.dt_s <= 0:
            raise ValueError("dt must be positive")

    def corner_speed(self, turn_angle_rad: float, leg_limit_ms: float) -> float:
        """Maximum comfortable speed through a corner of the given angle.

        Approximates the corner as a circular arc of radius proportional
        to the cotangent of the half-angle; sharper turns force lower
        speeds, straight-through vertices impose no constraint.
        """
        if turn_angle_rad < np.radians(5.0):
            return leg_limit_ms
        # Effective radius: a vehicle cuts a corner over ~10 m of path.
        radius = 10.0 / max(np.tan(turn_angle_rad / 2.0), 1e-3)
        v = float(np.sqrt(self.lateral_accel_ms2 * radius))
        return float(np.clip(v, self.min_corner_speed_ms, leg_limit_ms))


@dataclass(frozen=True)
class DriveTrace:
    """A dense noise-free movement trace: times and true positions."""

    t: np.ndarray
    xy: np.ndarray

    @property
    def duration_s(self) -> float:
        return float(self.t[-1] - self.t[0])


def _vertex_speed_caps(route: Route, model: VehicleModel, rng: np.random.Generator) -> np.ndarray:
    """Speed cap at each route vertex (corners, stops, terminal halt)."""
    m = route.points.shape[0]
    caps = np.empty(m)
    caps[0] = route.speed_limits[0]
    caps[-1] = 0.0  # the trip ends at rest
    angles = route.turn_angles()
    for k in range(1, m - 1):
        leg_limit = float(min(route.speed_limits[k - 1], route.speed_limits[k]))
        caps[k] = model.corner_speed(float(angles[k - 1]), leg_limit)
        if rng.uniform() < model.stop_prob:
            caps[k] = 0.0  # red light: full stop at this intersection
    return caps


def _backward_pass(route: Route, caps: np.ndarray, decel: float) -> np.ndarray:
    """Entry-speed envelope: braking feasibility from each vertex on."""
    allowed = caps.copy()
    lengths = route.leg_lengths
    for k in range(len(allowed) - 2, -1, -1):
        reachable = float(np.sqrt(allowed[k + 1] ** 2 + 2.0 * decel * lengths[k]))
        allowed[k] = min(allowed[k], reachable)
    return allowed


def simulate_drive(
    route: Route,
    model: VehicleModel,
    rng: np.random.Generator,
    start_time_s: float = 0.0,
    max_sim_hours: float = 6.0,
) -> DriveTrace:
    """Integrate a drive along ``route`` into a dense trace.

    Args:
        route: the planned path.
        model: dynamics and behaviour parameters.
        rng: randomness source (stop placement and dwell times).
        start_time_s: timestamp of the first trace sample.
        max_sim_hours: safety valve — the integration aborts if the drive
            somehow exceeds this wall-clock duration.

    Returns:
        A :class:`DriveTrace` sampled at ``model.dt_s`` resolution,
        starting at rest at the origin and ending at rest at the
        destination.
    """
    caps = _vertex_speed_caps(route, model, rng)
    allowed = _backward_pass(route, caps, model.decel_ms2)
    dwell_at_vertex = np.zeros(len(caps))
    lo, hi = model.stop_duration_range_s
    for k in range(1, len(caps) - 1):
        if caps[k] == 0.0:
            dwell_at_vertex[k] = rng.uniform(lo, hi)

    cum = route.cumulative_lengths
    total = float(cum[-1])
    dt = model.dt_s
    max_steps = int(max_sim_hours * 3600.0 / dt)

    times = [start_time_s]
    arcs = [0.0]
    s = 0.0
    v = 0.0
    now = start_time_s
    leg = 0
    for _ in range(max_steps):
        if s >= total - 1e-9:
            break
        while leg < len(cum) - 2 and s >= cum[leg + 1]:
            leg += 1
        next_vertex = leg + 1
        dist_to_next = max(cum[next_vertex] - s, 0.0)
        brake_envelope = float(
            np.sqrt(allowed[next_vertex] ** 2 + 2.0 * model.decel_ms2 * dist_to_next)
        )
        target = min(float(route.speed_limits[leg]), brake_envelope)
        if v < target:
            v = min(target, v + model.accel_ms2 * dt)
        else:
            v = max(target, v - model.decel_ms2 * dt)
        advance = v * dt
        if advance >= dist_to_next and allowed[next_vertex] <= model.min_corner_speed_ms / 2:
            # Arriving at a stop (or the destination): snap to the vertex.
            s = float(cum[next_vertex])
            v = 0.0
            now += dt
            times.append(now)
            arcs.append(s)
            dwell = dwell_at_vertex[next_vertex]
            if dwell > 0:
                dwell_steps = int(np.ceil(dwell / dt))
                for _pause in range(dwell_steps):
                    now += dt
                    times.append(now)
                    arcs.append(s)
            if next_vertex < len(cum) - 1:
                leg = next_vertex
            continue
        s += advance
        now += dt
        times.append(now)
        arcs.append(s)
    else:
        raise DataGenError(
            f"drive did not finish within {max_sim_hours} h of simulated time"
        )
    positions = route.position_at_arclength(np.asarray(arcs))
    return DriveTrace(np.asarray(times), positions)
