"""Benchmark: error-vs-budget curves for the online budget compressors.

Streams deterministic random-walk trajectories through the online
SQUISH-E and STTrace compressors (``repro.streaming.budget``) at a
sweep of point budgets, and cross-checks each curve against the
*offline* budgeted oracle (``td-tr-budget``, best-first top-down
splitting with the synchronized criterion) on the same input:

* **budget invariant** — the net retained stream never exceeds the
  budget, keeps both endpoints, and stays strictly time-ordered; any
  violation fails the bench outright.
* **sed_ratio** — mean synchronized (SED) error of the online result
  over the offline oracle's, per (algorithm, budget) point. Online
  one-pass eviction cannot beat an offline algorithm that sees the
  whole trajectory, so the ratio measures the price of streaming; the
  CI gate pins it so a refactor that silently degrades eviction
  quality fails loudly.

A dead-reckoning sweep (epsilon, not budget, is its knob) is included
informationally: retained points and SED per epsilon, with the online
form asserted bit-identical to the batch ``dead-reckoning`` compressor.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_budget.py

or the CI-sized variant (same sweep shape, smaller workload)::

    PYTHONPATH=src python benchmarks/bench_budget.py --quick
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

import numpy as np

from repro.core.registry import make_compressor
from repro.error import mean_synchronized_error
from repro.streaming.base import partition_events
from repro.streaming.registry import make_online_compressor
from repro.trajectory.trajectory import Trajectory
from repro.types import Fix

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_budget.json"

ALGORITHMS = ("squish", "sttrace")
ORACLE = "td-tr-budget"
DEAD_RECKONING_EPSILONS = (10.0, 30.0, 60.0)
SEED = 11

FULL_TRAJS = 12
FULL_FIXES = 1200
FULL_BUDGETS = (10, 25, 50, 100, 200)

QUICK_TRAJS = 5
QUICK_FIXES = 400
QUICK_BUDGETS = (10, 25, 50)


def make_workload(
    n_trajectories: int, fixes_each: int, seed: int = SEED
) -> list[list[Fix]]:
    """Deterministic bounded random walks (1 Hz, ~14 m/s steps)."""
    rng = np.random.default_rng(seed)
    workload = []
    for _ in range(n_trajectories):
        steps = rng.normal(0.0, 10.0, size=(fixes_each, 2))
        xy = np.cumsum(steps, axis=0)
        t = np.arange(fixes_each, dtype=float)
        workload.append(
            [Fix(float(t[j]), float(xy[j, 0]), float(xy[j, 1]))
             for j in range(fixes_each)]
        )
    return workload


def replay(spec: str, fixes: list[Fix]) -> list[Fix]:
    """Net retained stream of one online pass over ``fixes``."""
    compressor = make_online_compressor(spec)
    retained: list[Fix] = []
    evicted_times: set[float] = set()
    for fix in fixes:
        kept, evicted = partition_events(compressor.push(fix))
        retained.extend(kept)
        evicted_times.update(point.t for point in evicted)
    kept, evicted = partition_events(compressor.finish())
    retained.extend(kept)
    evicted_times.update(point.t for point in evicted)
    return [point for point in retained if point.t not in evicted_times]


def _check_invariants(
    retained: list[Fix], fixes: list[Fix], budget: int, label: str
) -> list[str]:
    """The budget contract, checked on the replay output."""
    failures = []
    if len(retained) > budget:
        failures.append(
            f"{label}: {len(retained)} retained points exceed budget {budget}"
        )
    if not retained or retained[0] != fixes[0] or retained[-1] != fixes[-1]:
        failures.append(f"{label}: endpoints not retained")
    times = [point.t for point in retained]
    if times != sorted(set(times)):
        failures.append(f"{label}: retained stream not strictly time-ordered")
    originals = set(fixes)
    if any(point not in originals for point in retained):
        failures.append(f"{label}: retained a point never pushed")
    return failures


def _as_trajectory(fixes: list[Fix]) -> Trajectory:
    return Trajectory.from_points([(f.t, f.x, f.y) for f in fixes])


def bench(
    n_trajectories: int,
    fixes_each: int,
    budgets: tuple[int, ...],
    output: "Path | None" = OUTPUT,
) -> dict:
    """Sweep budgets, compare against the offline oracle, write report."""
    workload = make_workload(n_trajectories, fixes_each)
    originals = [_as_trajectory(fixes) for fixes in workload]
    failures: list[str] = []

    # Oracle SEDs once per budget (shared by both online algorithms).
    oracle_sed: dict[int, float] = {}
    for budget in budgets:
        oracle = make_compressor(ORACLE, budget=budget)
        seds = [
            mean_synchronized_error(traj, oracle.compress(traj).compressed)
            for traj in originals
        ]
        oracle_sed[budget] = float(np.mean(seds))

    curves: dict[str, list[dict]] = {}
    ratio_means: dict[str, float] = {}
    for algorithm in ALGORITHMS:
        curve = []
        for budget in budgets:
            spec = f"{algorithm}:budget={budget}"
            seds = []
            max_points = 0
            for index, fixes in enumerate(workload):
                retained = replay(spec, fixes)
                failures.extend(
                    _check_invariants(
                        retained, fixes, budget, f"{spec} traj {index}"
                    )
                )
                max_points = max(max_points, len(retained))
                seds.append(
                    mean_synchronized_error(
                        originals[index], _as_trajectory(retained)
                    )
                )
            online = float(np.mean(seds))
            ratio = online / oracle_sed[budget] if oracle_sed[budget] else 1.0
            curve.append({
                "budget": budget,
                "online_mean_sed_m": online,
                "oracle_mean_sed_m": oracle_sed[budget],
                "sed_ratio": ratio,
                "max_retained_points": max_points,
            })
        curves[algorithm] = curve
        ratio_means[algorithm] = float(
            np.mean([point["sed_ratio"] for point in curve])
        )
        # The curve must actually descend: more budget, less error.
        seds_by_budget = [point["online_mean_sed_m"] for point in curve]
        if any(b <= a for a, b in zip(seds_by_budget, seds_by_budget[1:])
               if a == 0.0):
            pass  # degenerate zero-error workload; nothing to order
        elif sorted(seds_by_budget, reverse=True) != seds_by_budget:
            failures.append(
                f"{algorithm}: mean SED not monotonically non-increasing "
                f"in budget: {seds_by_budget}"
            )

    # Dead reckoning (informational): epsilon sweep, online form
    # asserted bit-identical to the batch compressor.
    dead_reckoning = []
    for epsilon in DEAD_RECKONING_EPSILONS:
        points = []
        seds = []
        for index, fixes in enumerate(workload):
            retained = replay(f"dead-reckoning:epsilon={epsilon}", fixes)
            batch_indices = make_compressor(
                "dead-reckoning", epsilon=epsilon
            ).compress(originals[index]).indices
            batch_retained = [fixes[i] for i in batch_indices]
            if retained != batch_retained:
                failures.append(
                    f"dead-reckoning:epsilon={epsilon} traj {index}: online "
                    f"result diverged from the batch compressor "
                    f"({len(retained)} vs {len(batch_retained)} points)"
                )
            points.append(len(retained))
            seds.append(
                mean_synchronized_error(
                    originals[index], _as_trajectory(retained)
                )
            )
        dead_reckoning.append({
            "epsilon_m": epsilon,
            "mean_retained_points": float(np.mean(points)),
            "mean_sed_m": float(np.mean(seds)),
        })

    report = {
        "benchmark": "budget",
        "config": {
            "n_trajectories": n_trajectories,
            "fixes_per_trajectory": fixes_each,
            "budgets": list(budgets),
            "oracle": ORACLE,
            "seed": SEED,
        },
        "results": {
            "curves": curves,
            "sed_ratio_mean": ratio_means,
            "dead_reckoning": dead_reckoning,
        },
        "failed": bool(failures),
        "failures": failures,
    }
    if output is not None:
        output.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_bench_budget_quick(tmp_path):
    """Suite-sized smoke: invariants hold, curves descend, oracle close."""
    report = bench(
        3, 200, (10, 25), output=tmp_path / "BENCH_budget.json"
    )
    assert not report["failed"], report["failures"]
    for algorithm in ALGORITHMS:
        assert report["results"]["sed_ratio_mean"][algorithm] >= 1.0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help=f"CI-sized run ({QUICK_TRAJS}x{QUICK_FIXES} fixes, "
             f"budgets {QUICK_BUDGETS})",
    )
    parser.add_argument(
        "--output", "-o", type=Path, default=OUTPUT,
        help=f"report path (default {OUTPUT.name} at the repo root)",
    )
    args = parser.parse_args()
    if args.quick:
        report = bench(QUICK_TRAJS, QUICK_FIXES, QUICK_BUDGETS, args.output)
    else:
        report = bench(FULL_TRAJS, FULL_FIXES, FULL_BUDGETS, args.output)
    results = report["results"]
    for algorithm, curve in results["curves"].items():
        for point in curve:
            print(
                f"{algorithm} budget={point['budget']}: "
                f"online SED {point['online_mean_sed_m']:.2f} m vs "
                f"oracle {point['oracle_mean_sed_m']:.2f} m "
                f"({point['sed_ratio']:.2f}x)"
            )
        print(
            f"{algorithm}: mean SED ratio vs {ORACLE}: "
            f"{results['sed_ratio_mean'][algorithm]:.2f}x"
        )
    for point in results["dead_reckoning"]:
        print(
            f"dead-reckoning epsilon={point['epsilon_m']:.0f} m: "
            f"{point['mean_retained_points']:.1f} points, "
            f"SED {point['mean_sed_m']:.2f} m (batch-identical)"
        )
    if report["failed"]:
        for failure in report["failures"]:
            print(f"FAIL: {failure}")
    print(f"-> {args.output}")
    return 1 if report["failed"] else 0


if __name__ == "__main__":
    raise SystemExit(main())
