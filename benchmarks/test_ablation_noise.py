"""Ablation: GPS noise sensitivity of NOPW vs OPW-TR.

The paper motivates opening-window algorithms as working "reasonably well
in presence of noise". This ablation regenerates the same drive with
increasing observation noise and reports how the two online algorithms'
compression and error respond. Expected shape: both retain more points as
noise grows (noise looks like movement), and OPW-TR's error advantage
over NOPW persists at every noise level.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import publish
from repro.core import NOPW, OPWTR
from repro.datagen import GpsNoise, TrajectoryGenerator, URBAN
from repro.error import mean_synchronized_error
from repro.experiments.reporting import render_table
from repro.trajectory import Trajectory

SIGMAS = (0.0, 2.0, 5.0, 10.0, 20.0)
EPS = 50.0


def _noisy_copies(seed: int) -> list[tuple[float, Trajectory]]:
    """One drive observed under each noise level (same true movement)."""
    generator = TrajectoryGenerator(seed=seed)
    true, _ = generator.generate_true_and_observed(URBAN.with_length(9_000.0), "noise")
    rng = np.random.default_rng(seed + 1)
    out = []
    for sigma in SIGMAS:
        noise = GpsNoise(sigma_m=sigma, correlation_time_s=20.0)
        observed = Trajectory(true.t, noise.apply(true.t, true.xy, rng), f"sigma-{sigma}")
        out.append((sigma, observed))
    return out


def test_ablation_noise_sensitivity(benchmark, results_dir):
    observations = benchmark.pedantic(
        lambda: _noisy_copies(seed=77), rounds=1, iterations=1
    )

    rows = []
    nopw_errors = []
    opwtr_errors = []
    opwtr_kept = []
    for sigma, traj in observations:
        nopw_result = NOPW(epsilon=EPS).compress(traj)
        opwtr_result = OPWTR(epsilon=EPS).compress(traj)
        nopw_err = mean_synchronized_error(traj, nopw_result.compressed)
        opwtr_err = mean_synchronized_error(traj, opwtr_result.compressed)
        nopw_errors.append(nopw_err)
        opwtr_errors.append(opwtr_err)
        opwtr_kept.append(opwtr_result.n_kept)
        rows.append(
            (
                sigma,
                nopw_result.compression_percent,
                nopw_err,
                opwtr_result.compression_percent,
                opwtr_err,
            )
        )
    table = render_table(
        ["noise_sigma_m", "nopw_compression_%", "nopw_err_m", "opwtr_compression_%", "opwtr_err_m"],
        rows,
        title=f"Ablation: noise sensitivity (same drive, eps = {EPS:g} m)",
    )
    publish(results_dir, "ablation_noise", table)

    # OPW-TR stays more accurate than NOPW at every noise level.
    for nopw_err, opwtr_err in zip(nopw_errors, opwtr_errors):
        assert opwtr_err < nopw_err

    # Heavy noise forces the window to retain more points than no noise.
    assert opwtr_kept[-1] >= opwtr_kept[0]

    # OPW-TR's error stays bounded by the threshold regardless of noise.
    for err in opwtr_errors:
        assert err <= EPS
