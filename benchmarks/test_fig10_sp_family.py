"""Fig. 10: OPW-TR vs TD-SP(5 m/s) vs OPW-SP(5/15/25 m/s).

Paper findings asserted (DESIGN.md S5):

* OPW-SP with generous speed thresholds (15, 25 m/s) behaves like OPW-TR
  — car speed profiles rarely jump that much between 10 s samples, so the
  speed criterion almost never fires; the paper's graphs for OPW-TR and
  OPW-SP(25 m/s) coincide.
* OPW-SP(5 m/s) retains more points (lower compression) with error no
  worse than OPW-TR's.
* TD-SP(5 m/s) reaches higher compression than OPW-SP(5 m/s) at the cost
  of higher error.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import publish
from repro.experiments import figure_10, render_aggregate_rows


def test_fig10_sp_family(benchmark, dataset, results_dir):
    fig = benchmark.pedantic(lambda: figure_10(dataset), rounds=1, iterations=1)
    publish(results_dir, "fig10", render_aggregate_rows(fig.rows, title=fig.title))

    opwtr = fig.series("opw-tr")
    sp5 = fig.series("opw-sp(5m/s)")
    sp15 = fig.series("opw-sp(15m/s)")
    sp25 = fig.series("opw-sp(25m/s)")
    tdsp5 = fig.series("td-sp(5m/s)")

    # S5a: OPW-SP(25) coincides with OPW-TR (and OPW-SP(15) is close).
    for tr_row, sp_row in zip(opwtr, sp25):
        assert sp_row.compression_percent == tr_row.compression_percent
        assert sp_row.mean_sync_error_m == tr_row.mean_sync_error_m
    for tr_row, sp_row in zip(opwtr, sp15):
        assert abs(sp_row.compression_percent - tr_row.compression_percent) < 5.0

    # S5b: a 5 m/s speed threshold retains more points...
    for tr_row, sp_row in zip(opwtr, sp5):
        assert sp_row.compression_percent <= tr_row.compression_percent + 1e-9
    # ... with error no worse than OPW-TR's.
    for tr_row, sp_row in zip(opwtr, sp5):
        assert sp_row.mean_sync_error_m <= tr_row.mean_sync_error_m + 1e-9

    # S5c: TD-SP(5) compresses more than OPW-SP(5), at higher error.
    mean = lambda rows, attr: float(np.mean([getattr(r, attr) for r in rows]))
    assert mean(tdsp5, "compression_percent") > mean(sp5, "compression_percent")
    assert mean(tdsp5, "mean_sync_error_m") > mean(sp5, "mean_sync_error_m")
