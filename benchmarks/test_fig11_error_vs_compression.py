"""Fig. 11: error versus compression across all headline algorithms.

The paper's closing comparison: plotting every algorithm's (compression,
error) pairs over the threshold sweep "clearly shows that algorithms
developed with spatiotemporal characteristics outperform others", and a
final ranking puts TD-TR slightly ahead thanks to better compression.

Asserted shape (DESIGN.md S6): at comparable compression the
spatiotemporal algorithms commit a small fraction of the spatial
algorithms' error, and TD-TR reaches the highest compression among the
low-error algorithms.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import publish
from repro.experiments import figure_11, render_aggregate_rows
from repro.experiments.harness import AggregateRow


def _interp_error_at_compression(
    rows: list[AggregateRow], compression: float
) -> float | None:
    """Linear interpolation of mean error at a compression level."""
    pairs = sorted((r.compression_percent, r.mean_sync_error_m) for r in rows)
    xs = [p[0] for p in pairs]
    ys = [p[1] for p in pairs]
    if not xs[0] <= compression <= xs[-1]:
        return None
    return float(np.interp(compression, xs, ys))


def test_fig11_error_vs_compression(benchmark, dataset, results_dir):
    fig = benchmark.pedantic(lambda: figure_11(dataset), rounds=1, iterations=1)
    table = render_aggregate_rows(fig.rows, title=fig.title)
    publish(results_dir, "fig11", table)

    spatial = {name: fig.series(name) for name in ("ndp", "nopw")}
    spatiotemporal = {
        name: fig.series(name)
        for name in ("td-tr", "opw-tr", "opw-sp(5m/s)", "opw-sp(15m/s)", "opw-sp(25m/s)")
    }

    # S6a: wherever compression levels overlap, every spatiotemporal
    # algorithm's error is well below every spatial algorithm's.
    probes = np.arange(50.0, 86.0, 2.5)
    compared = 0
    for st_rows in spatiotemporal.values():
        for sp_rows in spatial.values():
            for compression in probes:
                st_err = _interp_error_at_compression(st_rows, compression)
                sp_err = _interp_error_at_compression(sp_rows, compression)
                if st_err is None or sp_err is None:
                    continue
                compared += 1
                assert st_err < 0.6 * sp_err, (
                    f"at {compression}% compression: spatiotemporal {st_err:.1f} m "
                    f"vs spatial {sp_err:.1f} m"
                )
    assert compared >= 8  # the probe grid actually overlapped

    # S6b: TD-TR reaches the best compression among the spatiotemporal
    # (low-error) algorithms — the paper's final ranking.
    best_tdtr = max(r.compression_percent for r in spatiotemporal["td-tr"])
    for name, rows in spatiotemporal.items():
        if name == "td-tr":
            continue
        assert best_tdtr >= max(r.compression_percent for r in rows) - 1e-9, name
