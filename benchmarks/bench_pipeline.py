"""Benchmark: serial vs parallel batch compression of a synthetic fleet.

Times :class:`repro.pipeline.engine.BatchEngine` over the same fleet with
``workers=0`` (inline) and ``workers=4`` (process pool), verifies the two
runs select identical indices, and writes the timings to
``BENCH_pipeline.json`` next to this script's repository root.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_pipeline.py [--fleet 48] [--points 3000]

or via pytest (a smaller fleet keeps the suite fast)::

    pytest benchmarks/bench_pipeline.py
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

import numpy as np

from repro.datagen import URBAN, TrajectoryGenerator
from repro.pipeline.engine import BatchEngine
from repro.trajectory import Trajectory

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_pipeline.json"
#: OPW-TR is the paper's O(N^2) online family: per-item work heavy enough
#: that the pool amortizes its startup (TD-TR at the same size is
#: millisecond-fast and the serial path simply wins).
SPEC = "opw-tr:epsilon=30"


def make_fleet(n: int, target_points: int, seed: int = 23) -> list[Trajectory]:
    """A deterministic synthetic fleet of ``n`` urban trips."""
    generator = TrajectoryGenerator(seed=seed)
    fleet = []
    for i in range(n):
        traj = generator.generate(URBAN, object_id=f"bench-{i:03d}")
        # Resample (up or down) to the target density so the per-item
        # work is heavy enough to measure the pool against.
        step = (traj.end_time - traj.start_time) / target_points
        fleet.append(traj.resample(step))
    return fleet


def time_run(fleet: list[Trajectory], workers: int, repeats: int = 3) -> dict:
    """Best-of-``repeats`` wall time for one engine configuration."""
    engine = BatchEngine(SPEC, workers=workers, evaluate="none")
    best = None
    run = None
    for _ in range(repeats):
        started = time.perf_counter()
        run = engine.run(fleet)
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    assert run is not None
    return {
        "workers": workers,
        "best_s": best,
        "n_items": run.n_items,
        "points_in": sum(r.n_original for r in run.results),
        "points_kept": sum(r.n_kept for r in run.results),
        "run": run,
    }


def bench(n_fleet: int, target_points: int, output: Path = OUTPUT) -> dict:
    """Time serial vs workers=4 over one fleet and write the JSON report."""
    fleet = make_fleet(n_fleet, target_points)
    serial = time_run(fleet, workers=0)
    parallel = time_run(fleet, workers=4)

    serial_run, parallel_run = serial.pop("run"), parallel.pop("run")
    for left, right in zip(serial_run.results, parallel_run.results):
        assert left.item_id == right.item_id
        assert np.array_equal(left.indices, right.indices), (
            f"parallel indices diverged on {left.item_id}"
        )

    report = {
        "benchmark": "pipeline",
        "spec": SPEC,
        "fleet_size": len(fleet),
        "total_points": sum(len(t) for t in fleet),
        # Speedup is hardware-bound: on a single-CPU box the pool can
        # only add overhead, so read it against cpu_count.
        "cpu_count": os.cpu_count(),
        "serial": serial,
        "parallel": parallel,
        "speedup": serial["best_s"] / parallel["best_s"],
    }
    output.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_bench_pipeline_quick():
    """Suite-sized smoke: both paths agree and the report lands on disk."""
    report = bench(8, 400)
    assert OUTPUT.exists()
    assert report["serial"]["points_kept"] == report["parallel"]["points_kept"]
    assert report["serial"]["n_items"] == 8


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fleet", type=int, default=48, help="fleet size")
    parser.add_argument(
        "--points", type=int, default=3_000, help="target points per trajectory"
    )
    args = parser.parse_args()
    report = bench(args.fleet, args.points)
    print(
        f"{report['fleet_size']} trajectories, {report['total_points']} points: "
        f"serial {report['serial']['best_s']:.2f}s, "
        f"workers=4 {report['parallel']['best_s']:.2f}s "
        f"({report['speedup']:.2f}x) -> {OUTPUT.name}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
